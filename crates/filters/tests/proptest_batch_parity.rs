//! Batch/serial parity: for any packet sequence, any built-in chain, and
//! any batch partition, [`FilterChain::process_batch`] must emit exactly
//! what packet-at-a-time [`FilterChain::process`] emits — including
//! buffered filter state, which is compared through a final flush.

use proptest::prelude::*;
use rapidware_filters::{
    CompressorFilter, DecompressorFilter, DescramblerFilter, DropEveryNth, FecDecoderFilter,
    FecEncoderFilter, FilterChain, NullFilter, ScramblerFilter, TapFilter,
};
use rapidware_packet::{FrameType, Packet, PacketKind, SeqNo, StreamId};

/// Builds one of the built-in chain configurations; called twice per case
/// so the serial and batched chains start from identical state.
fn build_chain(selector: usize) -> FilterChain {
    let mut chain = FilterChain::new();
    match selector % 6 {
        0 => {}
        1 => {
            chain.push_back(Box::new(NullFilter::new())).unwrap();
            chain.push_back(Box::new(TapFilter::new("parity-tap"))).unwrap();
        }
        2 => {
            chain.push_back(Box::new(CompressorFilter::new())).unwrap();
            chain.push_back(Box::new(ScramblerFilter::new(0x5EED))).unwrap();
            chain.push_back(Box::new(DescramblerFilter::new(0x5EED))).unwrap();
            chain.push_back(Box::new(DecompressorFilter::new())).unwrap();
        }
        3 => {
            chain
                .push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap()))
                .unwrap();
        }
        4 => {
            chain
                .push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap()))
                .unwrap();
            chain
                .push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap()))
                .unwrap();
        }
        _ => {
            chain
                .push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap()))
                .unwrap();
            chain.push_back(Box::new(DropEveryNth::new(3))).unwrap();
            chain
                .push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap()))
                .unwrap();
        }
    }
    chain
}

/// Materialises a generated `(kind, payload)` description as a packet.
///
/// When `payload_only` is set, the `Control` kind is excluded: the FEC
/// block framing keys blocks by sequence number and assumes the protected
/// payload packets are seq-contiguous (true of the paper's media streams),
/// and a pass-through control packet in the middle would break that
/// invariant on the serial and batched paths alike.
fn build_packet(
    seq: u64,
    kind_selector: u8,
    boundary: bool,
    payload: Vec<u8>,
    payload_only: bool,
) -> Packet {
    let choices = if payload_only { 3 } else { 4 };
    let kind = match kind_selector % choices {
        0 => PacketKind::AudioData,
        1 => PacketKind::Data,
        2 => PacketKind::VideoFrame {
            frame: FrameType::P,
            boundary,
        },
        _ => PacketKind::Control,
    };
    Packet::new(StreamId::new(1), SeqNo::new(seq), kind, payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `process_batch` output equals per-packet `process` output for every
    /// built-in chain, packet mix, and batch partition.
    #[test]
    fn batch_equals_serial_for_builtin_chains(
        selector in 0usize..6,
        batch_len in 1usize..48,
        descriptions in proptest::collection::vec(
            (any::<u8>(), any::<bool>(), proptest::collection::vec(any::<u8>(), 0..200)),
            1..60,
        ),
    ) {
        let uses_fec = selector % 6 >= 3;
        let packets: Vec<Packet> = descriptions
            .into_iter()
            .enumerate()
            .map(|(seq, (kind, boundary, payload))| {
                build_packet(seq as u64, kind, boundary, payload, uses_fec)
            })
            .collect();

        let mut serial_chain = build_chain(selector);
        let mut serial_out: Vec<Packet> = Vec::new();
        for packet in &packets {
            serial_out.extend(serial_chain.process(packet.clone()).unwrap());
        }

        let mut batch_chain = build_chain(selector);
        let mut batch_out: Vec<Packet> = Vec::new();
        for chunk in packets.chunks(batch_len) {
            batch_out.extend(batch_chain.process_batch(chunk.to_vec()).unwrap());
        }

        prop_assert_eq!(&serial_out, &batch_out, "selector {}", selector);
        prop_assert_eq!(serial_chain.packets_in(), batch_chain.packets_in());
        prop_assert_eq!(serial_chain.packets_out(), batch_chain.packets_out());
        // Buffered state (e.g. a partial FEC block) must match too.
        prop_assert_eq!(serial_chain.flush().unwrap(), batch_chain.flush().unwrap());
    }

    /// Deferred frame-boundary insertions activate at the same packet on
    /// both paths: the batch is split at insertion boundaries exactly where
    /// the serial path would apply the pending filters.
    #[test]
    fn batch_equals_serial_with_deferred_insertion(
        batch_len in 1usize..32,
        boundary_at in 0usize..20,
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..100), 4..20),
    ) {
        let packets: Vec<Packet> = payloads
            .into_iter()
            .enumerate()
            .map(|(seq, payload)| {
                build_packet(seq as u64, 2, seq == boundary_at.min(19), payload, true)
            })
            .collect();

        let run = |mut chain: FilterChain, chunked: bool| -> (Vec<Packet>, Vec<String>) {
            chain
                .insert(0, Box::new(FecEncoderFilter::fec_6_4().unwrap().frame_aligned()))
                .unwrap();
            let mut out = Vec::new();
            if chunked {
                for chunk in packets.chunks(batch_len) {
                    out.extend(chain.process_batch(chunk.to_vec()).unwrap());
                }
            } else {
                for packet in &packets {
                    out.extend(chain.process(packet.clone()).unwrap());
                }
            }
            out.extend(chain.flush().unwrap());
            (out, chain.names())
        };

        let (serial_out, serial_names) = run(FilterChain::new(), false);
        let (batch_out, batch_names) = run(FilterChain::new(), true);
        prop_assert_eq!(serial_out, batch_out);
        prop_assert_eq!(serial_names, batch_names);
    }
}
