//! Tamper-rejection hardening for the secure-channel pair, alongside the
//! wire-decode hardening suite in `rapidware-packet`.
//!
//! The decoder's CRC catches accidental corruption; these tests cover the
//! *adversarial* layer above it — frames that are structurally valid
//! packets but fail authentication:
//!
//! * flipping any single bit of a sealed payload (ciphertext or tag) makes
//!   [`DecryptFilter`] reject the frame — a counted drop, never a panic,
//!   never a forwarded corrupt payload;
//! * forging any AAD-covered header field (stream, seq, timestamp, kind)
//!   around an intact sealed payload is likewise rejected, even though the
//!   frame's CRC is dutifully valid;
//! * truncating a sealed payload anywhere is rejected;
//! * replaying a frame sealed under a superseded epoch after the decryptor
//!   has rotated past it is rejected (the stale-key replay);
//! * a tampered frame in the middle of a batch never disturbs its
//!   neighbours: the good frames open in order, bit-exact;
//! * `Encrypt ∘ Decrypt` obeys the batch/serial parity contract across the
//!   built-in chain shapes, with FEC placed before *and* after the crypto
//!   stage, including loss-and-recovery of sealed frames.

use proptest::prelude::*;
use rapidware_filters::{
    rekey_packet, DecryptFilter, DropEveryNth, EncryptFilter, FecDecoderFilter, FecEncoderFilter,
    Filter, FilterChain,
};
use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};

const KEY: u64 = 0x5EED;

/// Seals one packet through a fresh `EncryptFilter` and returns the sealed
/// frame (payload = ciphertext ‖ 16-byte tag).
fn seal(packet: Packet) -> Packet {
    let mut encrypt = EncryptFilter::new(KEY);
    let mut out: Vec<Packet> = Vec::new();
    encrypt.process(packet, &mut out).expect("encrypt never fails");
    assert_eq!(out.len(), 1, "encrypt emits exactly the sealed frame");
    out.pop().expect("one sealed frame")
}

/// Runs one packet through a fresh `DecryptFilter`; returns the opened
/// frame (if any) and the reject count.
fn open(packet: Packet) -> (Vec<Packet>, u64) {
    let mut decrypt = DecryptFilter::new(KEY);
    let mut out: Vec<Packet> = Vec::new();
    decrypt.process(packet, &mut out).expect("decrypt never errors");
    (out, decrypt.stats().rejected())
}

fn data_packet(seq: u64, payload: Vec<u8>) -> Packet {
    Packet::with_timestamp(
        StreamId::new(7),
        SeqNo::new(seq),
        PacketKind::AudioData,
        seq.wrapping_mul(20_000),
        payload,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single flipped bit in the sealed payload — ciphertext or tag —
    /// is rejected without a panic, and the plaintext never leaks.
    #[test]
    fn payload_bit_flips_are_rejected(
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        position in any::<u64>(),
        bit in 0u8..8,
    ) {
        let sealed = seal(data_packet(seq, payload));
        let sealed_len = sealed.payload_len();
        let position = (position as usize) % sealed_len;
        let mut tampered = sealed;
        tampered.payload_edit(|buf| buf[position] ^= 1 << bit);
        let (out, rejected) = open(tampered);
        prop_assert!(out.is_empty(), "bit {bit} of byte {position} opened anyway");
        prop_assert_eq!(rejected, 1);
    }

    /// Forging any AAD-covered header field around an intact sealed payload
    /// fails authentication, even though the re-encoded frame carries a
    /// perfectly valid CRC (the decode layer cannot catch this).
    #[test]
    fn forged_headers_are_rejected(
        seq in 0u64..u64::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        field in 0usize..4,
    ) {
        let sealed = seal(data_packet(seq, payload));
        let forged = match field {
            // A different stream id.
            0 => Packet::with_timestamp(
                StreamId::new(8),
                sealed.seq(),
                sealed.kind(),
                sealed.timestamp_us(),
                sealed.payload().to_vec(),
            ),
            // A shifted sequence number (also shifts the nonce).
            1 => Packet::with_timestamp(
                sealed.stream(),
                SeqNo::new(sealed.seq().value().wrapping_add(1)),
                sealed.kind(),
                sealed.timestamp_us(),
                sealed.payload().to_vec(),
            ),
            // A shifted timestamp.
            2 => Packet::with_timestamp(
                sealed.stream(),
                sealed.seq(),
                sealed.kind(),
                sealed.timestamp_us().wrapping_add(1),
                sealed.payload().to_vec(),
            ),
            // A different packet kind.
            _ => Packet::with_timestamp(
                sealed.stream(),
                sealed.seq(),
                PacketKind::Data,
                sealed.timestamp_us(),
                sealed.payload().to_vec(),
            ),
        };
        // The forgery survives the wire: encode/decode round-trips cleanly.
        prop_assert_eq!(Packet::decode(&forged.encode()).unwrap(), forged.clone());
        let (out, rejected) = open(forged);
        prop_assert!(out.is_empty(), "forged header field {field} opened anyway");
        prop_assert_eq!(rejected, 1);
    }

    /// Truncating a sealed payload anywhere — mid-ciphertext, mid-tag, or
    /// to nothing — is rejected.
    #[test]
    fn truncated_frames_are_rejected(
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        cut in any::<u64>(),
    ) {
        let sealed = seal(data_packet(seq, payload));
        let cut = (cut as usize) % sealed.payload_len();
        let mut truncated = sealed;
        truncated.payload_edit(|buf| buf.truncate(cut));
        let (out, rejected) = open(truncated);
        prop_assert!(out.is_empty(), "a {cut}-byte truncation opened anyway");
        prop_assert_eq!(rejected, 1);
    }

    /// A frame sealed under the initial epoch and replayed after the
    /// decryptor rotated past its seq fails the tag of the newer key.
    #[test]
    fn stale_key_replays_are_rejected(
        seq in 1u64..1_000_000,
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        boundary_back in 0u64..1_000,
    ) {
        let sealed = seal(data_packet(seq, payload));
        let boundary = seq - boundary_back % seq.min(1_000);
        let mut decrypt = DecryptFilter::new(KEY);
        let mut out: Vec<Packet> = Vec::new();
        // The rotation arrives (and is consumed) first …
        decrypt
            .process(rekey_packet(StreamId::new(7), 1, boundary, 0), &mut out)
            .expect("rekey consumed");
        prop_assert!(out.is_empty(), "rekey frames never leave the decryptor");
        prop_assert_eq!(decrypt.stats().rekeys(), 1);
        // … then the replayed pre-rotation frame, whose seq is past the
        // boundary, opens under the new key and fails.
        decrypt.process(sealed, &mut out).expect("decrypt never errors");
        prop_assert!(out.is_empty(), "stale-key replay opened anyway");
        prop_assert_eq!(decrypt.stats().rejected(), 1);
    }

    /// A tampered frame in the middle of a batch is a surgical drop: every
    /// neighbour opens bit-exact and in order, serial or batched.
    #[test]
    fn tampered_frames_never_disturb_batch_neighbours(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120),
            2..24,
        ),
        victim in any::<u64>(),
        position in any::<u64>(),
        batch_len in 1usize..24,
    ) {
        let originals: Vec<Packet> = payloads
            .iter()
            .enumerate()
            .map(|(seq, payload)| data_packet(seq as u64, payload.clone()))
            .collect();
        let victim = (victim as usize) % originals.len();
        let mut sealed: Vec<Packet> = originals.iter().map(|p| seal(p.clone())).collect();
        let position = (position as usize) % sealed[victim].payload_len();
        sealed[victim].payload_edit(|buf| buf[position] ^= 0x80);

        let expected: Vec<Packet> = originals
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, p)| p.clone())
            .collect();

        // Batched path.
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(DecryptFilter::new(KEY))).unwrap();
        let mut batched: Vec<Packet> = Vec::new();
        for chunk in sealed.chunks(batch_len) {
            batched.extend(chain.process_batch(chunk.to_vec()).unwrap());
        }
        prop_assert_eq!(&batched, &expected, "neighbours disturbed in the batch");
        prop_assert_eq!(chain.secure_snapshot().rejected, 1);

        // Serial path agrees.
        let mut serial_chain = FilterChain::new();
        serial_chain.push_back(Box::new(DecryptFilter::new(KEY))).unwrap();
        let mut serial: Vec<Packet> = Vec::new();
        for packet in sealed {
            serial.extend(serial_chain.process(packet).unwrap());
        }
        prop_assert_eq!(&serial, &expected);
        prop_assert_eq!(serial_chain.secure_snapshot().rejected, 1);
    }
}

// ---------------------------------------------------------------------------
// Batch/serial parity for chains containing the crypto stage.
// ---------------------------------------------------------------------------

/// Chain shapes placing FEC before, after, and around the crypto stage;
/// called twice per case so both chains start from identical state.
fn crypto_chain(selector: usize) -> FilterChain {
    let mut chain = FilterChain::new();
    match selector % 5 {
        // The bare pair.
        0 => {
            chain.push_back(Box::new(EncryptFilter::new(KEY))).unwrap();
            chain.push_back(Box::new(DecryptFilter::new(KEY))).unwrap();
        }
        // FEC before the crypto stage: parity frames are sealed too.
        1 => {
            chain.push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap())).unwrap();
            chain.push_back(Box::new(EncryptFilter::new(KEY))).unwrap();
            chain.push_back(Box::new(DecryptFilter::new(KEY))).unwrap();
            chain.push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap())).unwrap();
        }
        // FEC after the crypto stage: parity is computed over ciphertext.
        2 => {
            chain.push_back(Box::new(EncryptFilter::new(KEY))).unwrap();
            chain.push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap())).unwrap();
            chain.push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap())).unwrap();
            chain.push_back(Box::new(DecryptFilter::new(KEY))).unwrap();
        }
        // Sealed frames lost between the pair; FEC recovers the plaintext
        // from the frames that did open.
        3 => {
            chain.push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap())).unwrap();
            chain.push_back(Box::new(EncryptFilter::new(KEY))).unwrap();
            chain.push_back(Box::new(DropEveryNth::new(3))).unwrap();
            chain.push_back(Box::new(DecryptFilter::new(KEY))).unwrap();
            chain.push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap())).unwrap();
        }
        // Sealed frames lost *outside* the pair: FEC reconstructs the exact
        // sealed bytes and the decryptor must still open the recovery.
        _ => {
            chain.push_back(Box::new(EncryptFilter::new(KEY))).unwrap();
            chain.push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap())).unwrap();
            chain.push_back(Box::new(DropEveryNth::new(3))).unwrap();
            chain.push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap())).unwrap();
            chain.push_back(Box::new(DecryptFilter::new(KEY))).unwrap();
        }
    }
    chain
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `process_batch` emits exactly what per-packet `process` emits for
    /// every crypto chain shape, packet mix, and batch partition — and the
    /// secure counters agree too.
    #[test]
    fn batch_equals_serial_for_crypto_chains(
        selector in 0usize..5,
        batch_len in 1usize..48,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..160),
            1..48,
        ),
    ) {
        let packets: Vec<Packet> = payloads
            .iter()
            .enumerate()
            .map(|(seq, payload)| data_packet(seq as u64, payload.clone()))
            .collect();

        let mut serial_chain = crypto_chain(selector);
        let mut serial_out: Vec<Packet> = Vec::new();
        for packet in &packets {
            serial_out.extend(serial_chain.process(packet.clone()).unwrap());
        }

        let mut batch_chain = crypto_chain(selector);
        let mut batch_out: Vec<Packet> = Vec::new();
        for chunk in packets.chunks(batch_len) {
            batch_out.extend(batch_chain.process_batch(chunk.to_vec()).unwrap());
        }

        prop_assert_eq!(&serial_out, &batch_out, "selector {}", selector);
        prop_assert_eq!(serial_chain.flush().unwrap(), batch_chain.flush().unwrap());
        prop_assert_eq!(serial_chain.secure_snapshot(), batch_chain.secure_snapshot());
    }

    /// A rekey control frame spliced anywhere into the stream rotates both
    /// halves of the pair identically on the serial and batched paths, and
    /// every frame still round-trips to its plaintext.
    #[test]
    fn rekey_preserves_batch_serial_parity(
        batch_len in 1usize..32,
        rekey_at in 0usize..32,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..160),
            2..32,
        ),
    ) {
        let mut packets: Vec<Packet> = payloads
            .iter()
            .enumerate()
            .map(|(seq, payload)| data_packet(seq as u64, payload.clone()))
            .collect();
        let expected = packets.clone();
        let rekey_at = rekey_at % packets.len();
        let boundary = packets[rekey_at].seq().value();
        packets.insert(rekey_at, rekey_packet(StreamId::new(7), 1, boundary, 0));

        let run = |mut chain: FilterChain, chunked: bool| {
            let mut out: Vec<Packet> = Vec::new();
            if chunked {
                for chunk in packets.chunks(batch_len) {
                    out.extend(chain.process_batch(chunk.to_vec()).unwrap());
                }
            } else {
                for packet in &packets {
                    out.extend(chain.process(packet.clone()).unwrap());
                }
            }
            let snapshot = chain.secure_snapshot();
            (out, snapshot)
        };

        let (serial_out, serial_stats) = run(crypto_chain(0), false);
        let (batch_out, batch_stats) = run(crypto_chain(0), true);
        // The rekey frame is forwarded by encrypt and consumed by decrypt,
        // so the output is exactly the plaintext data stream.
        prop_assert_eq!(&serial_out, &expected, "rekey at {} corrupted the stream", rekey_at);
        prop_assert_eq!(&serial_out, &batch_out);
        prop_assert_eq!(serial_stats, batch_stats);
        prop_assert_eq!(serial_stats.rejected, 0);
        // Both halves observed the rotation.
        prop_assert_eq!(serial_stats.rekeys, 2);
    }
}
