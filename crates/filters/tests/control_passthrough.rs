//! Control packets must pass through every filter the adaptive control
//! loop can install.
//!
//! The closed-loop scenario engine keeps its *threaded* applier
//! deterministic by sending a [`PacketKind::Control`] marker after each
//! sample window and draining the chain until the marker emerges.  That
//! protocol is sound only if every filter a responder can splice into a
//! live chain forwards control packets immediately — never dropping,
//! buffering, or transforming them.  This test pins that invariant for the
//! whole adaptive filter library (fault-injection filters like
//! `ReorderFilter` are exempt: they exist to perturb streams in tests and
//! are never installed by a responder).

use rapidware_filters::{
    AudioTranscoderFilter, CompressorFilter, DecompressorFilter, DescramblerFilter, DropEveryNth,
    FecDecoderFilter, FecEncoderFilter, Filter, FilterChain, NullFilter, RateLimiterFilter,
    ScramblerFilter, TapFilter, TranscodeMode,
};
use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};

fn adaptive_filters() -> Vec<Box<dyn Filter>> {
    vec![
        Box::new(NullFilter::new()),
        Box::new(TapFilter::new("tap")),
        Box::new(FecEncoderFilter::fec_6_4().expect("valid (n, k)")),
        Box::new(FecDecoderFilter::fec_6_4().expect("valid (n, k)")),
        Box::new(CompressorFilter::new()),
        Box::new(DecompressorFilter::new()),
        Box::new(ScramblerFilter::new(7)),
        Box::new(DescramblerFilter::new(7)),
        Box::new(AudioTranscoderFilter::new(TranscodeMode::StereoToMono)),
        // Zero-length control packets fit any budget; the limiter also
        // treats non-video kinds as top priority, so even an exhausted
        // budget must not shed them.
        Box::new(RateLimiterFilter::new(1, 1_000_000)),
        // Fault filters that stay in the library's "forwarding" family.
        Box::new(DropEveryNth::new(1)),
    ]
}

fn control(seq: u64) -> Packet {
    Packet::new(StreamId::new(9), SeqNo::new(seq), PacketKind::Control, Vec::new())
}

fn audio(seq: u64) -> Packet {
    Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![seq as u8; 64])
}

#[test]
fn every_adaptive_filter_forwards_control_packets_immediately() {
    for mut filter in adaptive_filters() {
        let name = filter.name().to_string();
        // Interleave payload traffic so stateful filters (FEC, compressors)
        // have blocks in flight when the control packet arrives.  Some
        // filters legitimately reject raw audio (the decompressor wants
        // compressed input); the invariant under test is only about the
        // control packet, so payload errors are ignored.
        for seq in 0..3 {
            let mut sink: Vec<Packet> = Vec::new();
            let _ = filter.process(audio(seq), &mut sink);
        }
        let mut sink: Vec<Packet> = Vec::new();
        filter
            .process(control(100), &mut sink)
            .unwrap_or_else(|err| panic!("{name}: control packet rejected: {err}"));
        let forwarded: Vec<&Packet> = sink
            .iter()
            .filter(|p| p.kind() == PacketKind::Control)
            .collect();
        assert_eq!(
            forwarded.len(),
            1,
            "{name}: control packet not forwarded exactly once (got {})",
            forwarded.len()
        );
        assert_eq!(forwarded[0].seq().value(), 100, "{name}: control packet altered");
        assert!(forwarded[0].payload().is_empty(), "{name}: control payload altered");
    }
}

#[test]
fn control_packets_traverse_a_full_adaptive_chain_in_order() {
    // The exact shape the threaded applier's quiescence relies on: payloads
    // and a trailing marker through an encoder chain — everything the
    // window produced must come out before the marker does.
    let mut chain = FilterChain::new();
    chain
        .push_back(Box::new(FecEncoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("append to an empty chain");
    chain
        .push_back(Box::new(TapFilter::new("mid")))
        .expect("append after the encoder");

    let mut out = Vec::new();
    for seq in 0..4 {
        out.extend(chain.process(audio(seq)).expect("payloads process cleanly"));
    }
    out.extend(chain.process(control(999)).expect("markers process cleanly"));

    let marker_position = out
        .iter()
        .position(|p| p.kind() == PacketKind::Control)
        .expect("marker must emerge from the chain");
    assert_eq!(
        marker_position,
        out.len() - 1,
        "marker overtook window output: {:?}",
        out.iter().map(|p| p.kind().to_string()).collect::<Vec<_>>()
    );
    // A complete FEC(6,4) block: 4 sources + 2 parities ahead of the marker.
    assert_eq!(out.len(), 7);
}
