//! Property-based tests for the reconfigurable filter chain.
//!
//! Invariants under test:
//!
//! 1. A chain composed of inverse filter pairs (scrambler/descrambler,
//!    compressor/decompressor) is payload-preserving for arbitrary packets.
//! 2. An arbitrary schedule of insertions and removals of null filters never
//!    loses, duplicates, or reorders packets, and removal always flushes
//!    buffered data.
//! 3. FEC encode → arbitrary tolerable loss → decode restores every packet
//!    byte-for-byte.

use proptest::prelude::*;
use rapidware_filters::{
    CompressorFilter, DecompressorFilter, DescramblerFilter, FecDecoderFilter, FecEncoderFilter,
    FilterChain, NullFilter, ScramblerFilter,
};
use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};

fn packet(seq: u64, payload: Vec<u8>) -> Packet {
    Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inverse filter pairs restore payloads exactly, regardless of content.
    #[test]
    fn inverse_pairs_preserve_payloads(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..600), 1..30),
        key in any::<u64>(),
    ) {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(CompressorFilter::new())).unwrap();
        chain.push_back(Box::new(ScramblerFilter::new(key))).unwrap();
        chain.push_back(Box::new(DescramblerFilter::new(key))).unwrap();
        chain.push_back(Box::new(DecompressorFilter::new())).unwrap();

        for (seq, payload) in payloads.iter().enumerate() {
            let input = packet(seq as u64, payload.clone());
            let out = chain.process(input.clone()).unwrap();
            prop_assert_eq!(out.len(), 1);
            prop_assert_eq!(out[0].payload(), input.payload());
            prop_assert_eq!(out[0].seq(), input.seq());
        }
    }

    /// Arbitrary insert/remove schedules of pass-through filters never
    /// disturb the stream.
    #[test]
    fn insert_remove_schedule_preserves_stream(
        schedule in proptest::collection::vec((0usize..4, any::<bool>()), 0..30),
        packets_per_step in 1usize..5,
    ) {
        let mut chain = FilterChain::new();
        let mut next_seq = 0u64;
        let mut delivered: Vec<u64> = Vec::new();

        for (position, insert) in schedule {
            if insert {
                let position = position.min(chain.len());
                chain.insert(position, Box::new(NullFilter::new())).unwrap();
            } else if !chain.is_empty() {
                let position = position.min(chain.len() - 1);
                let (_filter, flushed) = chain.remove(position).unwrap();
                delivered.extend(flushed.iter().map(|p| p.seq().value()));
            }
            for _ in 0..packets_per_step {
                let out = chain.process(packet(next_seq, vec![next_seq as u8; 16])).unwrap();
                delivered.extend(out.iter().map(|p| p.seq().value()));
                next_seq += 1;
            }
        }
        delivered.extend(chain.flush().unwrap().iter().map(|p| p.seq().value()));

        prop_assert_eq!(delivered.len() as u64, next_seq, "no loss or duplication");
        for (index, seq) in delivered.iter().enumerate() {
            prop_assert_eq!(*seq, index as u64, "order preserved");
        }
    }

    /// FEC round-trip through the filter pair under any tolerable loss
    /// pattern restores the original packets exactly.
    #[test]
    fn fec_filter_pair_round_trips_under_loss(
        sizes in proptest::collection::vec(1usize..400, 8),
        lost_a in 0u64..4,
        lost_b in 4u64..8,
    ) {
        let mut encoder_chain = FilterChain::new();
        encoder_chain.push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap())).unwrap();
        let mut decoder_chain = FilterChain::new();
        decoder_chain.push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap())).unwrap();

        let originals: Vec<Packet> = sizes
            .iter()
            .enumerate()
            .map(|(seq, size)| packet(seq as u64, vec![(seq * 13 + 7) as u8; *size]))
            .collect();

        let mut encoded = Vec::new();
        for original in &originals {
            encoded.extend(encoder_chain.process(original.clone()).unwrap());
        }
        encoded.extend(encoder_chain.flush().unwrap());

        // Lose one source packet in each 4-packet block.
        let mut received = Vec::new();
        for packet in encoded {
            if packet.kind().is_payload()
                && (packet.seq().value() == lost_a || packet.seq().value() == lost_b)
            {
                continue;
            }
            received.extend(decoder_chain.process(packet).unwrap());
        }

        for original in &originals {
            let copies: Vec<&Packet> = received
                .iter()
                .filter(|p| p.kind().is_payload() && p.seq() == original.seq())
                .collect();
            prop_assert_eq!(copies.len(), 1, "seq {} exactly once", original.seq());
            prop_assert_eq!(copies[0].payload(), original.payload());
        }
    }
}
