//! The [`Filter`] trait and its supporting types.

use std::fmt;

use rapidware_packet::Packet;

use crate::error::FilterError;

/// Where, relative to the structure of the stream, a filter may be spliced
/// into a running chain.
///
/// The paper's example is a video FEC filter that must start "at a frame
/// boundary in the stream"; filters that operate per-packet can be inserted
/// anywhere, while block-oriented filters may prefer block boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum InsertionPoint {
    /// The filter may be inserted between any two packets.
    #[default]
    Anywhere,
    /// The filter must be inserted immediately before a packet whose
    /// [`Packet::is_insertion_boundary`] is `true` (e.g. the start of a
    /// video frame).
    FrameBoundary,
}

/// Description of a filter instance, reported to the control manager when it
/// queries a proxy for its current configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterDescriptor {
    /// The filter's unique-enough display name (e.g. `fec-encoder(6,4)`).
    pub name: String,
    /// The general kind of filter (e.g. `fec-encoder`).
    pub kind: String,
    /// Human-readable parameter summary.
    pub parameters: String,
}

impl fmt::Display for FilterDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameters.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{} [{}]", self.name, self.parameters)
        }
    }
}

/// The downstream side of a filter: where processed packets go.
///
/// In the synchronous chain the output is simply a `Vec<Packet>`; in the
/// threaded proxy runtime it is an adapter over a detachable sender.
pub trait FilterOutput {
    /// Emits one packet downstream.
    fn emit(&mut self, packet: Packet);
}

impl FilterOutput for Vec<Packet> {
    fn emit(&mut self, packet: Packet) {
        self.push(packet);
    }
}

/// A composable proxy filter.
///
/// A filter receives packets one at a time and emits zero or more packets to
/// its output: a transcoder rewrites payloads one-for-one, an FEC encoder
/// emits extra parity packets every `k` inputs, a rate limiter drops
/// packets, a decompressor may emit several packets for one input.
///
/// Filters must be `Send` so that the threaded proxy runtime can run each
/// one on its own thread, exactly as the paper's filters each own a thread.
pub trait Filter: Send {
    /// Short, stable, human-readable name of this filter instance.
    fn name(&self) -> &str;

    /// Processes one packet.
    ///
    /// # Errors
    ///
    /// Returns a [`FilterError`] if the packet cannot be processed; the
    /// chain treats filter errors as fatal for the offending packet but not
    /// for the stream.
    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError>;

    /// Processes a batch of packets in order.
    ///
    /// This is the hot path of the batched data plane: the synchronous
    /// [`FilterChain`](crate::FilterChain) and the threaded proxy runtime
    /// hand a filter a whole batch at a time so that per-packet dispatch,
    /// queue locking, and allocation are amortised across the batch.  The
    /// default implementation simply loops over [`process`](Self::process),
    /// so implementing `process` alone is always correct; hot filters
    /// override this to reuse scratch buffers or coalesce counter updates.
    ///
    /// **Contract:** for any packet sequence, `process_batch` must emit
    /// exactly what the equivalent sequence of `process` calls would emit,
    /// in the same order (the batch/serial parity property tests assert
    /// this for every built-in filter).
    ///
    /// ```
    /// use rapidware_filters::{Filter, NullFilter};
    /// use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
    ///
    /// # fn main() -> Result<(), rapidware_filters::FilterError> {
    /// let batch: Vec<Packet> = (0..32u64)
    ///     .map(|seq| Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![0u8; 64]))
    ///     .collect();
    ///
    /// let mut filter = NullFilter::new();
    /// let mut out: Vec<Packet> = Vec::with_capacity(batch.len());
    /// filter.process_batch(batch, &mut out)?;
    /// assert_eq!(out.len(), 32);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first [`FilterError`] encountered; packets already
    /// emitted downstream stay emitted, and the remainder of the batch is
    /// not processed.
    fn process_batch(
        &mut self,
        packets: Vec<Packet>,
        out: &mut dyn FilterOutput,
    ) -> Result<(), FilterError> {
        for packet in packets {
            self.process(packet, out)?;
        }
        Ok(())
    }

    /// Flushes any buffered state downstream.
    ///
    /// Called at end of stream and immediately before the filter is removed
    /// from a running chain, so that no data is stranded inside the filter.
    ///
    /// # Errors
    ///
    /// Returns a [`FilterError`] if buffered state cannot be flushed.
    fn flush(&mut self, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        let _ = out;
        Ok(())
    }

    /// Where this filter may be spliced into a running stream.
    fn insertion_point(&self) -> InsertionPoint {
        InsertionPoint::Anywhere
    }

    /// A structured description of this filter for management tooling.
    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name().to_string(),
            kind: self.name().split('(').next().unwrap_or(self.name()).to_string(),
            parameters: String::new(),
        }
    }

    /// Shared seal/reject counters, for filters that are part of a secure
    /// channel (see [`SecureChannelStats`](crate::SecureChannelStats)).
    ///
    /// The proxy runtimes move filters onto worker threads at insertion
    /// time, so status surfaces capture this handle *before* the move and
    /// aggregate from it afterwards.  Filters with no crypto role return
    /// `None` (the default).
    fn secure_stats(&self) -> Option<std::sync::Arc<crate::SecureChannelStats>> {
        None
    }
}

impl fmt::Debug for dyn Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Filter({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    struct Doubler;

    impl Filter for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }

        fn process(
            &mut self,
            packet: Packet,
            out: &mut dyn FilterOutput,
        ) -> Result<(), FilterError> {
            out.emit(packet.clone());
            out.emit(packet);
            Ok(())
        }
    }

    #[test]
    fn vec_is_a_filter_output() {
        let mut out: Vec<Packet> = Vec::new();
        let packet = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Data, vec![1]);
        let mut filter = Doubler;
        filter.process(packet, &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn default_trait_methods() {
        let filter = Doubler;
        assert_eq!(filter.insertion_point(), InsertionPoint::Anywhere);
        let descriptor = filter.descriptor();
        assert_eq!(descriptor.name, "doubler");
        assert_eq!(descriptor.kind, "doubler");
        assert_eq!(descriptor.to_string(), "doubler");
        let mut out: Vec<Packet> = Vec::new();
        let mut filter = Doubler;
        filter.flush(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn descriptor_display_with_parameters() {
        let descriptor = FilterDescriptor {
            name: "fec-encoder(6,4)".to_string(),
            kind: "fec-encoder".to_string(),
            parameters: "n=6, k=4".to_string(),
        };
        assert_eq!(descriptor.to_string(), "fec-encoder(6,4) [n=6, k=4]");
    }

    #[test]
    fn dyn_filter_debug() {
        let filter: Box<dyn Filter> = Box::new(Doubler);
        assert_eq!(format!("{filter:?}"), "Filter(doubler)");
    }

    #[test]
    fn insertion_point_default() {
        assert_eq!(InsertionPoint::default(), InsertionPoint::Anywhere);
    }
}
