//! Error type shared by filters and filter chains.

use std::error::Error;
use std::fmt;

use rapidware_fec::FecError;
use rapidware_packet::DecodeError;

/// Errors produced by filters and by chain reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// A chain index was out of range for the requested operation.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Current chain length.
        len: usize,
    },
    /// The FEC machinery inside a filter failed.
    Fec(FecError),
    /// A filter attempted to decode a packet and the wire data was invalid.
    Decode(DecodeError),
    /// A filter received a packet it cannot handle in its current state.
    Unsupported(String),
    /// A filter's internal invariant was violated (bug or corrupted input).
    Internal(String),
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::IndexOutOfRange { index, len } => {
                write!(f, "filter index {index} out of range for chain of length {len}")
            }
            FilterError::Fec(err) => write!(f, "fec error: {err}"),
            FilterError::Decode(err) => write!(f, "packet decode error: {err}"),
            FilterError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            FilterError::Internal(what) => write!(f, "internal filter error: {what}"),
        }
    }
}

impl Error for FilterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FilterError::Fec(err) => Some(err),
            FilterError::Decode(err) => Some(err),
            _ => None,
        }
    }
}

impl From<FecError> for FilterError {
    fn from(err: FecError) -> Self {
        FilterError::Fec(err)
    }
}

impl From<DecodeError> for FilterError {
    fn from(err: DecodeError) -> Self {
        FilterError::Decode(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = FilterError::Fec(FecError::UnequalShardLengths);
        assert!(err.to_string().contains("fec error"));
        assert!(err.source().is_some());
        let err = FilterError::IndexOutOfRange { index: 5, len: 2 };
        assert!(err.to_string().contains('5'));
        assert!(err.source().is_none());
    }

    #[test]
    fn conversions() {
        let err: FilterError = FecError::SingularMatrix.into();
        assert_eq!(err, FilterError::Fec(FecError::SingularMatrix));
        let err: FilterError = DecodeError::Truncated.into();
        assert_eq!(err, FilterError::Decode(DecodeError::Truncated));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FilterError>();
    }
}
