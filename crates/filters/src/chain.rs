//! The dynamically reconfigurable filter chain.
//!
//! `FilterChain` is the data-plane half of the paper's `ControlThread`: an
//! ordered vector of filters through which every packet of a stream flows,
//! supporting insertion, removal, replacement, and reordering *while the
//! stream is running*.  The synchronous chain here is deterministic (used by
//! the simulator and the benchmarks); the threaded proxy runtime in
//! `rapidware-proxy` applies the same operations to thread-per-filter chains
//! connected by detachable pipes.

use std::fmt;
use std::sync::Arc;

use rapidware_packet::Packet;
use rapidware_telemetry::now_ns;

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, InsertionPoint};
use crate::telemetry::ChainSpans;

/// A record of a reconfiguration performed on a chain, for observability and
/// tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainEvent {
    /// A filter was inserted at the given position.
    Inserted {
        /// Filter name.
        name: String,
        /// Position in the chain.
        position: usize,
    },
    /// A filter insertion was deferred until the next frame boundary.
    InsertionDeferred {
        /// Filter name.
        name: String,
        /// Requested position.
        position: usize,
    },
    /// A filter was removed from the given position.
    Removed {
        /// Filter name.
        name: String,
        /// Position in the chain.
        position: usize,
    },
    /// A filter was moved from one position to another.
    Moved {
        /// Filter name.
        name: String,
        /// Original position.
        from: usize,
        /// New position.
        to: usize,
    },
}

struct PendingInsertion {
    position: usize,
    filter: Box<dyn Filter>,
}

/// An ordered, runtime-reconfigurable sequence of filters.
pub struct FilterChain {
    filters: Vec<Box<dyn Filter>>,
    pending: Vec<PendingInsertion>,
    events: Vec<ChainEvent>,
    packets_in: u64,
    packets_out: u64,
    spans: Option<Arc<ChainSpans>>,
}

impl Default for FilterChain {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for FilterChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilterChain")
            .field("filters", &self.names())
            .field("pending", &self.pending.len())
            .field("packets_in", &self.packets_in)
            .field("packets_out", &self.packets_out)
            .finish()
    }
}

impl FilterChain {
    /// Creates an empty chain (a "null proxy": packets pass through
    /// unchanged).
    pub fn new() -> Self {
        Self {
            filters: Vec::new(),
            pending: Vec::new(),
            events: Vec::new(),
            packets_in: 0,
            packets_out: 0,
            spans: None,
        }
    }

    /// Attaches latency spans: incoming packets are ingress-stamped, every
    /// batch records its chain-processing duration, per-filter stage
    /// timings are sampled 1-in-N, and — when `spans` was built with
    /// [`ChainSpans::egress`] — each packet records its end-to-end latency
    /// as it leaves the chain.  A chain without spans (the default) takes
    /// no clock readings at all.
    pub fn set_spans(&mut self, spans: Arc<ChainSpans>) {
        self.spans = Some(spans);
    }

    /// The attached latency spans, if any.
    pub fn spans(&self) -> Option<&Arc<ChainSpans>> {
        self.spans.as_ref()
    }

    /// Number of active filters (excluding deferred insertions).
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Returns `true` if the chain has no active filters.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Number of insertions waiting for a frame boundary.
    pub fn pending_insertions(&self) -> usize {
        self.pending.len()
    }

    /// Names of the active filters, in order.
    pub fn names(&self) -> Vec<String> {
        self.filters.iter().map(|f| f.name().to_string()).collect()
    }

    /// Descriptors of the active filters, in order (what the control manager
    /// displays).
    pub fn descriptors(&self) -> Vec<FilterDescriptor> {
        self.filters.iter().map(|f| f.descriptor()).collect()
    }

    /// Total packets accepted by the chain so far.
    pub fn packets_in(&self) -> u64 {
        self.packets_in
    }

    /// Total packets emitted by the chain so far.
    pub fn packets_out(&self) -> u64 {
        self.packets_out
    }

    /// Drains the log of reconfiguration events.
    pub fn take_events(&mut self) -> Vec<ChainEvent> {
        std::mem::take(&mut self.events)
    }

    /// Aggregated seal/reject counters across every secure-channel filter
    /// in the chain (active and pending); all-zero when the chain carries
    /// no crypto stage.
    pub fn secure_snapshot(&self) -> crate::SecureChannelSnapshot {
        let mut total = crate::SecureChannelSnapshot::default();
        for filter in self.filters.iter().chain(self.pending.iter().map(|p| &p.filter)) {
            if let Some(stats) = filter.secure_stats() {
                total.merge(stats.snapshot());
            }
        }
        total
    }

    /// Appends a filter at the end of the chain.
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` for interface stability with
    /// [`insert`](Self::insert).
    pub fn push_back(&mut self, filter: Box<dyn Filter>) -> Result<(), FilterError> {
        let position = self.filters.len();
        self.insert(position, filter)
    }

    /// Inserts a filter at `position` (0 = closest to the stream source).
    ///
    /// Filters whose [`InsertionPoint`] is `FrameBoundary` are not activated
    /// immediately: the insertion is deferred until the next packet that is
    /// an insertion boundary reaches the chain, so the filter never sees a
    /// partial frame.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::IndexOutOfRange`] if `position > len()`.
    pub fn insert(&mut self, position: usize, filter: Box<dyn Filter>) -> Result<(), FilterError> {
        if position > self.filters.len() {
            return Err(FilterError::IndexOutOfRange {
                index: position,
                len: self.filters.len(),
            });
        }
        match filter.insertion_point() {
            InsertionPoint::Anywhere => {
                self.events.push(ChainEvent::Inserted {
                    name: filter.name().to_string(),
                    position,
                });
                self.filters.insert(position, filter);
            }
            InsertionPoint::FrameBoundary => {
                self.events.push(ChainEvent::InsertionDeferred {
                    name: filter.name().to_string(),
                    position,
                });
                self.pending.push(PendingInsertion { position, filter });
            }
        }
        Ok(())
    }

    /// Removes the filter at `position`, flushing any data it had buffered
    /// through the rest of the chain.
    ///
    /// Returns the removed filter together with the packets produced by the
    /// flush (already processed by the downstream filters), which the caller
    /// must forward so no data is lost.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::IndexOutOfRange`] if `position >= len()`.
    pub fn remove(
        &mut self,
        position: usize,
    ) -> Result<(Box<dyn Filter>, Vec<Packet>), FilterError> {
        if position >= self.filters.len() {
            return Err(FilterError::IndexOutOfRange {
                index: position,
                len: self.filters.len(),
            });
        }
        let mut filter = self.filters.remove(position);
        self.events.push(ChainEvent::Removed {
            name: filter.name().to_string(),
            position,
        });
        // Flush the removed filter, then run its residue through the filters
        // that now occupy positions `position..`.
        let mut flushed: Vec<Packet> = Vec::new();
        filter.flush(&mut flushed)?;
        let forwarded = self.run_from(position, flushed)?;
        self.packets_out += forwarded.len() as u64;
        Ok((filter, forwarded))
    }

    /// Replaces the filter at `position`, returning the old filter and any
    /// packets flushed out of it.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::IndexOutOfRange`] if `position >= len()`.
    pub fn replace(
        &mut self,
        position: usize,
        filter: Box<dyn Filter>,
    ) -> Result<(Box<dyn Filter>, Vec<Packet>), FilterError> {
        let (old, flushed) = self.remove(position)?;
        self.insert(position, filter)?;
        Ok((old, flushed))
    }

    /// Moves the filter at `from` to position `to`.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::IndexOutOfRange`] if either index is out of
    /// range.
    pub fn move_filter(&mut self, from: usize, to: usize) -> Result<(), FilterError> {
        if from >= self.filters.len() || to >= self.filters.len() {
            return Err(FilterError::IndexOutOfRange {
                index: from.max(to),
                len: self.filters.len(),
            });
        }
        let filter = self.filters.remove(from);
        self.events.push(ChainEvent::Moved {
            name: filter.name().to_string(),
            from,
            to,
        });
        self.filters.insert(to, filter);
        Ok(())
    }

    /// Immutable access to the filter at `position`.
    pub fn get(&self, position: usize) -> Option<&dyn Filter> {
        self.filters.get(position).map(AsRef::as_ref)
    }

    /// Processes one packet through the whole chain, returning the packets
    /// that emerge at the far end.
    ///
    /// Deferred insertions are applied first if this packet is an insertion
    /// boundary.
    ///
    /// # Errors
    ///
    /// Propagates the first filter error encountered.
    pub fn process(&mut self, mut packet: Packet) -> Result<Vec<Packet>, FilterError> {
        let span = self.spans.as_ref().map(|spans| {
            let now = now_ns();
            packet.stamp_ingress_ns(now);
            (Arc::clone(spans), now)
        });
        self.packets_in += 1;
        if !self.pending.is_empty() && packet.is_insertion_boundary() {
            self.apply_pending();
        }
        let out = self.run_from(0, vec![packet])?;
        self.packets_out += out.len() as u64;
        if let Some((spans, start)) = span {
            record_exit(&spans, start, &out);
        }
        Ok(out)
    }

    /// Processes a batch of packets, concatenating the outputs.
    ///
    /// # Errors
    ///
    /// Propagates the first filter error encountered.
    pub fn process_all(
        &mut self,
        packets: impl IntoIterator<Item = Packet>,
    ) -> Result<Vec<Packet>, FilterError> {
        let mut out = Vec::new();
        for packet in packets {
            out.extend(self.process(packet)?);
        }
        Ok(out)
    }

    /// Processes a whole batch through the chain, returning everything that
    /// emerges at the far end.
    ///
    /// This is the batched data plane's entry point: instead of threading
    /// each packet through every filter individually (one intermediate
    /// `Vec` per filter *per packet*), the batch flows level by level —
    /// each filter's [`Filter::process_batch`] consumes the whole batch and
    /// emits into a single output buffer, so per-packet dispatch and
    /// allocation are amortised across the batch.
    ///
    /// The output is exactly what the same packets fed one at a time
    /// through [`process`](Self::process) would produce, including the
    /// frame-boundary handling of deferred insertions: when insertions are
    /// pending, the batch is split at each insertion boundary and the
    /// pending filters are activated before the boundary packet is
    /// processed.
    ///
    /// ```
    /// use rapidware_filters::{FecEncoderFilter, FilterChain};
    /// use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
    ///
    /// # fn main() -> Result<(), rapidware_filters::FilterError> {
    /// let mut chain = FilterChain::new();
    /// chain.push_back(Box::new(FecEncoderFilter::fec_6_4()?))?;
    ///
    /// let batch: Vec<Packet> = (0..8u64)
    ///     .map(|seq| Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![0u8; 64]))
    ///     .collect();
    /// let out = chain.process_batch(batch)?;
    /// // 8 sources plus two blocks' worth of FEC(6,4) parities.
    /// assert_eq!(out.len(), 12);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first filter error encountered; the remainder of the
    /// batch is not processed (and does not count towards
    /// [`packets_in`](Self::packets_in)).
    pub fn process_batch(&mut self, packets: Vec<Packet>) -> Result<Vec<Packet>, FilterError> {
        let mut output: Vec<Packet> = Vec::with_capacity(packets.len());
        self.process_batch_into(packets, &mut output)?;
        Ok(output)
    }

    /// Like [`process_batch`](Self::process_batch), but appends the chain's
    /// output to a caller-provided buffer instead of allocating a fresh
    /// one.
    ///
    /// This is the re-entrant stepping interface the sharded runtime uses:
    /// a pooled chain task owns a persistent output buffer (its
    /// back-pressure queue towards the downstream pipe) and appends each
    /// batch's results to whatever could not be forwarded yet, so the hot
    /// loop allocates nothing when the chain is keeping up.
    ///
    /// # Errors
    ///
    /// Propagates the first filter error encountered; packets appended to
    /// `output` before the error stay appended.
    pub fn process_batch_into(
        &mut self,
        mut packets: Vec<Packet>,
        output: &mut Vec<Packet>,
    ) -> Result<(), FilterError> {
        let before = output.len();
        // One clock read stamps the whole batch: packets that crossed an
        // instrumented boundary upstream keep their original stamp (first
        // touch wins), locally injected packets start their span here.
        let span = self.spans.as_ref().map(|spans| {
            let now = now_ns();
            for packet in &mut packets {
                packet.stamp_ingress_ns(now);
            }
            (Arc::clone(spans), now)
        });
        if self.pending.is_empty() {
            self.run_batch_from(0, packets, output)?;
        } else {
            // Deferred insertions activate at frame boundaries, so the batch
            // is processed in segments: everything before a boundary flows
            // through the old chain, then the pending filters are applied.
            let mut segment: Vec<Packet> = Vec::new();
            for packet in packets {
                if !self.pending.is_empty() && packet.is_insertion_boundary() {
                    if !segment.is_empty() {
                        let chunk = std::mem::take(&mut segment);
                        self.run_batch_from(0, chunk, output)?;
                    }
                    self.apply_pending();
                }
                segment.push(packet);
            }
            if !segment.is_empty() {
                self.run_batch_from(0, segment, output)?;
            }
        }
        self.packets_out += (output.len() - before) as u64;
        if let Some((spans, start)) = span {
            record_exit(&spans, start, &output[before..]);
        }
        Ok(())
    }

    /// Runs one batch through the filters starting at `start`, appending
    /// the survivors to `output`.
    fn run_batch_from(
        &mut self,
        start: usize,
        packets: Vec<Packet>,
        output: &mut Vec<Packet>,
    ) -> Result<(), FilterError> {
        // Counted per segment (not per whole batch) so that a filter error
        // does not inflate packets_in with packets that were never offered
        // to the filters.
        self.packets_in += packets.len() as u64;
        // Per-filter timing is sampled: most batches take the untimed
        // branch and pay nothing beyond the `Option` check.
        let timing = match &self.spans {
            Some(spans) if spans.sample_stages() => Some(Arc::clone(spans)),
            _ => None,
        };
        let mut current = packets;
        for index in start..self.filters.len() {
            if current.is_empty() {
                break;
            }
            let mut next: Vec<Packet> = Vec::with_capacity(current.len());
            if let Some(spans) = &timing {
                let stage_start = now_ns();
                self.filters[index].process_batch(current, &mut next)?;
                let elapsed = now_ns().saturating_sub(stage_start);
                spans.stage_histogram(self.filters[index].name()).record(elapsed);
            } else {
                self.filters[index].process_batch(current, &mut next)?;
            }
            current = next;
        }
        output.append(&mut current);
        Ok(())
    }

    /// Flushes every filter (front to back), applying any still-pending
    /// insertions first, and returns the packets that emerge.
    ///
    /// # Errors
    ///
    /// Propagates the first filter error encountered.
    pub fn flush(&mut self) -> Result<Vec<Packet>, FilterError> {
        self.apply_pending();
        let mut carried: Vec<Packet> = Vec::new();
        let mut output: Vec<Packet> = Vec::new();
        for index in 0..self.filters.len() {
            // Packets carried from upstream flushes pass through this filter
            // first, then the filter itself is flushed.
            let mut next: Vec<Packet> = Vec::new();
            for packet in carried.drain(..) {
                self.filters[index].process(packet, &mut next)?;
            }
            self.filters[index].flush(&mut next)?;
            carried = next;
        }
        output.extend(carried);
        self.packets_out += output.len() as u64;
        Ok(output)
    }

    fn apply_pending(&mut self) {
        // Apply in request order; positions are clamped to the current
        // length so earlier insertions cannot invalidate later ones.
        let pending = std::mem::take(&mut self.pending);
        for insertion in pending {
            let position = insertion.position.min(self.filters.len());
            self.events.push(ChainEvent::Inserted {
                name: insertion.filter.name().to_string(),
                position,
            });
            self.filters.insert(position, insertion.filter);
        }
    }

    /// Runs `packets` through the filters starting at `start`.
    fn run_from(&mut self, start: usize, packets: Vec<Packet>) -> Result<Vec<Packet>, FilterError> {
        let mut current = packets;
        for index in start..self.filters.len() {
            if current.is_empty() {
                break;
            }
            let mut next: Vec<Packet> = Vec::new();
            for packet in current {
                self.filters[index].process(packet, &mut next)?;
            }
            current = next;
        }
        Ok(current)
    }
}

/// Records the chain-exit instruments: the whole-batch processing duration
/// and, when the chain is an egress stage, each emitted packet's
/// end-to-end latency from its ingress stamp.  One clock read covers the
/// whole batch.
fn record_exit(spans: &ChainSpans, start_ns: u64, emitted: &[Packet]) {
    let now = now_ns();
    spans.batch_ns().record(now.saturating_sub(start_ns));
    if let Some(e2e) = spans.e2e() {
        // Packets stamped at the same upstream boundary share an ingress
        // timestamp, so a batch typically collapses into one or two runs of
        // identical latencies — record each run as a group instead of
        // paying the histogram's shard lookup and atomics per packet.
        let mut run_value = 0u64;
        let mut run_count = 0u64;
        for packet in emitted {
            let ingress = packet.ingress_ns();
            if ingress == 0 {
                continue;
            }
            let value = now.saturating_sub(ingress);
            if run_count > 0 && value == run_value {
                run_count += 1;
            } else {
                e2e.record_n(run_value, run_count);
                run_value = value;
                run_count = 1;
            }
        }
        e2e.record_n(run_value, run_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterOutput;
    use rapidware_packet::{FrameType, PacketKind, SeqNo, StreamId};

    fn audio_packet(seq: u64) -> Packet {
        Packet::new(
            StreamId::new(1),
            SeqNo::new(seq),
            PacketKind::AudioData,
            vec![seq as u8; 16],
        )
    }

    fn video_packet(seq: u64, boundary: bool) -> Packet {
        Packet::new(
            StreamId::new(1),
            SeqNo::new(seq),
            PacketKind::VideoFrame {
                frame: FrameType::P,
                boundary,
            },
            vec![seq as u8; 16],
        )
    }

    /// Tags packets by appending a byte to the payload; used to verify
    /// ordering of filters.
    struct Tagger {
        name: String,
        tag: u8,
    }

    impl Tagger {
        fn new(tag: u8) -> Self {
            Self {
                name: format!("tagger-{tag}"),
                tag,
            }
        }
    }

    impl Filter for Tagger {
        fn name(&self) -> &str {
            &self.name
        }

        fn process(
            &mut self,
            packet: Packet,
            out: &mut dyn FilterOutput,
        ) -> Result<(), FilterError> {
            let mut payload = packet.payload().to_vec();
            payload.push(self.tag);
            out.emit(packet.with_payload(payload));
            Ok(())
        }
    }

    /// Buffers packets and only releases them on flush.
    struct Hoarder {
        held: Vec<Packet>,
    }

    impl Filter for Hoarder {
        fn name(&self) -> &str {
            "hoarder"
        }

        fn process(
            &mut self,
            packet: Packet,
            _out: &mut dyn FilterOutput,
        ) -> Result<(), FilterError> {
            self.held.push(packet);
            Ok(())
        }

        fn flush(&mut self, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
            for packet in self.held.drain(..) {
                out.emit(packet);
            }
            Ok(())
        }
    }

    /// A filter that requires a frame boundary to be inserted.
    struct BoundaryTagger(Tagger);

    impl Filter for BoundaryTagger {
        fn name(&self) -> &str {
            self.0.name()
        }

        fn process(
            &mut self,
            packet: Packet,
            out: &mut dyn FilterOutput,
        ) -> Result<(), FilterError> {
            self.0.process(packet, out)
        }

        fn insertion_point(&self) -> InsertionPoint {
            InsertionPoint::FrameBoundary
        }
    }

    #[test]
    fn empty_chain_is_identity() {
        let mut chain = FilterChain::new();
        assert!(chain.is_empty());
        let packet = audio_packet(0);
        let out = chain.process(packet.clone()).unwrap();
        assert_eq!(out, vec![packet]);
        assert_eq!(chain.packets_in(), 1);
        assert_eq!(chain.packets_out(), 1);
    }

    #[test]
    fn filters_apply_in_order() {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(Tagger::new(1))).unwrap();
        chain.push_back(Box::new(Tagger::new(2))).unwrap();
        let out = chain.process(audio_packet(0)).unwrap();
        let payload = out[0].payload();
        assert_eq!(&payload[payload.len() - 2..], &[1, 2]);
        assert_eq!(chain.names(), vec!["tagger-1", "tagger-2"]);
    }

    #[test]
    fn insert_in_the_middle_changes_order() {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(Tagger::new(1))).unwrap();
        chain.push_back(Box::new(Tagger::new(3))).unwrap();
        chain.insert(1, Box::new(Tagger::new(2))).unwrap();
        let out = chain.process(audio_packet(0)).unwrap();
        let payload = out[0].payload();
        assert_eq!(&payload[payload.len() - 3..], &[1, 2, 3]);
    }

    #[test]
    fn insert_out_of_range_is_rejected() {
        let mut chain = FilterChain::new();
        let err = chain.insert(1, Box::new(Tagger::new(1))).unwrap_err();
        assert_eq!(err, FilterError::IndexOutOfRange { index: 1, len: 0 });
    }

    #[test]
    fn remove_flushes_buffered_data_through_downstream_filters() {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(Hoarder { held: Vec::new() })).unwrap();
        chain.push_back(Box::new(Tagger::new(9))).unwrap();
        // Two packets disappear into the hoarder.
        assert!(chain.process(audio_packet(0)).unwrap().is_empty());
        assert!(chain.process(audio_packet(1)).unwrap().is_empty());
        // Removing the hoarder flushes them, and they still pass the tagger.
        let (removed, flushed) = chain.remove(0).unwrap();
        assert_eq!(removed.name(), "hoarder");
        assert_eq!(flushed.len(), 2);
        for packet in &flushed {
            assert_eq!(*packet.payload().last().unwrap(), 9);
        }
        assert_eq!(chain.names(), vec!["tagger-9"]);
    }

    #[test]
    fn remove_out_of_range_is_rejected() {
        let mut chain = FilterChain::new();
        assert!(matches!(
            chain.remove(0),
            Err(FilterError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn replace_swaps_the_filter() {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(Tagger::new(1))).unwrap();
        let (old, _) = chain.replace(0, Box::new(Tagger::new(2))).unwrap();
        assert_eq!(old.name(), "tagger-1");
        assert_eq!(chain.names(), vec!["tagger-2"]);
    }

    #[test]
    fn move_filter_reorders() {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(Tagger::new(1))).unwrap();
        chain.push_back(Box::new(Tagger::new(2))).unwrap();
        chain.push_back(Box::new(Tagger::new(3))).unwrap();
        chain.move_filter(2, 0).unwrap();
        assert_eq!(chain.names(), vec!["tagger-3", "tagger-1", "tagger-2"]);
        let out = chain.process(audio_packet(0)).unwrap();
        let payload = out[0].payload();
        assert_eq!(&payload[payload.len() - 3..], &[3, 1, 2]);
        assert!(chain.move_filter(0, 5).is_err());
    }

    #[test]
    fn frame_boundary_insertion_is_deferred() {
        let mut chain = FilterChain::new();
        chain
            .insert(0, Box::new(BoundaryTagger(Tagger::new(7))))
            .unwrap();
        assert_eq!(chain.len(), 0);
        assert_eq!(chain.pending_insertions(), 1);

        // A non-boundary video packet does not trigger the insertion.
        let out = chain.process(video_packet(0, false)).unwrap();
        assert_eq!(out[0].payload().len(), 16, "filter not active yet");
        assert_eq!(chain.len(), 0);

        // The next frame boundary activates it, and the boundary packet
        // itself goes through the new filter.
        let out = chain.process(video_packet(1, true)).unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(*out[0].payload().last().unwrap(), 7);

        let events = chain.take_events();
        assert!(matches!(events[0], ChainEvent::InsertionDeferred { .. }));
        assert!(matches!(events[1], ChainEvent::Inserted { position: 0, .. }));
    }

    #[test]
    fn flush_applies_pending_and_drains_buffers() {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(Hoarder { held: Vec::new() })).unwrap();
        chain.process(audio_packet(0)).unwrap();
        chain.process(audio_packet(1)).unwrap();
        let out = chain.flush().unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].seq().value(), 0);
        assert_eq!(out[1].seq().value(), 1);
    }

    #[test]
    fn process_all_concatenates_outputs() {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(Tagger::new(1))).unwrap();
        let packets: Vec<Packet> = (0..5).map(audio_packet).collect();
        let out = chain.process_all(packets).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(chain.packets_in(), 5);
        assert_eq!(chain.packets_out(), 5);
    }

    #[test]
    fn secure_snapshot_sums_the_crypto_stages() {
        use crate::{DecryptFilter, EncryptFilter};
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(EncryptFilter::new(0xFEED))).unwrap();
        chain.push_back(Box::new(DecryptFilter::new(0xFEED))).unwrap();
        assert!(chain.secure_snapshot().is_empty());
        let out = chain.process(audio_packet(0)).unwrap();
        assert_eq!(out.len(), 1);
        let snapshot = chain.secure_snapshot();
        assert_eq!(snapshot.sealed, 1);
        assert_eq!(snapshot.opened, 1);
        assert_eq!(snapshot.rejected, 0);
    }

    #[test]
    fn get_and_descriptors() {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(Tagger::new(4))).unwrap();
        assert_eq!(chain.get(0).unwrap().name(), "tagger-4");
        assert!(chain.get(1).is_none());
        assert_eq!(chain.descriptors()[0].name, "tagger-4");
        assert!(!format!("{chain:?}").is_empty());
    }
}
