//! # rapidware-filters — composable proxy filters
//!
//! This crate provides the filter abstraction at the heart of McKinley &
//! Padmanabhan's composable-proxy framework, together with a library of
//! ready-made filters:
//!
//! * [`Filter`] — the trait every proxy filter implements (the analogue of
//!   the paper's `Filter` base class).  A filter consumes packets one at a
//!   time and emits zero or more packets downstream through a
//!   [`FilterOutput`].
//! * [`FilterChain`] — an ordered, *dynamically reconfigurable* sequence of
//!   filters (the data-plane state managed by the paper's `ControlThread`).
//!   Filters can be inserted, removed, replaced, and reordered while packets
//!   are flowing; insertions that require a clean point in the stream are
//!   deferred until the next frame boundary.
//! * [`FilterContainer`] — a named bundle of filters used when uploading new
//!   filter implementations into a proxy (the paper's `FilterContainer`).
//! * Built-in filters: FEC encoder/decoder ([`FecEncoderFilter`],
//!   [`FecDecoderFilter`]), an audio transcoder ([`AudioTranscoderFilter`]),
//!   a run-length compressor pair ([`CompressorFilter`],
//!   [`DecompressorFilter`]), a priority-based rate limiter
//!   ([`RateLimiterFilter`]), a payload scrambler pair ([`ScramblerFilter`],
//!   [`DescramblerFilter`]), an AEAD secure-channel pair ([`EncryptFilter`],
//!   [`DecryptFilter`] — ChaCha20-Poly1305 with control-frame key
//!   rotation), a counting tap ([`TapFilter`]), the identity
//!   [`NullFilter`], and fault-injection filters ([`DropEveryNth`],
//!   [`DuplicateFilter`], [`ReorderFilter`]).
//!
//! ## Example: splicing an FEC encoder into a live chain
//!
//! ```
//! use rapidware_filters::{FilterChain, FecEncoderFilter, NullFilter};
//! use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
//!
//! # fn main() -> Result<(), rapidware_filters::FilterError> {
//! let mut chain = FilterChain::new();
//! chain.push_back(Box::new(NullFilter::new()))?;
//!
//! // Drive some packets through the null chain.
//! let mut out = Vec::new();
//! for seq in 0..4u64 {
//!     let p = Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![0u8; 64]);
//!     out.extend(chain.process(p)?);
//! }
//! assert_eq!(out.len(), 4);
//!
//! // Insert an FEC(6,4) encoder at position 1 while the stream is running.
//! chain.insert(1, Box::new(FecEncoderFilter::fec_6_4()?))?;
//! assert_eq!(chain.names(), vec!["null", "fec-encoder(6,4)"]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builtin;
mod chain;
mod container;
mod error;
mod filter;
mod telemetry;

pub use builtin::compress::{CompressorFilter, DecompressorFilter};
pub use builtin::faults::{DropEveryNth, DuplicateFilter, ReorderFilter};
pub use builtin::fec_decode::{FecDecoderFilter, FecDecoderStats};
pub use builtin::fec_encode::FecEncoderFilter;
pub use builtin::null::NullFilter;
pub use builtin::ratelimit::RateLimiterFilter;
pub use builtin::scramble::{DescramblerFilter, ScramblerFilter};
pub use builtin::secure::{
    parse_rekey, rekey_packet, DecryptFilter, EncryptFilter, SecureChannelSnapshot,
    SecureChannelStats, TAG_LEN,
};
pub use builtin::tap::{TapCounters, TapFilter};
pub use builtin::transcode::{AudioTranscoderFilter, TranscodeMode};
pub use chain::{ChainEvent, FilterChain};
pub use container::FilterContainer;
pub use error::FilterError;
pub use filter::{FilterDescriptor, Filter, FilterOutput, InsertionPoint};
pub use telemetry::{ChainSpans, STAGE_SAMPLE_EVERY};
