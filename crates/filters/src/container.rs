//! The [`FilterContainer`]: a named bundle of filters.
//!
//! The paper uses a `FilterContainer` to hold an array of `Filter` objects
//! when new filter implementations are uploaded into a running proxy; the
//! control manager can ask the container how many filters it holds and for
//! an enumeration of their names.  The Rust analogue is a simple ordered
//! collection of boxed filters keyed by name.

use std::fmt;

use crate::filter::{Filter, FilterDescriptor};

/// An ordered, named collection of filters ready to be installed in a proxy.
pub struct FilterContainer {
    name: String,
    filters: Vec<Box<dyn Filter>>,
}

impl fmt::Debug for FilterContainer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilterContainer")
            .field("name", &self.name)
            .field("filters", &self.filter_names())
            .finish()
    }
}

impl FilterContainer {
    /// Creates an empty container with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            filters: Vec::new(),
        }
    }

    /// Container name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a filter to the container, returning `self` for chaining.
    #[must_use]
    pub fn with_filter(mut self, filter: Box<dyn Filter>) -> Self {
        self.filters.push(filter);
        self
    }

    /// Adds a filter to the container.
    pub fn add(&mut self, filter: Box<dyn Filter>) {
        self.filters.push(filter);
    }

    /// Number of filters held (the paper's `getFilterCount`).
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Returns `true` if the container holds no filters.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Enumeration of the held filters' names (the paper's name
    /// enumeration method).
    pub fn filter_names(&self) -> Vec<String> {
        self.filters.iter().map(|f| f.name().to_string()).collect()
    }

    /// Descriptors of the held filters.
    pub fn descriptors(&self) -> Vec<FilterDescriptor> {
        self.filters.iter().map(|f| f.descriptor()).collect()
    }

    /// Removes and returns the filter with the given name, if present.
    pub fn take(&mut self, name: &str) -> Option<Box<dyn Filter>> {
        let index = self.filters.iter().position(|f| f.name() == name)?;
        Some(self.filters.remove(index))
    }

    /// Consumes the container, returning its filters in order.
    pub fn into_filters(self) -> Vec<Box<dyn Filter>> {
        self.filters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::null::NullFilter;
    use crate::builtin::tap::TapFilter;

    #[test]
    fn container_enumerates_filters() {
        let container = FilterContainer::new("uploaded-filters")
            .with_filter(Box::new(NullFilter::new()))
            .with_filter(Box::new(TapFilter::new("tap")));
        assert_eq!(container.name(), "uploaded-filters");
        assert_eq!(container.len(), 2);
        assert!(!container.is_empty());
        assert_eq!(container.filter_names(), vec!["null", "tap"]);
        assert_eq!(container.descriptors().len(), 2);
        assert!(format!("{container:?}").contains("uploaded-filters"));
    }

    #[test]
    fn take_removes_by_name() {
        let mut container = FilterContainer::new("bundle");
        container.add(Box::new(NullFilter::new()));
        container.add(Box::new(TapFilter::new("tap")));
        let filter = container.take("null").expect("present");
        assert_eq!(filter.name(), "null");
        assert_eq!(container.len(), 1);
        assert!(container.take("null").is_none());
    }

    #[test]
    fn into_filters_preserves_order() {
        let container = FilterContainer::new("bundle")
            .with_filter(Box::new(TapFilter::new("first")))
            .with_filter(Box::new(TapFilter::new("second")));
        let filters = container.into_filters();
        assert_eq!(filters[0].name(), "first");
        assert_eq!(filters[1].name(), "second");
    }

    #[test]
    fn empty_container() {
        let container = FilterContainer::new("empty");
        assert!(container.is_empty());
        assert!(container.filter_names().is_empty());
    }
}
