//! Packet-lifecycle spans for a [`FilterChain`](crate::FilterChain).
//!
//! A [`ChainSpans`] bundles the latency instruments one chain records
//! into: the whole-chain batch-processing histogram, the sampled
//! per-filter stage histograms, and — for chains that sit at the egress
//! edge of a stream or lane — the end-to-end latency histogram fed by the
//! ingress stamps the packets carry ([`Packet::ingress_ns`]).
//!
//! The sync applier, the pooled runtime, and the thread-per-filter chain
//! all attach the same type, so latency series have identical names and
//! semantics whichever data plane a stream runs on.
//!
//! [`Packet::ingress_ns`]: rapidware_packet::Packet::ingress_ns

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rapidware_telemetry::{Histogram, Registry, Sampler};

/// How many batches pass between two per-filter timing samples.
///
/// Per-filter timing costs two span-clock reads per filter per batch; at
/// 1-in-64 the cost rounds to zero while a steady stream still yields
/// hundreds of samples per second.  Ingress stamping and end-to-end
/// recording are *not* sampled — they are one clock read per batch.
pub const STAGE_SAMPLE_EVERY: u64 = 64;

/// The latency instruments one chain records into.
///
/// Created by the proxy when telemetry is enabled and attached with
/// [`FilterChain::set_spans`](crate::FilterChain::set_spans) (or the
/// threaded chain's equivalent).  All histograms live in the proxy-wide
/// [`Registry`] under this chain's scope prefix:
///
/// * `<scope>.batch_ns` — wall time one batch spent inside the chain;
/// * `<scope>.e2e_ns` — ingress-to-chain-exit latency per packet
///   (egress chains only);
/// * `<scope>.filter.<name>_ns` — sampled per-filter batch durations.
pub struct ChainSpans {
    registry: Arc<Registry>,
    scope: String,
    batch_ns: Arc<Histogram>,
    e2e: Option<Arc<Histogram>>,
    sampler: Sampler,
    // Lazily registered per filter name: splices add filters while packets
    // flow, and registration is the one moment allocation is allowed.
    // Locked only on sampled batches.
    stages: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl std::fmt::Debug for ChainSpans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainSpans")
            .field("scope", &self.scope)
            .field("egress", &self.e2e.is_some())
            .finish()
    }
}

impl ChainSpans {
    /// Spans for an egress chain (the last chain a packet traverses before
    /// leaving the proxy): records per-packet end-to-end latency at chain
    /// exit on top of the stage instruments.
    pub fn egress(registry: &Arc<Registry>, scope: impl Into<String>) -> Arc<Self> {
        Self::build(registry, scope.into(), true)
    }

    /// Spans for an interior chain (e.g. a fanout session's shared head):
    /// stage instruments only — the packet's end-to-end latency is recorded
    /// downstream, where it actually exits.
    pub fn interior(registry: &Arc<Registry>, scope: impl Into<String>) -> Arc<Self> {
        Self::build(registry, scope.into(), false)
    }

    fn build(registry: &Arc<Registry>, scope: String, egress: bool) -> Arc<Self> {
        Arc::new(Self {
            batch_ns: registry.histogram(format!("{scope}.batch_ns")),
            e2e: egress.then(|| registry.histogram(format!("{scope}.e2e_ns"))),
            sampler: Sampler::new(STAGE_SAMPLE_EVERY),
            stages: Mutex::new(HashMap::new()),
            registry: Arc::clone(registry),
            scope,
        })
    }

    /// This chain's scope prefix (e.g. `stream.audio`).
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// The whole-chain batch-duration histogram.
    pub fn batch_ns(&self) -> &Arc<Histogram> {
        &self.batch_ns
    }

    /// The end-to-end latency histogram, when this is an egress chain.
    pub fn e2e(&self) -> Option<&Arc<Histogram>> {
        self.e2e.as_ref()
    }

    /// Fires 1-in-N; callers time the per-filter stage work only on firing
    /// batches.
    pub fn sample_stages(&self) -> bool {
        self.sampler.fire()
    }

    /// The per-filter stage histogram for `filter_name`, registering it on
    /// first use (a splice bringing a new filter into the chain is a
    /// registration point, not a hot-path allocation).
    pub fn stage_histogram(&self, filter_name: &str) -> Arc<Histogram> {
        let mut stages = self.stages.lock().expect("stage map mutex");
        if let Some(hist) = stages.get(filter_name) {
            return Arc::clone(hist);
        }
        let hist = self
            .registry
            .histogram(format!("{}.filter.{filter_name}_ns", self.scope));
        stages.insert(filter_name.to_string(), Arc::clone(&hist));
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_and_instrument_names() {
        let registry = Registry::new();
        let spans = ChainSpans::egress(&registry, "stream.audio");
        assert_eq!(spans.scope(), "stream.audio");
        spans.batch_ns().record(10);
        spans.e2e().expect("egress chain").record(20);
        spans.stage_histogram("fec-encoder(6,4)").record(30);

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.histogram("stream.audio.batch_ns").map(|h| h.count()), Some(1));
        assert_eq!(snapshot.histogram("stream.audio.e2e_ns").map(|h| h.count()), Some(1));
        assert_eq!(
            snapshot
                .histogram("stream.audio.filter.fec-encoder(6,4)_ns")
                .map(|h| h.count()),
            Some(1)
        );
    }

    #[test]
    fn interior_chains_have_no_e2e() {
        let registry = Registry::new();
        let spans = ChainSpans::interior(&registry, "session.s.head");
        assert!(spans.e2e().is_none());
        assert!(!format!("{spans:?}").is_empty());
    }

    #[test]
    fn stage_histograms_are_cached_per_name() {
        let registry = Registry::new();
        let spans = ChainSpans::interior(&registry, "x");
        let a = spans.stage_histogram("null");
        let b = spans.stage_histogram("null");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn sampler_fires_first_then_one_in_n() {
        let registry = Registry::new();
        let spans = ChainSpans::interior(&registry, "x");
        assert!(spans.sample_stages());
        let fired: usize = (0..STAGE_SAMPLE_EVERY * 2 - 1)
            .filter(|_| spans.sample_stages())
            .count();
        assert_eq!(fired, 1);
    }
}
