//! The FEC decoder filter.
//!
//! Installed on the receiving side of a lossy hop (in the paper: on the
//! mobile host, or in the proxy for the uplink direction), the decoder
//! forwards source packets as they arrive, absorbs parity packets, and —
//! whenever a block has lost packets but enough shards survived — rebuilds
//! the missing packets in their entirety and injects them back into the
//! stream.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rapidware_fec::{BlockReconstructor, DecodeScratch, FecCodec, FecError};
use rapidware_packet::{Packet, PacketKind};

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput};

/// Shared counters describing what a [`FecDecoderFilter`] has done.
#[derive(Debug, Default)]
pub struct FecDecoderStats {
    sources_seen: AtomicU64,
    parities_seen: AtomicU64,
    recovered: AtomicU64,
    unrecoverable_blocks: AtomicU64,
    duplicate_suppressed: AtomicU64,
}

impl FecDecoderStats {
    /// Source packets observed.
    pub fn sources_seen(&self) -> u64 {
        self.sources_seen.load(Ordering::Relaxed)
    }

    /// Parity packets observed.
    pub fn parities_seen(&self) -> u64 {
        self.parities_seen.load(Ordering::Relaxed)
    }

    /// Packets reconstructed and re-injected into the stream.
    pub fn recovered(&self) -> u64 {
        self.recovered.load(Ordering::Relaxed)
    }

    /// Blocks that had losses but not enough surviving shards to decode.
    pub fn unrecoverable_blocks(&self) -> u64 {
        self.unrecoverable_blocks.load(Ordering::Relaxed)
    }

    /// Late copies of already-recovered packets that were suppressed.
    pub fn duplicate_suppressed(&self) -> u64 {
        self.duplicate_suppressed.load(Ordering::Relaxed)
    }
}

struct BlockState {
    reconstructor: BlockReconstructor,
    first_seq: u64,
    recovery_attempted: bool,
}

/// A composable proxy filter that reconstructs lost packets from FEC parity
/// packets produced by a matching
/// [`FecEncoderFilter`](crate::FecEncoderFilter).
pub struct FecDecoderFilter {
    name: String,
    codec: FecCodec,
    /// Recently seen source packets, so a parity that arrives later can use
    /// them as shards.  Keyed by sequence number; bounded FIFO.
    recent_sources: BTreeMap<u64, Packet>,
    recent_order: VecDeque<u64>,
    history: usize,
    /// Blocks keyed by the sequence number of their first source packet.
    blocks: BTreeMap<u64, BlockState>,
    /// Sequence numbers this filter has already re-injected.
    recovered_seqs: HashSet<u64>,
    forward_parity: bool,
    stats: Arc<FecDecoderStats>,
    /// Reused wire-encoding buffer for feeding received source packets into
    /// block reconstructors without a per-packet allocation.
    wire_scratch: Vec<u8>,
    /// Reused shard buffers for block recovery.  The filter is owned by one
    /// chain (itself owned by one runtime task), so this doubles as the
    /// per-task decode arena: steady-state recovery allocates no shard
    /// buffers.
    decode_scratch: DecodeScratch,
}

impl std::fmt::Debug for FecDecoderFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FecDecoderFilter")
            .field("name", &self.name)
            .field("tracked_blocks", &self.blocks.len())
            .field("recent_sources", &self.recent_sources.len())
            .field("recovered", &self.stats.recovered())
            .finish()
    }
}

impl FecDecoderFilter {
    /// Creates a decoder for the given (n, k) parameters.  The parameters
    /// must match the encoder that produced the parity packets.
    ///
    /// # Errors
    ///
    /// Returns a [`FilterError::Fec`] for invalid parameters.
    pub fn new(n: usize, k: usize) -> Result<Self, FilterError> {
        let codec = FecCodec::new(n, k)?;
        Ok(Self {
            name: format!("fec-decoder({n},{k})"),
            codec,
            recent_sources: BTreeMap::new(),
            recent_order: VecDeque::new(),
            history: 64 * k.max(1),
            blocks: BTreeMap::new(),
            recovered_seqs: HashSet::new(),
            forward_parity: false,
            stats: Arc::new(FecDecoderStats::default()),
            wire_scratch: Vec::new(),
            decode_scratch: DecodeScratch::new(),
        })
    }

    /// The paper's FEC(6, 4) configuration.
    ///
    /// # Errors
    ///
    /// Never fails; returns `Result` for uniformity with [`new`](Self::new).
    pub fn fec_6_4() -> Result<Self, FilterError> {
        Self::new(6, 4)
    }

    /// Keeps forwarding parity packets downstream instead of absorbing them
    /// (useful when chaining decoders for diagnostics).
    #[must_use]
    pub fn forwarding_parity(mut self) -> Self {
        self.forward_parity = true;
        self
    }

    /// A handle to the decoder's counters.
    pub fn stats(&self) -> Arc<FecDecoderStats> {
        Arc::clone(&self.stats)
    }

    fn remember_source(&mut self, packet: &Packet) {
        let seq = packet.seq().value();
        if self.recent_sources.insert(seq, packet.clone()).is_none() {
            self.recent_order.push_back(seq);
            while self.recent_order.len() > self.history {
                if let Some(old) = self.recent_order.pop_front() {
                    self.recent_sources.remove(&old);
                }
            }
        }
    }

    fn try_recover(
        state: &mut BlockState,
        k: usize,
        recovered_seqs: &mut HashSet<u64>,
        stats: &FecDecoderStats,
        scratch: &mut DecodeScratch,
        out: &mut dyn FilterOutput,
    ) -> Result<bool, FilterError> {
        if !state.reconstructor.is_decodable() {
            return Ok(false);
        }
        if state.reconstructor.missing_slots().is_empty() {
            return Ok(true);
        }
        match state.reconstructor.recover_with(scratch) {
            Ok(recovered) => {
                for payload in recovered {
                    if payload.data.is_empty() {
                        // A flush-padded slot (the encoder filled a partial
                        // block with empty payloads): nothing to re-inject.
                        continue;
                    }
                    let packet = Packet::decode(&payload.data)?;
                    let seq = packet.seq().value();
                    debug_assert_eq!(seq, state.first_seq + payload.slot as u64);
                    if recovered_seqs.insert(seq) {
                        stats.recovered.fetch_add(1, Ordering::Relaxed);
                        out.emit(packet);
                    }
                }
                let _ = k;
                state.recovery_attempted = true;
                Ok(true)
            }
            Err(FecError::NotEnoughShards { .. }) => Ok(false),
            Err(other) => Err(other.into()),
        }
    }

    fn garbage_collect(&mut self) {
        // Keep a bounded number of open blocks; the oldest ones are closed.
        const MAX_OPEN_BLOCKS: usize = 64;
        while self.blocks.len() > MAX_OPEN_BLOCKS {
            if let Some((&oldest, _)) = self.blocks.iter().next() {
                if let Some(state) = self.blocks.remove(&oldest) {
                    if !state.recovery_attempted && !state.reconstructor.missing_slots().is_empty()
                    {
                        self.stats
                            .unrecoverable_blocks
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        // Forget re-injected sequence numbers that are far in the past.
        if self.recovered_seqs.len() > 4 * self.history {
            let horizon = self
                .recent_order
                .front()
                .copied()
                .unwrap_or(0);
            self.recovered_seqs.retain(|&seq| seq >= horizon);
        }
    }
}

impl FecDecoderFilter {
    /// Decodes one packet; shared by the serial and batched paths so both
    /// produce identical output.  Does **not** bump the `sources_seen` /
    /// `parities_seen` counters — the callers do, per packet or per batch.
    fn decode_one(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        match packet.kind() {
            PacketKind::Parity { index, k, n, .. } => {
                if usize::from(k) != self.codec.k() || usize::from(n) != self.codec.n() {
                    return Err(FilterError::Unsupported(format!(
                        "parity packet for fec({n},{k}) fed to a {} decoder",
                        self.name
                    )));
                }
                let payload = packet.payload();
                if payload.len() < 8 {
                    return Err(FilterError::Internal(
                        "parity packet payload shorter than its block header".into(),
                    ));
                }
                let first_seq = u64::from_be_bytes(
                    payload[..8]
                        .try_into()
                        .expect("slice of length 8 converts to [u8; 8]"),
                );
                let shard = &payload[8..];
                let parity_index = usize::from(index).saturating_sub(self.codec.k());

                // Attach any already-seen sources of this block, wire-encoded
                // through the reused scratch buffer (no per-source clone or
                // allocation).
                let k = self.codec.k();
                let codec = self.codec.clone();
                let state = self.blocks.entry(first_seq).or_insert_with(|| BlockState {
                    reconstructor: BlockReconstructor::new(codec),
                    first_seq,
                    recovery_attempted: false,
                });
                for slot in 0..k {
                    if let Some(source) = self.recent_sources.get(&(first_seq + slot as u64)) {
                        source.encode_into(&mut self.wire_scratch);
                        state.reconstructor.add_source(slot, &self.wire_scratch)?;
                    }
                }
                state.reconstructor.add_parity(parity_index, shard)?;
                Self::try_recover(
                    state,
                    k,
                    &mut self.recovered_seqs,
                    &self.stats,
                    &mut self.decode_scratch,
                    out,
                )?;
                if self.forward_parity {
                    out.emit(packet);
                }
                self.garbage_collect();
                Ok(())
            }
            kind if kind.is_payload() => {
                let seq = packet.seq().value();
                if self.recovered_seqs.contains(&seq) {
                    // A late copy of a packet we already rebuilt: suppress it
                    // so downstream never sees a duplicate.
                    self.stats
                        .duplicate_suppressed
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                self.remember_source(&packet);
                // If an open block is waiting for this packet, feed it.
                let k = self.codec.k() as u64;
                let block_key = self
                    .blocks
                    .range(..=seq)
                    .next_back()
                    .map(|(&first, _)| first)
                    .filter(|&first| seq < first + k);
                if let Some(first) = block_key {
                    packet.encode_into(&mut self.wire_scratch);
                    let stats = Arc::clone(&self.stats);
                    if let Some(state) = self.blocks.get_mut(&first) {
                        state
                            .reconstructor
                            .add_source((seq - first) as usize, &self.wire_scratch)?;
                        Self::try_recover(
                            state,
                            k as usize,
                            &mut self.recovered_seqs,
                            &stats,
                            &mut self.decode_scratch,
                            out,
                        )?;
                    }
                }
                out.emit(packet);
                Ok(())
            }
            _ => {
                out.emit(packet);
                Ok(())
            }
        }
    }
}

impl Filter for FecDecoderFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        match packet.kind() {
            PacketKind::Parity { .. } => {
                self.stats.parities_seen.fetch_add(1, Ordering::Relaxed);
            }
            kind if kind.is_payload() => {
                self.stats.sources_seen.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.decode_one(packet, out)
    }

    fn process_batch(
        &mut self,
        packets: Vec<Packet>,
        out: &mut dyn FilterOutput,
    ) -> Result<(), FilterError> {
        // Tally the observation counters locally and publish once per
        // batch; the wire-encoding scratch stays warm across the whole
        // batch.  Decode order and outputs are identical to the serial
        // path (asserted by the batch/serial parity property test).
        let mut sources = 0u64;
        let mut parities = 0u64;
        let mut result = Ok(());
        for packet in packets {
            match packet.kind() {
                PacketKind::Parity { .. } => parities += 1,
                kind if kind.is_payload() => sources += 1,
                _ => {}
            }
            if let Err(error) = self.decode_one(packet, out) {
                result = Err(error);
                break;
            }
        }
        if sources > 0 {
            self.stats.sources_seen.fetch_add(sources, Ordering::Relaxed);
        }
        if parities > 0 {
            self.stats.parities_seen.fetch_add(parities, Ordering::Relaxed);
        }
        result
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "fec-decoder".to_string(),
            parameters: format!(
                "n={}, k={}, recovered={}",
                self.codec.n(),
                self.codec.k(),
                self.stats.recovered()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::fec_encode::FecEncoderFilter;
    use rapidware_packet::{SeqNo, StreamId};

    fn audio_packet(seq: u64, len: usize) -> Packet {
        Packet::with_timestamp(
            StreamId::new(3),
            SeqNo::new(seq),
            PacketKind::AudioData,
            seq * 20_000,
            (0..len).map(|i| ((seq * 31 + i as u64 * 7) % 256) as u8).collect::<Vec<u8>>(),
        )
    }

    /// Encodes `count` packets through an encoder, returning the encoded
    /// stream (sources + parities in order).
    fn encoded_stream(count: u64, len: usize) -> Vec<Packet> {
        let mut encoder = FecEncoderFilter::fec_6_4().unwrap();
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..count {
            encoder.process(audio_packet(seq, len), &mut out).unwrap();
        }
        out
    }

    #[test]
    fn lossless_stream_passes_through_without_recovery() {
        let stream = encoded_stream(8, 320);
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let stats = decoder.stats();
        let mut out: Vec<Packet> = Vec::new();
        for packet in stream {
            decoder.process(packet, &mut out).unwrap();
        }
        // All 8 sources forwarded, parities absorbed.
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|p| p.kind().is_payload()));
        assert_eq!(stats.sources_seen(), 8);
        assert_eq!(stats.parities_seen(), 4);
        assert_eq!(stats.recovered(), 0);
    }

    #[test]
    fn single_loss_per_block_is_recovered_exactly() {
        let stream = encoded_stream(8, 320);
        let originals: Vec<Packet> = (0..8).map(|s| audio_packet(s, 320)).collect();
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let stats = decoder.stats();
        let mut out: Vec<Packet> = Vec::new();
        for packet in stream {
            // Drop source packets 2 and 5 (one loss in each block).
            if packet.kind().is_payload() && matches!(packet.seq().value(), 2 | 5) {
                continue;
            }
            decoder.process(packet, &mut out).unwrap();
        }
        assert_eq!(stats.recovered(), 2);
        assert_eq!(out.len(), 8, "6 received + 2 recovered");
        // The recovered packets are byte-for-byte identical to the originals.
        for original in &originals {
            let found = out
                .iter()
                .find(|p| p.seq() == original.seq())
                .expect("present after recovery");
            assert_eq!(found, original);
        }
    }

    #[test]
    fn two_losses_in_a_block_need_both_parities() {
        let stream = encoded_stream(4, 200);
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let stats = decoder.stats();
        let mut out: Vec<Packet> = Vec::new();
        for packet in stream {
            if packet.kind().is_payload() && matches!(packet.seq().value(), 1 | 3) {
                continue;
            }
            decoder.process(packet, &mut out).unwrap();
        }
        assert_eq!(stats.recovered(), 2);
        let mut seqs: Vec<u64> = out.iter().map(|p| p.seq().value()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn three_losses_in_a_block_are_unrecoverable() {
        let stream = encoded_stream(4, 200);
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let stats = decoder.stats();
        let mut out: Vec<Packet> = Vec::new();
        for packet in stream {
            if packet.kind().is_payload() && matches!(packet.seq().value(), 1..=3) {
                continue;
            }
            decoder.process(packet, &mut out).unwrap();
        }
        assert_eq!(stats.recovered(), 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn lost_parities_do_not_matter_when_sources_survive() {
        let stream = encoded_stream(4, 100);
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let mut out: Vec<Packet> = Vec::new();
        for packet in stream {
            if packet.kind().is_parity() {
                continue;
            }
            decoder.process(packet, &mut out).unwrap();
        }
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn late_source_after_recovery_is_suppressed() {
        let stream = encoded_stream(4, 100);
        let lost: Vec<Packet> = stream
            .iter()
            .filter(|p| p.kind().is_payload() && p.seq().value() == 2)
            .cloned()
            .collect();
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let stats = decoder.stats();
        let mut out: Vec<Packet> = Vec::new();
        for packet in stream {
            if packet.kind().is_payload() && packet.seq().value() == 2 {
                continue; // "lost" (actually just very late)
            }
            decoder.process(packet, &mut out).unwrap();
        }
        assert_eq!(stats.recovered(), 1);
        // The late copy now arrives; it must not be emitted a second time.
        decoder.process(lost[0].clone(), &mut out).unwrap();
        assert_eq!(stats.duplicate_suppressed(), 1);
        let copies = out.iter().filter(|p| p.seq().value() == 2).count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn parity_with_mismatched_parameters_is_rejected() {
        let mut wrong_encoder = FecEncoderFilter::new(8, 6).unwrap();
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..6u64 {
            wrong_encoder
                .process(audio_packet(seq, 50), &mut out)
                .unwrap();
        }
        let parity = out
            .iter()
            .find(|p| p.kind().is_parity())
            .cloned()
            .expect("one block was encoded");
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let mut sink: Vec<Packet> = Vec::new();
        let err = decoder.process(parity, &mut sink).unwrap_err();
        assert!(matches!(err, FilterError::Unsupported(_)));
    }

    #[test]
    fn forwarding_parity_mode_keeps_parity_packets() {
        let stream = encoded_stream(4, 64);
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap().forwarding_parity();
        let mut out: Vec<Packet> = Vec::new();
        for packet in stream {
            decoder.process(packet, &mut out).unwrap();
        }
        assert_eq!(out.iter().filter(|p| p.kind().is_parity()).count(), 2);
    }

    #[test]
    fn control_packets_pass_through() {
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let control = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Control, vec![9]);
        let mut out: Vec<Packet> = Vec::new();
        decoder.process(control.clone(), &mut out).unwrap();
        assert_eq!(out, vec![control]);
    }

    #[test]
    fn reordered_parity_before_sources_still_recovers() {
        // Reorder so both parities of block 0 arrive before sources 1..3,
        // and source 0 is lost entirely.
        let stream = encoded_stream(4, 128);
        let sources: Vec<Packet> = stream.iter().filter(|p| p.kind().is_payload()).cloned().collect();
        let parities: Vec<Packet> = stream.iter().filter(|p| p.kind().is_parity()).cloned().collect();
        let mut decoder = FecDecoderFilter::fec_6_4().unwrap();
        let stats = decoder.stats();
        let mut out: Vec<Packet> = Vec::new();
        for packet in parities {
            decoder.process(packet, &mut out).unwrap();
        }
        for packet in sources.iter().skip(1) {
            decoder.process(packet.clone(), &mut out).unwrap();
        }
        // As soon as k shards are present the decoder rebuilds every missing
        // slot, so the genuinely lost packet 0 *and* the still-in-flight
        // packet 3 are both reconstructed; the late real copy of packet 3 is
        // then suppressed, so downstream sees each packet exactly once.
        assert_eq!(stats.recovered(), 2);
        assert_eq!(stats.duplicate_suppressed(), 1);
        for seq in 0..4u64 {
            let copies: Vec<&Packet> = out.iter().filter(|p| p.seq().value() == seq).collect();
            assert_eq!(copies.len(), 1, "seq {seq} delivered exactly once");
            assert_eq!(copies[0], &sources[seq as usize]);
        }
    }
}
