//! The identity filter.

use rapidware_packet::Packet;

use crate::error::FilterError;
use crate::filter::{Filter, FilterOutput};

/// A filter that forwards every packet unchanged.
///
/// Two endpoints plus a null filter form the paper's "null proxy".  The null
/// filter is also the workload used by the chain-depth overhead experiment
/// (E5): it isolates the cost of the composition mechanism itself from the
/// cost of any particular transformation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullFilter {
    _private: (),
}

impl NullFilter {
    /// Creates a null filter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Filter for NullFilter {
    fn name(&self) -> &str {
        "null"
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        out.emit(packet);
        Ok(())
    }

    fn process_batch(
        &mut self,
        packets: Vec<Packet>,
        out: &mut dyn FilterOutput,
    ) -> Result<(), FilterError> {
        // One tight emit loop for the whole batch: no per-packet fallible
        // dispatch through `process`.
        for packet in packets {
            out.emit(packet);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    #[test]
    fn forwards_packets_unchanged() {
        let mut filter = NullFilter::new();
        let packet = Packet::new(StreamId::new(1), SeqNo::new(7), PacketKind::Data, vec![1, 2, 3]);
        let mut out: Vec<Packet> = Vec::new();
        filter.process(packet.clone(), &mut out).unwrap();
        assert_eq!(out, vec![packet]);
        assert_eq!(filter.name(), "null");
    }
}
