//! The secure channel filter pair: AEAD sealing as just another filter.
//!
//! The paper's vision puts proxies on *untrusted* last-hop links, so the
//! bytes a proxy ships must be protectable by the same composition
//! machinery as FEC or transcoding: "crypto is just another filter in the
//! chain".  [`EncryptFilter`] seals every non-control packet payload with
//! ChaCha20-Poly1305 (RFC 8439, implemented in-crate — the workspace builds
//! offline), appending the 16-byte tag through the packet's
//! length-changing copy-on-write path; [`DecryptFilter`] verifies then
//! strips, turning any tag, nonce, or key mismatch into a *counted drop* —
//! never a panic, never a forwarded corrupt frame.
//!
//! ## Nonce schedule
//!
//! The 12-byte nonce is derived deterministically from the packet identity:
//! `stream_id (4 bytes BE) || seq (8 bytes BE)`.  Sequence numbers are
//! unique per stream — FEC parity packets live in a disjoint high band —
//! so no `(key, nonce)` pair ever repeats within an epoch, and batch and
//! serial processing orders agree byte-for-byte.  The first 32 bytes of
//! the wire header ride along as associated data, so a forged header with
//! a dutifully recomputed CRC still fails authentication.
//!
//! ## Key rotation
//!
//! Key rotation rides the control-frame path that already carries FIN and
//! quiescence markers: a [`rekey_packet`] control frame announces `(epoch,
//! seq boundary)`.  Both filters derive the epoch key locally from their
//! shared base key — no key material crosses the wire.  [`EncryptFilter`]
//! installs the epoch and forwards the frame; [`DecryptFilter`] installs
//! the epoch and consumes it, so downstream consumers never see rotation
//! plumbing.  Each packet is sealed/opened under the *highest installed
//! epoch whose boundary does not exceed the packet's seq*, which makes
//! duplicated or re-ordered rekey frames idempotent, and makes a frame
//! replayed under a superseded key fail its tag (a counted reject).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rapidware_packet::{Packet, PacketKind};

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput};

/// AEAD tag length appended to every sealed payload.
pub const TAG_LEN: usize = 16;

/// Magic prefix of a rekey control frame payload.
const REKEY_MAGIC: &[u8; 4] = b"RKEY";

// ---------------------------------------------------------------------------
// ChaCha20 (RFC 8439 §2.3).
// ---------------------------------------------------------------------------

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The initial ChaCha20 state for `(key, counter, nonce)`.
fn chacha20_state(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state[12] = counter;
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state
}

/// The 20-round keystream words for one state (state + rounds, per RFC).
fn chacha20_words(state: &[u32; 16]) -> [u32; 16] {
    let mut working = *state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (word, initial) in working.iter_mut().zip(state.iter()) {
        *word = word.wrapping_add(*initial);
    }
    working
}

/// One 64-byte ChaCha20 block.
fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 64]) {
    let words = chacha20_words(&chacha20_state(key, counter, nonce));
    for (i, word) in words.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
}

/// XORs the ChaCha20 keystream (starting at `counter`) into `data`.  The
/// state is built once and only the block counter advances; full 64-byte
/// chunks are XORed word-wise.
fn chacha20_xor(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
    let mut state = chacha20_state(key, counter, nonce);
    let mut chunks = data.chunks_exact_mut(64);
    for chunk in &mut chunks {
        let words = chacha20_words(&state);
        state[12] = state[12].wrapping_add(1);
        for (i, word) in words.iter().enumerate() {
            let lane = &mut chunk[i * 4..i * 4 + 4];
            let mixed =
                u32::from_le_bytes([lane[0], lane[1], lane[2], lane[3]]) ^ word;
            lane.copy_from_slice(&mixed.to_le_bytes());
        }
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let words = chacha20_words(&state);
        let mut block = [0u8; 64];
        for (i, word) in words.iter().enumerate() {
            block[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        for (byte, pad) in tail.iter_mut().zip(block.iter()) {
            *byte ^= pad;
        }
    }
}

// ---------------------------------------------------------------------------
// Poly1305 (RFC 8439 §2.5), 44-bit limbs with u128 products, safe integer
// arithmetic only.
// ---------------------------------------------------------------------------

/// Low 44 bits of a limb.
const M44: u64 = 0x0fff_ffff_ffff;
/// Low 42 bits of the top limb (44 + 44 + 42 = 130).
const M42: u64 = 0x03ff_ffff_ffff;

struct Poly1305 {
    r: [u64; 3],
    s: [u64; 2],
    h: [u64; 3],
    /// Bytes of an incomplete block carried between `update` calls.
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    fn new(key: &[u8; 32]) -> Self {
        let word = |i: usize| {
            u64::from_le_bytes([
                key[i],
                key[i + 1],
                key[i + 2],
                key[i + 3],
                key[i + 4],
                key[i + 5],
                key[i + 6],
                key[i + 7],
            ])
        };
        // Clamp r per the RFC, then split into 44/44/42-bit limbs.
        let t0 = word(0) & 0x0fff_fffc_0fff_ffff;
        let t1 = word(8) & 0x0fff_fffc_0fff_fffc;
        let r = [
            t0 & M44,
            ((t0 >> 44) | (t1 << 20)) & M44,
            (t1 >> 24) & M42,
        ];
        let s = [word(16), word(24)];
        Self {
            r,
            s,
            h: [0; 3],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorbs one 16-byte block (`hibit` set for full blocks; partial
    /// final blocks arrive pre-padded with their `0x01` terminator).
    fn block(&mut self, chunk: &[u8], hibit: u64) {
        debug_assert_eq!(chunk.len(), 16, "poly1305 blocks are exactly 16 bytes");
        let word = |i: usize| {
            u64::from_le_bytes([
                chunk[i],
                chunk[i + 1],
                chunk[i + 2],
                chunk[i + 3],
                chunk[i + 4],
                chunk[i + 5],
                chunk[i + 6],
                chunk[i + 7],
            ])
        };
        let t0 = word(0);
        let t1 = word(8);
        let h0 = u128::from(self.h[0] + (t0 & M44));
        let h1 = u128::from(self.h[1] + (((t0 >> 44) | (t1 << 20)) & M44));
        let h2 = u128::from(self.h[2] + ((t1 >> 24) | hibit));

        // 2^132 ≡ 20 (mod 2^130 - 5), so limbs that overflow the top wrap
        // back scaled by 20.
        let r0 = u128::from(self.r[0]);
        let r1 = u128::from(self.r[1]);
        let r2 = u128::from(self.r[2]);
        let s1 = u128::from(self.r[1] * 20);
        let s2 = u128::from(self.r[2] * 20);
        let d0 = h0 * r0 + h1 * s2 + h2 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0;

        // Carry propagation back into 44/44/42-bit limbs.
        let mut carry = (d0 >> 44) as u64;
        let h0 = (d0 as u64) & M44;
        let d1 = d1 + u128::from(carry);
        carry = (d1 >> 44) as u64;
        let h1 = (d1 as u64) & M44;
        let d2 = d2 + u128::from(carry);
        carry = (d2 >> 42) as u64;
        let h2 = (d2 as u64) & M42;
        let h0 = h0 + carry * 5;
        self.h = [h0 & M44, h1 + (h0 >> 44), h2];
    }

    fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(16 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 16 {
                return;
            }
            let full = self.buf;
            self.block(&full, 1 << 40);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(16);
        for chunk in &mut chunks {
            self.block(chunk, 1 << 40);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    fn finish(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            let mut padded = [0u8; 16];
            padded[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            padded[self.buf_len] = 1;
            self.block(&padded, 0);
        }
        // Full carry and reduction mod 2^130 - 5.
        let [mut h0, mut h1, mut h2] = self.h;
        let mut c = h1 >> 44;
        h1 &= M44;
        h2 += c;
        c = h2 >> 42;
        h2 &= M42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= M44;
        h1 += c;
        c = h1 >> 44;
        h1 &= M44;
        h2 += c;
        c = h2 >> 42;
        h2 &= M42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= M44;
        h1 += c;

        // Compute h + -p and select it if h >= p.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 44;
        g0 &= M44;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 44;
        g1 &= M44;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);
        if (g2 >> 63) == 0 {
            h0 = g0;
            h1 = g1;
            h2 = g2 & M42;
        }

        // Serialise to 128 bits and add s (mod 2^128).
        let lo = h0 | (h1 << 44);
        let hi = (h1 >> 20) | (h2 << 24);
        let mac = (u128::from(hi) << 64) | u128::from(lo);
        let s = (u128::from(self.s[1]) << 64) | u128::from(self.s[0]);
        mac.wrapping_add(s).to_le_bytes()
    }
}

/// The AEAD tag over `aad` and `ciphertext` (RFC 8439 §2.8 construction).
fn aead_tag(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
    // The one-time Poly1305 key is the first 32 bytes of block 0.
    let mut block = [0u8; 64];
    chacha20_block(key, 0, nonce, &mut block);
    let mut otk = [0u8; 32];
    otk.copy_from_slice(&block[..32]);
    // The `pad16` filler between MAC sections, sliced from a fixed block.
    const PAD: [u8; 16] = [0u8; 16];
    let pad_to_16 = |len: usize| &PAD[..(16 - len % 16) % 16];
    let mut mac = Poly1305::new(&otk);
    mac.update(aad);
    mac.update(pad_to_16(aad.len()));
    mac.update(ciphertext);
    mac.update(pad_to_16(ciphertext.len()));
    let mut lengths = [0u8; 16];
    lengths[..8].copy_from_slice(&(aad.len() as u64).to_le_bytes());
    lengths[8..].copy_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    mac.update(&lengths);
    mac.finish()
}

/// Seals `payload` in place: encrypts and appends the 16-byte tag.
fn aead_seal(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], payload: &mut Vec<u8>) {
    chacha20_xor(key, nonce, 1, payload);
    let tag = aead_tag(key, nonce, aad, payload);
    payload.extend_from_slice(&tag);
}

/// Opens a sealed `payload` in place: verifies the trailing tag, strips it,
/// and decrypts.  Returns `false` (leaving the payload untouched) on any
/// mismatch.
fn aead_open(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], payload: &mut Vec<u8>) -> bool {
    if payload.len() < TAG_LEN {
        return false;
    }
    let split = payload.len() - TAG_LEN;
    let expected = aead_tag(key, nonce, aad, &payload[..split]);
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(&payload[split..]) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return false;
    }
    payload.truncate(split);
    chacha20_xor(key, nonce, 1, payload);
    true
}

// ---------------------------------------------------------------------------
// Key schedule.
// ---------------------------------------------------------------------------

/// Expands the configured `u64` key into the 32-byte base key.
fn base_key(key: u64) -> [u8; 32] {
    // A splitmix-style expansion: deterministic, byte-diffuse, and
    // reproducible on both ends from the shared integer key.
    let mut state = key;
    let mut out = [0u8; 32];
    for chunk in out.chunks_exact_mut(8) {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    out
}

/// Derives the per-epoch traffic key from the base key.
///
/// Every epoch key — including epoch 0 — is one ChaCha20 block of the base
/// key under a reserved derivation nonce, so the base key itself never
/// encrypts traffic and no epoch key ever crosses the wire.
fn epoch_key(base: &[u8; 32], epoch: u32) -> [u8; 32] {
    let mut block = [0u8; 64];
    chacha20_block(base, epoch, b"rekey-derive", &mut block);
    let mut out = [0u8; 32];
    out.copy_from_slice(&block[..32]);
    out
}

/// The 12-byte AEAD nonce for a packet: `stream (4 BE) || seq (8 BE)`.
fn packet_nonce(packet: &Packet) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..4].copy_from_slice(&packet.stream().value().to_be_bytes());
    nonce[4..].copy_from_slice(&packet.seq().value().to_be_bytes());
    nonce
}

// ---------------------------------------------------------------------------
// Rekey control frames.
// ---------------------------------------------------------------------------

/// Builds the control frame announcing a key rotation on `packet`'s stream:
/// from `boundary` onwards, seal under `epoch`.
///
/// The frame rides the same path as FIN and quiescence markers (it is a
/// [`PacketKind::Control`] packet on the *data stream's own id*), its seq is
/// the boundary itself, and its payload is `b"RKEY" || epoch (4 BE) ||
/// boundary (8 BE)`.  Inject it into the stream immediately before the
/// first packet of the new epoch.
pub fn rekey_packet(
    stream: rapidware_packet::StreamId,
    epoch: u32,
    boundary: u64,
    timestamp_us: u64,
) -> Packet {
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(REKEY_MAGIC);
    payload.extend_from_slice(&epoch.to_be_bytes());
    payload.extend_from_slice(&boundary.to_be_bytes());
    Packet::with_timestamp(
        stream,
        rapidware_packet::SeqNo::new(boundary),
        PacketKind::Control,
        timestamp_us,
        payload,
    )
}

/// Parses a rekey control frame; returns `(epoch, boundary)` if `packet` is
/// one.
pub fn parse_rekey(packet: &Packet) -> Option<(u32, u64)> {
    if packet.kind() != PacketKind::Control || packet.payload_len() != 16 {
        return None;
    }
    let payload = packet.payload();
    if &payload[..4] != REKEY_MAGIC {
        return None;
    }
    let epoch = u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]);
    let boundary = u64::from_be_bytes([
        payload[8], payload[9], payload[10], payload[11], payload[12], payload[13],
        payload[14], payload[15],
    ]);
    Some((epoch, boundary))
}

// ---------------------------------------------------------------------------
// Shared counters.
// ---------------------------------------------------------------------------

/// Shared counters describing what a secure channel filter has done.
///
/// Both [`EncryptFilter`] and [`DecryptFilter`] expose one of these through
/// [`Filter::secure_stats`], so chains, sessions, and the proxy status
/// surface can aggregate seal/reject totals without reaching into worker
/// threads.
#[derive(Debug, Default)]
pub struct SecureChannelStats {
    sealed: AtomicU64,
    opened: AtomicU64,
    rejected: AtomicU64,
    rekeys: AtomicU64,
}

impl SecureChannelStats {
    /// Payloads sealed (encrypted and tagged).
    pub fn sealed(&self) -> u64 {
        self.sealed.load(Ordering::Relaxed)
    }

    /// Payloads verified and opened.
    pub fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Frames rejected: tag mismatch, truncation, or a stale key.  Rejected
    /// frames are dropped, never forwarded.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Rekey control frames observed and installed.
    pub fn rekeys(&self) -> u64 {
        self.rekeys.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> SecureChannelSnapshot {
        SecureChannelSnapshot {
            sealed: self.sealed(),
            opened: self.opened(),
            rejected: self.rejected(),
            rekeys: self.rekeys(),
        }
    }
}

/// A point-in-time copy of [`SecureChannelStats`], summable across the
/// filters of a chain or the chains of a proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SecureChannelSnapshot {
    /// Payloads sealed.
    pub sealed: u64,
    /// Payloads verified and opened.
    pub opened: u64,
    /// Frames rejected and dropped.
    pub rejected: u64,
    /// Rekey frames installed.
    pub rekeys: u64,
}

impl SecureChannelSnapshot {
    /// Accumulates another snapshot into this one.
    pub fn merge(&mut self, other: SecureChannelSnapshot) {
        self.sealed += other.sealed;
        self.opened += other.opened;
        self.rejected += other.rejected;
        self.rekeys += other.rekeys;
    }

    /// `true` if every counter is zero (no secure filter did any work).
    pub fn is_empty(&self) -> bool {
        *self == SecureChannelSnapshot::default()
    }
}

impl rapidware_telemetry::StatSource for SecureChannelStats {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        rapidware_telemetry::StatSource::snapshot(&self.snapshot())
    }
}

impl rapidware_telemetry::StatSource for SecureChannelSnapshot {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        use rapidware_telemetry::Metric;
        vec![
            Metric::new("sealed", self.sealed),
            Metric::new("opened", self.opened),
            Metric::new("rejected", self.rejected),
            Metric::new("rekeys", self.rekeys),
        ]
    }
}

// ---------------------------------------------------------------------------
// The epoch table shared by both filters.
// ---------------------------------------------------------------------------

/// Installed epochs, newest last; every entry is `(epoch, boundary, key)`.
struct EpochTable {
    base: [u8; 32],
    epochs: Vec<(u32, u64, [u8; 32])>,
}

impl EpochTable {
    fn new(key: u64) -> Self {
        let base = base_key(key);
        let initial = epoch_key(&base, 0);
        Self {
            base,
            epochs: vec![(0, 0, initial)],
        }
    }

    /// Installs `(epoch, boundary)`; duplicated or re-ordered rekey frames
    /// are idempotent.
    fn install(&mut self, epoch: u32, boundary: u64) -> bool {
        if self.epochs.iter().any(|(e, _, _)| *e == epoch) {
            return false;
        }
        let key = epoch_key(&self.base, epoch);
        self.epochs.push((epoch, boundary, key));
        self.epochs.sort_by_key(|(e, _, _)| *e);
        true
    }

    /// The key for `seq`: the highest installed epoch whose boundary does
    /// not exceed `seq`.  Old keys stay installed so re-ordered
    /// pre-boundary frames still open.
    fn key_for(&self, seq: u64) -> &[u8; 32] {
        self.epochs
            .iter()
            .rev()
            .find(|(_, boundary, _)| *boundary <= seq)
            .map(|(_, _, key)| key)
            .unwrap_or(&self.epochs[0].2)
    }
}

// ---------------------------------------------------------------------------
// The filters.
// ---------------------------------------------------------------------------

/// AEAD-seals every non-control packet payload in place.
///
/// Control frames (quiescence markers, FINs) pass through untouched; a
/// [`rekey_packet`] control frame additionally installs its epoch and is
/// *forwarded*, so the paired [`DecryptFilter`] downstream — or across the
/// untrusted hop — observes the same rotation.
pub struct EncryptFilter {
    name: String,
    table: EpochTable,
    stats: Arc<SecureChannelStats>,
}

/// Verifies and strips the AEAD seal applied by [`EncryptFilter`].
///
/// Any tag mismatch — a flipped bit anywhere in header or payload, a
/// truncated frame, a replay under a superseded key — is a counted drop:
/// the frame is discarded, `rejected` is incremented, and neighbouring
/// frames in the same batch are unaffected.  Rekey control frames are
/// installed and *consumed*, so downstream consumers never see rotation
/// plumbing.
pub struct DecryptFilter {
    name: String,
    table: EpochTable,
    stats: Arc<SecureChannelStats>,
}

impl std::fmt::Debug for EncryptFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptFilter")
            .field("name", &self.name)
            .field("sealed", &self.stats.sealed())
            .field("epochs", &self.table.epochs.len())
            .finish()
    }
}

impl std::fmt::Debug for DecryptFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecryptFilter")
            .field("name", &self.name)
            .field("opened", &self.stats.opened())
            .field("rejected", &self.stats.rejected())
            .field("epochs", &self.table.epochs.len())
            .finish()
    }
}

impl EncryptFilter {
    /// Creates an encrypting filter keyed by `key`.
    pub fn new(key: u64) -> Self {
        Self {
            name: format!("encrypt(key={key:#x})"),
            table: EpochTable::new(key),
            stats: Arc::new(SecureChannelStats::default()),
        }
    }

    /// A handle to the filter's counters.
    pub fn stats(&self) -> Arc<SecureChannelStats> {
        Arc::clone(&self.stats)
    }
}

impl DecryptFilter {
    /// Creates a verifying filter keyed by `key`.
    pub fn new(key: u64) -> Self {
        Self {
            name: format!("decrypt(key={key:#x})"),
            table: EpochTable::new(key),
            stats: Arc::new(SecureChannelStats::default()),
        }
    }

    /// A handle to the filter's counters.
    pub fn stats(&self) -> Arc<SecureChannelStats> {
        Arc::clone(&self.stats)
    }
}

impl Filter for EncryptFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, mut packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if packet.kind() == PacketKind::Control {
            if let Some((epoch, boundary)) = parse_rekey(&packet) {
                if self.table.install(epoch, boundary) {
                    self.stats.rekeys.fetch_add(1, Ordering::Relaxed);
                }
            }
            out.emit(packet);
            return Ok(());
        }
        let nonce = packet_nonce(&packet);
        let aad = packet.aad_bytes();
        let key = *self.table.key_for(packet.seq().value());
        packet.payload_edit(|payload| aead_seal(&key, &nonce, &aad, payload));
        self.stats.sealed.fetch_add(1, Ordering::Relaxed);
        out.emit(packet);
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "encrypt".to_string(),
            parameters: "aead=chacha20-poly1305".to_string(),
        }
    }

    fn secure_stats(&self) -> Option<Arc<SecureChannelStats>> {
        Some(Arc::clone(&self.stats))
    }
}

impl Filter for DecryptFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, mut packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if packet.kind() == PacketKind::Control {
            if let Some((epoch, boundary)) = parse_rekey(&packet) {
                if self.table.install(epoch, boundary) {
                    self.stats.rekeys.fetch_add(1, Ordering::Relaxed);
                }
                // Consumed: rotation plumbing never reaches a sink.
                return Ok(());
            }
            out.emit(packet);
            return Ok(());
        }
        let nonce = packet_nonce(&packet);
        let aad = packet.aad_bytes();
        let key = *self.table.key_for(packet.seq().value());
        let mut verified = false;
        packet.payload_edit(|payload| {
            verified = aead_open(&key, &nonce, &aad, payload);
        });
        if verified {
            self.stats.opened.fetch_add(1, Ordering::Relaxed);
            out.emit(packet);
        } else {
            // A counted drop: never a panic, never a forwarded corrupt
            // frame, and the rest of the batch is untouched.
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "decrypt".to_string(),
            parameters: "aead=chacha20-poly1305".to_string(),
        }
    }

    fn secure_stats(&self) -> Option<Arc<SecureChannelStats>> {
        Some(Arc::clone(&self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{SeqNo, StreamId};

    // -- RFC 8439 test vectors ---------------------------------------------

    #[test]
    fn chacha20_block_matches_rfc8439_vector() {
        // RFC 8439 §2.3.2.
        let mut key = [0u8; 32];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut out = [0u8; 64];
        chacha20_block(&key, 1, &nonce, &mut out);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn poly1305_matches_rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let mut mac = Poly1305::new(&key);
        mac.update(b"Cryptographic Forum Research Group");
        let expected: [u8; 16] = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(mac.finish(), expected);
    }

    #[test]
    fn aead_matches_rfc8439_vector() {
        // RFC 8439 §2.8.2.
        let mut key = [0u8; 32];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = 0x80 + i as u8;
        }
        let nonce: [u8; 12] = [
            0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad: [u8; 12] = [
            0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut payload = plaintext.to_vec();
        aead_seal(&key, &nonce, &aad, &mut payload);
        assert_eq!(
            &payload[..16],
            &[
                0xd3, 0x1a, 0x8d, 0x34, 0x64, 0x8e, 0x60, 0xdb, 0x7b, 0x86, 0xaf, 0xbc, 0x53,
                0xef, 0x7e, 0xc2
            ],
            "ciphertext prefix"
        );
        assert_eq!(
            &payload[payload.len() - TAG_LEN..],
            &[
                0x1a, 0xe1, 0x0b, 0x59, 0x4f, 0x09, 0xe2, 0x6a, 0x7e, 0x90, 0x2e, 0xcb, 0xd0,
                0x60, 0x06, 0x91
            ],
            "tag"
        );
        assert!(aead_open(&key, &nonce, &aad, &mut payload));
        assert_eq!(payload, plaintext);
    }

    // -- Filter behaviour --------------------------------------------------

    fn packet(seq: u64, payload: Vec<u8>) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, payload)
    }

    fn seal_one(encrypt: &mut EncryptFilter, p: Packet) -> Packet {
        let mut out: Vec<Packet> = Vec::new();
        encrypt.process(p, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        out.pop().unwrap()
    }

    #[test]
    fn encrypt_then_decrypt_round_trips() {
        let mut encrypt = EncryptFilter::new(0x5EED);
        let mut decrypt = DecryptFilter::new(0x5EED);
        let original = packet(7, (0..100u8).collect());
        let sealed = seal_one(&mut encrypt, original.clone());
        assert_eq!(sealed.payload_len(), original.payload_len() + TAG_LEN);
        assert_ne!(&sealed.payload()[..100], original.payload());
        let mut out: Vec<Packet> = Vec::new();
        decrypt.process(sealed, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], original);
        assert_eq!(encrypt.stats().sealed(), 1);
        assert_eq!(decrypt.stats().opened(), 1);
        assert_eq!(decrypt.stats().rejected(), 0);
    }

    #[test]
    fn sealing_does_not_leak_into_fanout_siblings() {
        let original = packet(3, vec![9u8; 64]);
        let sibling = original.clone();
        let mut encrypt = EncryptFilter::new(1);
        let sealed = seal_one(&mut encrypt, original);
        assert_eq!(sibling.payload(), &[9u8; 64], "sibling keeps the plaintext");
        assert!(!sealed.shares_payload_with(&sibling));
    }

    #[test]
    fn tampered_payload_is_rejected_not_forwarded() {
        let mut encrypt = EncryptFilter::new(2);
        let mut decrypt = DecryptFilter::new(2);
        let mut sealed = seal_one(&mut encrypt, packet(1, vec![5u8; 40]));
        sealed.payload_mut()[10] ^= 0x01;
        let mut out: Vec<Packet> = Vec::new();
        decrypt.process(sealed, &mut out).unwrap();
        assert!(out.is_empty(), "corrupt frame must not be forwarded");
        assert_eq!(decrypt.stats().rejected(), 1);
    }

    #[test]
    fn tampered_header_is_rejected_via_aad() {
        let mut encrypt = EncryptFilter::new(2);
        let mut decrypt = DecryptFilter::new(2);
        let sealed = seal_one(&mut encrypt, packet(1, vec![5u8; 40]));
        // Forge the timestamp; the CRC would be recomputed by an attacker,
        // but the AAD binding still catches it.
        let mut header = *sealed.header();
        header.timestamp_us ^= 1;
        let forged = Packet::from_parts(header, sealed.payload_bytes());
        let mut out: Vec<Packet> = Vec::new();
        decrypt.process(forged, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(decrypt.stats().rejected(), 1);
    }

    #[test]
    fn truncated_and_undersized_frames_are_rejected() {
        let mut encrypt = EncryptFilter::new(2);
        let mut decrypt = DecryptFilter::new(2);
        let sealed = seal_one(&mut encrypt, packet(1, vec![5u8; 40]));
        let mut truncated = sealed.clone();
        truncated.payload_edit(|p| p.truncate(p.len() - 1));
        let tiny = sealed.with_payload(vec![1u8; TAG_LEN - 1]);
        let mut out: Vec<Packet> = Vec::new();
        decrypt.process(truncated, &mut out).unwrap();
        decrypt.process(tiny, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(decrypt.stats().rejected(), 2);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let mut encrypt = EncryptFilter::new(10);
        let mut decrypt = DecryptFilter::new(11);
        let sealed = seal_one(&mut encrypt, packet(1, vec![5u8; 40]));
        let mut out: Vec<Packet> = Vec::new();
        decrypt.process(sealed, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(decrypt.stats().rejected(), 1);
    }

    #[test]
    fn control_frames_pass_untouched() {
        let mut encrypt = EncryptFilter::new(3);
        let control =
            Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Control, vec![1, 2, 3]);
        let mut out: Vec<Packet> = Vec::new();
        encrypt.process(control.clone(), &mut out).unwrap();
        assert_eq!(out[0], control);
        assert_eq!(encrypt.stats().sealed(), 0);
    }

    #[test]
    fn rekey_rotates_the_epoch_at_the_boundary() {
        let mut encrypt = EncryptFilter::new(4);
        let mut decrypt = DecryptFilter::new(4);
        let before = packet(5, vec![1u8; 32]);
        let after = packet(10, vec![2u8; 32]);

        let sealed_before = seal_one(&mut encrypt, before.clone());
        let rekey = rekey_packet(StreamId::new(1), 1, 8, 0);
        let mut mid: Vec<Packet> = Vec::new();
        encrypt.process(rekey, &mut mid).unwrap();
        assert_eq!(mid.len(), 1, "encrypt forwards the rekey frame");
        let sealed_after = seal_one(&mut encrypt, after.clone());

        let mut out: Vec<Packet> = Vec::new();
        decrypt.process(sealed_before, &mut out).unwrap();
        decrypt.process(mid.pop().unwrap(), &mut out).unwrap();
        decrypt.process(sealed_after, &mut out).unwrap();
        assert_eq!(out, vec![before, after], "rekey frame consumed, data intact");
        assert_eq!(encrypt.stats().rekeys(), 1);
        assert_eq!(decrypt.stats().rekeys(), 1);
    }

    #[test]
    fn duplicated_and_reordered_rekeys_are_idempotent() {
        let mut decrypt = DecryptFilter::new(4);
        let mut out: Vec<Packet> = Vec::new();
        decrypt.process(rekey_packet(StreamId::new(1), 2, 20, 0), &mut out).unwrap();
        decrypt.process(rekey_packet(StreamId::new(1), 1, 10, 0), &mut out).unwrap();
        decrypt.process(rekey_packet(StreamId::new(1), 2, 20, 0), &mut out).unwrap();
        assert!(out.is_empty(), "all rekey copies consumed");
        assert_eq!(decrypt.stats().rekeys(), 2, "one install per distinct epoch");
    }

    #[test]
    fn replay_under_a_stale_key_is_rejected() {
        let mut encrypt = EncryptFilter::new(4);
        let mut decrypt = DecryptFilter::new(4);
        // Seal seq 10 under epoch 0, then rotate at boundary 8.  Replaying
        // the stale seal after the rotation must fail: the receiver now
        // opens seq >= 8 under epoch 1.
        let stale = seal_one(&mut encrypt, packet(10, vec![3u8; 32]));
        let mut out: Vec<Packet> = Vec::new();
        decrypt.process(rekey_packet(StreamId::new(1), 1, 8, 0), &mut out).unwrap();
        decrypt.process(stale, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(decrypt.stats().rejected(), 1);

        // But a pre-boundary frame sealed under epoch 0 still opens: old
        // keys stay installed for re-ordered stragglers.
        let straggler = packet(5, vec![4u8; 32]);
        let sealed = seal_one(&mut encrypt, straggler.clone());
        decrypt.process(sealed, &mut out).unwrap();
        assert_eq!(out, vec![straggler]);
    }

    #[test]
    fn parity_band_seqs_use_distinct_nonces() {
        // FEC parity seqs live at u64::MAX/2 + …, so their nonces never
        // collide with source-packet nonces.
        let source = packet(0, vec![1]);
        let parity_seq = u64::MAX / 2;
        let parity = packet(parity_seq, vec![1]);
        assert_ne!(packet_nonce(&source), packet_nonce(&parity));
    }

    #[test]
    fn rekey_frames_parse_and_reject_lookalikes() {
        let frame = rekey_packet(StreamId::new(9), 3, 1_000, 42);
        assert_eq!(parse_rekey(&frame), Some((3, 1_000)));
        assert_eq!(frame.seq().value(), 1_000);
        assert_eq!(frame.timestamp_us(), 42);
        let not_control = packet(0, frame.payload().to_vec());
        assert_eq!(parse_rekey(&not_control), None);
        let wrong_magic = Packet::new(
            StreamId::new(9),
            SeqNo::new(0),
            PacketKind::Control,
            vec![0u8; 16],
        );
        assert_eq!(parse_rekey(&wrong_magic), None);
        let empty =
            Packet::new(StreamId::new(9), SeqNo::new(0), PacketKind::Control, Vec::new());
        assert_eq!(parse_rekey(&empty), None);
    }

    #[test]
    fn batch_and_serial_orders_agree() {
        let packets: Vec<Packet> = (0..20).map(|s| packet(s, vec![s as u8; 48])).collect();
        let mut serial_out: Vec<Packet> = Vec::new();
        let mut encrypt = EncryptFilter::new(7);
        for p in packets.clone() {
            encrypt.process(p, &mut serial_out).unwrap();
        }
        let mut batch_out: Vec<Packet> = Vec::new();
        let mut encrypt = EncryptFilter::new(7);
        encrypt.process_batch(packets, &mut batch_out).unwrap();
        assert_eq!(serial_out, batch_out);
    }

    #[test]
    fn snapshots_merge() {
        let stats = SecureChannelStats::default();
        stats.sealed.fetch_add(3, Ordering::Relaxed);
        stats.rejected.fetch_add(1, Ordering::Relaxed);
        let mut total = SecureChannelSnapshot::default();
        assert!(total.is_empty());
        total.merge(stats.snapshot());
        total.merge(SecureChannelSnapshot {
            sealed: 0,
            opened: 2,
            rejected: 0,
            rekeys: 1,
        });
        assert_eq!(
            total,
            SecureChannelSnapshot {
                sealed: 3,
                opened: 2,
                rejected: 1,
                rekeys: 1
            }
        );
        assert!(!total.is_empty());
    }

    #[test]
    fn descriptors_mention_kind() {
        assert_eq!(EncryptFilter::new(1).descriptor().kind, "encrypt");
        assert_eq!(DecryptFilter::new(1).descriptor().kind, "decrypt");
        assert!(!format!("{:?}", EncryptFilter::new(1)).is_empty());
        assert!(!format!("{:?}", DecryptFilter::new(1)).is_empty());
    }
}
