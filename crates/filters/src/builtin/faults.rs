//! Fault-injection filters used by tests and experiments.
//!
//! These filters deliberately misbehave — dropping, duplicating, or
//! reordering packets — so the test suite can verify that the rest of the
//! framework (FEC, reordering buffers, duplicate suppression) copes, and so
//! experiments can create controlled loss inside a chain without involving
//! the network simulator.

use std::collections::VecDeque;

use rapidware_packet::Packet;

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput};

/// Drops every N-th payload packet (deterministically).
#[derive(Debug)]
pub struct DropEveryNth {
    name: String,
    n: u64,
    counter: u64,
    dropped: u64,
}

impl DropEveryNth {
    /// Creates a filter that drops every `n`-th payload packet.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "drop interval must be non-zero");
        Self {
            name: format!("drop-every({n})"),
            n,
            counter: 0,
            dropped: 0,
        }
    }

    /// Number of packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Filter for DropEveryNth {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if !packet.kind().is_payload() {
            out.emit(packet);
            return Ok(());
        }
        self.counter += 1;
        if self.counter.is_multiple_of(self.n) {
            self.dropped += 1;
            return Ok(());
        }
        out.emit(packet);
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "fault-drop".to_string(),
            parameters: format!("n={}, dropped={}", self.n, self.dropped),
        }
    }
}

/// Duplicates every N-th payload packet.
#[derive(Debug)]
pub struct DuplicateFilter {
    name: String,
    n: u64,
    counter: u64,
    duplicated: u64,
}

impl DuplicateFilter {
    /// Creates a filter that duplicates every `n`-th payload packet.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "duplication interval must be non-zero");
        Self {
            name: format!("duplicate-every({n})"),
            n,
            counter: 0,
            duplicated: 0,
        }
    }

    /// Number of extra copies emitted so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

impl Filter for DuplicateFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if packet.kind().is_payload() {
            self.counter += 1;
            if self.counter.is_multiple_of(self.n) {
                self.duplicated += 1;
                out.emit(packet.clone());
            }
        }
        out.emit(packet);
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "fault-duplicate".to_string(),
            parameters: format!("n={}, duplicated={}", self.n, self.duplicated),
        }
    }
}

/// Reorders packets by holding them in a small shuffle window and releasing
/// them in reversed batches.
#[derive(Debug)]
pub struct ReorderFilter {
    name: String,
    window: usize,
    held: VecDeque<Packet>,
}

impl ReorderFilter {
    /// Creates a filter that reverses the order of every `window` packets.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "reorder window must be non-zero");
        Self {
            name: format!("reorder(window={window})"),
            window,
            held: VecDeque::new(),
        }
    }
}

impl Filter for ReorderFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        self.held.push_back(packet);
        if self.held.len() >= self.window {
            while let Some(p) = self.held.pop_back() {
                out.emit(p);
            }
        }
        Ok(())
    }

    fn flush(&mut self, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        while let Some(p) = self.held.pop_back() {
            out.emit(p);
        }
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "fault-reorder".to_string(),
            parameters: format!("window={}", self.window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    fn packet(seq: u64) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![0u8; 8])
    }

    #[test]
    fn drop_every_nth_drops_deterministically() {
        let mut filter = DropEveryNth::new(3);
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..9 {
            filter.process(packet(seq), &mut out).unwrap();
        }
        assert_eq!(out.len(), 6);
        assert_eq!(filter.dropped(), 3);
        let seqs: Vec<u64> = out.iter().map(|p| p.seq().value()).collect();
        assert_eq!(seqs, vec![0, 1, 3, 4, 6, 7]);
    }

    #[test]
    fn control_packets_are_never_dropped() {
        let mut filter = DropEveryNth::new(1);
        let control = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Control, vec![]);
        let mut out: Vec<Packet> = Vec::new();
        filter.process(control.clone(), &mut out).unwrap();
        filter.process(packet(1), &mut out).unwrap();
        assert_eq!(out, vec![control]);
    }

    #[test]
    fn duplicate_filter_emits_extra_copies() {
        let mut filter = DuplicateFilter::new(2);
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..4 {
            filter.process(packet(seq), &mut out).unwrap();
        }
        assert_eq!(out.len(), 6);
        assert_eq!(filter.duplicated(), 2);
        let copies_of_1 = out.iter().filter(|p| p.seq().value() == 1).count();
        assert_eq!(copies_of_1, 2);
    }

    #[test]
    fn reorder_filter_reverses_windows_and_flushes_remainder() {
        let mut filter = ReorderFilter::new(3);
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..7 {
            filter.process(packet(seq), &mut out).unwrap();
        }
        filter.flush(&mut out).unwrap();
        let seqs: Vec<u64> = out.iter().map(|p| p.seq().value()).collect();
        assert_eq!(seqs, vec![2, 1, 0, 5, 4, 3, 6]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_parameters_panic() {
        let _ = DropEveryNth::new(0);
    }
}
