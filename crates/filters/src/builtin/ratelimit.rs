//! A priority-aware rate limiter.
//!
//! When the wireless link cannot carry the full stream, a proxy must shed
//! load intelligently: the paper (and the work it cites on QoS-directed
//! error control) prioritises I frames over P frames over B frames.  This
//! filter enforces a byte budget per time window and, when the budget is
//! exceeded, drops the lowest-priority packets first.

use rapidware_packet::{FrameType, Packet, PacketKind};

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput};

/// A token-bucket style rate limiter with frame-type-aware shedding.
#[derive(Debug)]
pub struct RateLimiterFilter {
    name: String,
    /// Budget in payload bytes per window.
    budget_bytes: u64,
    /// Window length in packet timestamps (µs).
    window_us: u64,
    window_start_us: u64,
    used_bytes: u64,
    forwarded: u64,
    dropped: u64,
    dropped_by_priority: [u64; 3],
}

impl RateLimiterFilter {
    /// Creates a limiter that forwards at most `budget_bytes` of payload per
    /// `window_us` microseconds of stream time.
    ///
    /// # Panics
    ///
    /// Panics if `window_us` is zero.
    pub fn new(budget_bytes: u64, window_us: u64) -> Self {
        assert!(window_us > 0, "rate limiter window must be non-zero");
        Self {
            name: format!("rate-limiter({budget_bytes}B/{window_us}us)"),
            budget_bytes,
            window_us,
            window_start_us: 0,
            used_bytes: 0,
            forwarded: 0,
            dropped: 0,
            dropped_by_priority: [0; 3],
        }
    }

    /// Creates a limiter expressed in bits per second with a 100 ms window.
    pub fn with_bitrate(bits_per_second: u64) -> Self {
        let window_us = 100_000;
        let budget_bytes = bits_per_second / 8 / 10;
        Self::new(budget_bytes.max(1), window_us)
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets dropped, indexed by frame priority (B, P, I).
    pub fn dropped_by_priority(&self) -> [u64; 3] {
        self.dropped_by_priority
    }

    fn priority(packet: &Packet) -> u8 {
        match packet.kind() {
            PacketKind::VideoFrame { frame, .. } => frame.priority(),
            // Audio, data, parity, and control are treated as top priority:
            // shedding decisions are aimed at video enhancement layers.
            _ => FrameType::I.priority(),
        }
    }
}

impl Filter for RateLimiterFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        // Roll the window forward based on stream timestamps, so behaviour
        // is deterministic and independent of wall-clock time.
        let now = packet.timestamp_us();
        if now >= self.window_start_us + self.window_us {
            self.window_start_us = now - (now % self.window_us);
            self.used_bytes = 0;
        }
        let size = packet.payload_len() as u64;
        let priority = Self::priority(&packet);
        let over_budget = self.used_bytes + size > self.budget_bytes;
        // Low-priority packets are shed as soon as the budget is exceeded;
        // top-priority packets are still forwarded (they represent audio or
        // I frames the user cannot do without), letting the budget overrun
        // rather than silencing the stream.
        if over_budget && priority < FrameType::I.priority() {
            self.dropped += 1;
            self.dropped_by_priority[priority as usize] += 1;
            return Ok(());
        }
        self.used_bytes += size;
        self.forwarded += 1;
        out.emit(packet);
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "rate-limiter".to_string(),
            parameters: format!(
                "budget={}B/{}us, forwarded={}, dropped={}",
                self.budget_bytes, self.window_us, self.forwarded, self.dropped
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{SeqNo, StreamId};

    fn video(seq: u64, ts: u64, frame: FrameType, len: usize) -> Packet {
        Packet::with_timestamp(
            StreamId::new(1),
            SeqNo::new(seq),
            PacketKind::VideoFrame {
                frame,
                boundary: true,
            },
            ts,
            vec![0u8; len],
        )
    }

    fn audio(seq: u64, ts: u64, len: usize) -> Packet {
        Packet::with_timestamp(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, ts, vec![0u8; len])
    }

    #[test]
    fn under_budget_everything_passes() {
        let mut limiter = RateLimiterFilter::new(10_000, 1_000_000);
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..5 {
            limiter
                .process(video(seq, seq * 1000, FrameType::B, 100), &mut out)
                .unwrap();
        }
        assert_eq!(out.len(), 5);
        assert_eq!(limiter.dropped(), 0);
    }

    #[test]
    fn over_budget_b_frames_are_dropped_first() {
        // Budget: 1000 bytes per window; I and B frames alternate.
        let mut limiter = RateLimiterFilter::new(1_000, 1_000_000);
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..10 {
            let frame = if seq % 2 == 0 { FrameType::I } else { FrameType::B };
            limiter
                .process(video(seq, seq * 1000, frame, 300), &mut out)
                .unwrap();
        }
        // Budget admits ~3 packets; I frames keep flowing, B frames shed.
        let i_frames = out
            .iter()
            .filter(|p| matches!(p.kind(), PacketKind::VideoFrame { frame: FrameType::I, .. }))
            .count();
        let b_frames = out
            .iter()
            .filter(|p| matches!(p.kind(), PacketKind::VideoFrame { frame: FrameType::B, .. }))
            .count();
        assert_eq!(i_frames, 5, "all I frames forwarded");
        assert!(b_frames < 5, "some B frames shed");
        assert!(limiter.dropped() > 0);
        assert!(limiter.dropped_by_priority()[FrameType::B.priority() as usize] > 0);
        assert_eq!(limiter.dropped_by_priority()[FrameType::I.priority() as usize], 0);
    }

    #[test]
    fn audio_is_never_shed() {
        let mut limiter = RateLimiterFilter::new(100, 1_000_000);
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..20 {
            limiter.process(audio(seq, seq * 1000, 320), &mut out).unwrap();
        }
        assert_eq!(out.len(), 20);
        assert_eq!(limiter.forwarded(), 20);
    }

    #[test]
    fn budget_refreshes_each_window() {
        let mut limiter = RateLimiterFilter::new(500, 10_000);
        let mut out: Vec<Packet> = Vec::new();
        // Window 1: two 300-byte B packets; second exceeds budget and drops.
        limiter.process(video(0, 0, FrameType::B, 300), &mut out).unwrap();
        limiter.process(video(1, 1_000, FrameType::B, 300), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        // Window 2 (t = 10 ms): budget is fresh again.
        limiter
            .process(video(2, 10_000, FrameType::B, 300), &mut out)
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn with_bitrate_converts_to_bytes() {
        let limiter = RateLimiterFilter::with_bitrate(128_000);
        assert!(limiter.name().contains("1600B"));
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn zero_window_panics() {
        let _ = RateLimiterFilter::new(100, 0);
    }
}
