//! Payload scrambling filter pair.
//!
//! RAPIDware's goals include security services composed into proxies at run
//! time.  True cryptography is out of scope for this reproduction, but the
//! *composition* behaviour — a keyed, stateful, order-sensitive payload
//! transformation that must be paired with its inverse on the other side of
//! the lossy hop — is exercised by this keyed XOR-stream scrambler.  It is
//! self-synchronising per packet (the keystream is derived from the key and
//! the packet's sequence number), so packet loss does not break decoding of
//! later packets.

use rapidware_packet::Packet;

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput};

fn keystream_byte(key: u64, seq: u64, index: usize) -> u8 {
    // A small xorshift-style mixer seeded by (key, seq, index); not secure,
    // but deterministic, fast, and key/seq sensitive.
    let mut x = key ^ seq.rotate_left(17) ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    (x & 0xFF) as u8
}

fn apply(key: u64, mut packet: Packet) -> Packet {
    let seq = packet.seq().value();
    // Copy-on-write rewrite: a uniquely owned payload is transformed in
    // place with no allocation, while a payload shared with fan-out
    // siblings (other receiver lanes of a Session) is copied first so the
    // siblings keep the original bytes.
    for (i, byte) in packet.payload_mut().iter_mut().enumerate() {
        *byte ^= keystream_byte(key, seq, i);
    }
    packet
}

/// Scrambles payloads with a keyed XOR keystream.
#[derive(Debug)]
pub struct ScramblerFilter {
    name: String,
    key: u64,
    packets: u64,
}

/// Reverses [`ScramblerFilter`] (the transformation is an involution, but a
/// distinct type keeps chains self-documenting).
#[derive(Debug)]
pub struct DescramblerFilter {
    name: String,
    key: u64,
    packets: u64,
}

impl ScramblerFilter {
    /// Creates a scrambler with the given key.
    pub fn new(key: u64) -> Self {
        Self {
            name: format!("scrambler(key={key:#x})"),
            key,
            packets: 0,
        }
    }
}

impl DescramblerFilter {
    /// Creates a descrambler with the given key.
    pub fn new(key: u64) -> Self {
        Self {
            name: format!("descrambler(key={key:#x})"),
            key,
            packets: 0,
        }
    }
}

impl Filter for ScramblerFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if !packet.kind().is_payload() {
            out.emit(packet);
            return Ok(());
        }
        self.packets += 1;
        out.emit(apply(self.key, packet));
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "scrambler".to_string(),
            parameters: format!("packets={}", self.packets),
        }
    }
}

impl Filter for DescramblerFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if !packet.kind().is_payload() {
            out.emit(packet);
            return Ok(());
        }
        self.packets += 1;
        out.emit(apply(self.key, packet));
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "descrambler".to_string(),
            parameters: format!("packets={}", self.packets),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    fn packet(seq: u64, payload: Vec<u8>) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, payload)
    }

    #[test]
    fn scramble_then_descramble_restores_payload() {
        let mut scrambler = ScramblerFilter::new(0xDEADBEEF);
        let mut descrambler = DescramblerFilter::new(0xDEADBEEF);
        let original = packet(5, (0..200u8).collect());
        let mut mid: Vec<Packet> = Vec::new();
        scrambler.process(original.clone(), &mut mid).unwrap();
        assert_ne!(mid[0].payload(), original.payload());
        let mut out: Vec<Packet> = Vec::new();
        descrambler.process(mid.pop().unwrap(), &mut out).unwrap();
        assert_eq!(out[0], original);
    }

    #[test]
    fn wrong_key_does_not_restore() {
        let mut scrambler = ScramblerFilter::new(1);
        let mut descrambler = DescramblerFilter::new(2);
        let original = packet(5, vec![7u8; 64]);
        let mut mid: Vec<Packet> = Vec::new();
        scrambler.process(original.clone(), &mut mid).unwrap();
        let mut out: Vec<Packet> = Vec::new();
        descrambler.process(mid.pop().unwrap(), &mut out).unwrap();
        assert_ne!(out[0].payload(), original.payload());
    }

    #[test]
    fn scrambling_is_seq_sensitive() {
        let mut scrambler = ScramblerFilter::new(42);
        let mut out: Vec<Packet> = Vec::new();
        scrambler.process(packet(1, vec![0u8; 32]), &mut out).unwrap();
        scrambler.process(packet(2, vec![0u8; 32]), &mut out).unwrap();
        assert_ne!(out[0].payload(), out[1].payload());
    }

    #[test]
    fn loss_of_one_packet_does_not_break_the_next() {
        let mut scrambler = ScramblerFilter::new(9);
        let mut descrambler = DescramblerFilter::new(9);
        let packets: Vec<Packet> = (0..4).map(|s| packet(s, vec![s as u8 + 1; 50])).collect();
        let mut scrambled: Vec<Packet> = Vec::new();
        for p in &packets {
            scrambler.process(p.clone(), &mut scrambled).unwrap();
        }
        // Drop packet 1 in transit; the rest still descramble correctly.
        let mut out: Vec<Packet> = Vec::new();
        for p in scrambled.into_iter().filter(|p| p.seq().value() != 1) {
            descrambler.process(p, &mut out).unwrap();
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], packets[0]);
        assert_eq!(out[1], packets[2]);
        assert_eq!(out[2], packets[3]);
    }

    #[test]
    fn control_packets_are_untouched() {
        let mut scrambler = ScramblerFilter::new(3);
        let control = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Control, vec![1, 2, 3]);
        let mut out: Vec<Packet> = Vec::new();
        scrambler.process(control.clone(), &mut out).unwrap();
        assert_eq!(out[0], control);
    }

    #[test]
    fn descriptors_mention_kind() {
        assert_eq!(ScramblerFilter::new(1).descriptor().kind, "scrambler");
        assert_eq!(DescramblerFilter::new(1).descriptor().kind, "descrambler");
    }
}
