//! The library of built-in proxy filters.
//!
//! These are the RAPIDware "raplet payloads" a proxy typically installs:
//! FEC coding, transcoding, compression, rate limiting, scrambling, plus
//! diagnostic and fault-injection filters used by the test suite and the
//! experiment harness.

pub(crate) mod compress;
pub(crate) mod faults;
pub(crate) mod fec_decode;
pub(crate) mod fec_encode;
pub(crate) mod null;
pub(crate) mod ratelimit;
pub(crate) mod scramble;
pub(crate) mod secure;
pub(crate) mod tap;
pub(crate) mod transcode;
