//! Audio transcoding filter.
//!
//! Transcoding "to a lower bandwidth format" before the wireless hop is one
//! of the proxy duties the paper lists (and the reason a proxy exists at
//! all for a palmtop-class receiver).  The synthetic transcoder here reduces
//! PCM audio bandwidth by dropping channels, halving the sample rate, or
//! re-quantising 16-bit samples to 8 bits.  The arithmetic is simple, but
//! the *shape* is faithful: payloads shrink by a known factor while packet
//! count, sequencing, and timestamps are preserved.

use rapidware_packet::Packet;

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput};

/// How the transcoder reduces the stream's bit-rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TranscodeMode {
    /// Keep only the left channel of interleaved stereo samples (halves the
    /// payload).
    StereoToMono,
    /// Drop every second sample (halves the payload, halves the sample
    /// rate).
    HalveSampleRate,
    /// Re-quantise 16-bit little-endian samples to 8 bits (halves the
    /// payload).
    SixteenToEightBit,
}

impl TranscodeMode {
    /// The factor by which payload sizes shrink.
    pub fn compression_factor(self) -> f64 {
        2.0
    }

    fn label(self) -> &'static str {
        match self {
            TranscodeMode::StereoToMono => "stereo-to-mono",
            TranscodeMode::HalveSampleRate => "halve-sample-rate",
            TranscodeMode::SixteenToEightBit => "16-to-8-bit",
        }
    }
}

/// A filter that reduces the bandwidth of PCM audio packets.
#[derive(Debug)]
pub struct AudioTranscoderFilter {
    name: String,
    mode: TranscodeMode,
    bytes_in: u64,
    bytes_out: u64,
}

impl AudioTranscoderFilter {
    /// Creates a transcoder with the given mode.
    pub fn new(mode: TranscodeMode) -> Self {
        Self {
            name: format!("transcoder({})", mode.label()),
            mode,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> TranscodeMode {
        self.mode
    }

    /// Total payload bytes consumed.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Total payload bytes produced.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Observed compression ratio (input bytes per output byte).
    pub fn observed_ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            1.0
        } else {
            self.bytes_in as f64 / self.bytes_out as f64
        }
    }

    fn transcode(&self, payload: &[u8]) -> Vec<u8> {
        match self.mode {
            TranscodeMode::StereoToMono => {
                // Interleaved L/R bytes: keep L.
                payload.iter().step_by(2).copied().collect()
            }
            TranscodeMode::HalveSampleRate => {
                // Keep every other sample pair (stereo-agnostic: drop every
                // second byte pair).
                payload
                    .chunks(2)
                    .step_by(2)
                    .flat_map(|pair| pair.iter().copied())
                    .collect()
            }
            TranscodeMode::SixteenToEightBit => {
                // Take the high byte of each 16-bit little-endian sample.
                payload.chunks(2).map(|pair| *pair.last().unwrap_or(&0)).collect()
            }
        }
    }
}

impl Filter for AudioTranscoderFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if !packet.kind().is_payload() {
            out.emit(packet);
            return Ok(());
        }
        self.bytes_in += packet.payload_len() as u64;
        let transcoded = self.transcode(packet.payload());
        self.bytes_out += transcoded.len() as u64;
        out.emit(packet.with_payload(transcoded));
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "transcoder".to_string(),
            parameters: format!("mode={}, ratio={:.2}", self.mode.label(), self.observed_ratio()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    fn packet(payload: Vec<u8>) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, payload)
    }

    #[test]
    fn stereo_to_mono_keeps_left_channel() {
        let mut filter = AudioTranscoderFilter::new(TranscodeMode::StereoToMono);
        let mut out: Vec<Packet> = Vec::new();
        filter
            .process(packet(vec![1, 2, 3, 4, 5, 6]), &mut out)
            .unwrap();
        assert_eq!(out[0].payload(), &[1, 3, 5]);
    }

    #[test]
    fn halve_sample_rate_drops_alternate_pairs() {
        let mut filter = AudioTranscoderFilter::new(TranscodeMode::HalveSampleRate);
        let mut out: Vec<Packet> = Vec::new();
        filter
            .process(packet(vec![1, 2, 3, 4, 5, 6, 7, 8]), &mut out)
            .unwrap();
        assert_eq!(out[0].payload(), &[1, 2, 5, 6]);
    }

    #[test]
    fn sixteen_to_eight_takes_high_bytes() {
        let mut filter = AudioTranscoderFilter::new(TranscodeMode::SixteenToEightBit);
        let mut out: Vec<Packet> = Vec::new();
        filter
            .process(packet(vec![0x34, 0x12, 0x78, 0x56]), &mut out)
            .unwrap();
        assert_eq!(out[0].payload(), &[0x12, 0x56]);
    }

    #[test]
    fn halves_the_bandwidth_and_reports_ratio() {
        let mut filter = AudioTranscoderFilter::new(TranscodeMode::StereoToMono);
        let mut out: Vec<Packet> = Vec::new();
        for _ in 0..10 {
            filter.process(packet(vec![7u8; 320]), &mut out).unwrap();
        }
        assert_eq!(filter.bytes_in(), 3200);
        assert_eq!(filter.bytes_out(), 1600);
        assert!((filter.observed_ratio() - 2.0).abs() < 1e-9);
        assert!((filter.mode().compression_factor() - 2.0).abs() < 1e-9);
        assert!(filter.descriptor().parameters.contains("ratio=2.00"));
    }

    #[test]
    fn non_payload_packets_pass_through() {
        let mut filter = AudioTranscoderFilter::new(TranscodeMode::StereoToMono);
        let mut out: Vec<Packet> = Vec::new();
        let control = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Control, vec![1, 2]);
        filter.process(control.clone(), &mut out).unwrap();
        assert_eq!(out[0], control);
        assert_eq!(filter.bytes_in(), 0);
    }

    #[test]
    fn sequencing_and_metadata_are_preserved() {
        let mut filter = AudioTranscoderFilter::new(TranscodeMode::StereoToMono);
        let input = Packet::with_timestamp(
            StreamId::new(2),
            SeqNo::new(77),
            PacketKind::AudioData,
            123_456,
            vec![1u8; 64],
        );
        let mut out: Vec<Packet> = Vec::new();
        filter.process(input, &mut out).unwrap();
        assert_eq!(out[0].seq(), SeqNo::new(77));
        assert_eq!(out[0].timestamp_us(), 123_456);
        assert_eq!(out[0].stream(), StreamId::new(2));
    }
}
