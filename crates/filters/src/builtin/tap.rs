//! A counting tap: forwards packets unchanged while recording statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rapidware_packet::Packet;

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput};

/// Shared counters exposed by a [`TapFilter`].
#[derive(Debug, Default)]
pub struct TapCounters {
    packets: AtomicU64,
    bytes: AtomicU64,
    payload_packets: AtomicU64,
    parity_packets: AtomicU64,
}

impl TapCounters {
    /// Total packets observed.
    pub fn packets(&self) -> u64 {
        self.packets.load(Ordering::Relaxed)
    }

    /// Total payload bytes observed.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Packets carrying application payload.
    pub fn payload_packets(&self) -> u64 {
        self.payload_packets.load(Ordering::Relaxed)
    }

    /// FEC parity packets.
    pub fn parity_packets(&self) -> u64 {
        self.parity_packets.load(Ordering::Relaxed)
    }
}

/// A pass-through filter that counts traffic.
///
/// Observer raplets attach taps at interesting points of a chain (e.g.
/// before and after the wireless hop) and compare the counters to estimate
/// loss or redundancy overhead without perturbing the stream.
#[derive(Debug)]
pub struct TapFilter {
    name: String,
    counters: Arc<TapCounters>,
}

impl TapFilter {
    /// Creates a tap with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            counters: Arc::new(TapCounters::default()),
        }
    }

    /// A handle to the tap's counters that stays valid after the filter has
    /// been installed in a chain.
    pub fn counters(&self) -> Arc<TapCounters> {
        Arc::clone(&self.counters)
    }
}

impl Filter for TapFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        self.counters.packets.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(packet.payload_len() as u64, Ordering::Relaxed);
        if packet.kind().is_payload() {
            self.counters.payload_packets.fetch_add(1, Ordering::Relaxed);
        }
        if packet.kind().is_parity() {
            self.counters.parity_packets.fetch_add(1, Ordering::Relaxed);
        }
        out.emit(packet);
        Ok(())
    }

    fn process_batch(
        &mut self,
        packets: Vec<Packet>,
        out: &mut dyn FilterOutput,
    ) -> Result<(), FilterError> {
        // Tally locally and publish once: one atomic RMW per counter per
        // batch instead of up to four per packet.
        let mut total = 0u64;
        let mut bytes = 0u64;
        let mut payload = 0u64;
        let mut parity = 0u64;
        for packet in packets {
            total += 1;
            bytes += packet.payload_len() as u64;
            if packet.kind().is_payload() {
                payload += 1;
            }
            if packet.kind().is_parity() {
                parity += 1;
            }
            out.emit(packet);
        }
        self.counters.packets.fetch_add(total, Ordering::Relaxed);
        self.counters.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.counters
            .payload_packets
            .fetch_add(payload, Ordering::Relaxed);
        self.counters
            .parity_packets
            .fetch_add(parity, Ordering::Relaxed);
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "tap".to_string(),
            parameters: format!("packets={}", self.counters.packets()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{BlockId, PacketKind, SeqNo, StreamId};

    #[test]
    fn counts_packets_and_bytes() {
        let mut tap = TapFilter::new("uplink");
        let counters = tap.counters();
        let mut out: Vec<Packet> = Vec::new();
        let data = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, vec![0u8; 100]);
        let parity = Packet::new(
            StreamId::new(1),
            SeqNo::new(1),
            PacketKind::Parity {
                block: BlockId::new(0),
                index: 4,
                k: 4,
                n: 6,
            },
            vec![0u8; 50],
        );
        tap.process(data, &mut out).unwrap();
        tap.process(parity, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(counters.packets(), 2);
        assert_eq!(counters.bytes(), 150);
        assert_eq!(counters.payload_packets(), 1);
        assert_eq!(counters.parity_packets(), 1);
        assert!(tap.descriptor().parameters.contains("packets=2"));
    }
}
