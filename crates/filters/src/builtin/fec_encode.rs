//! The FEC encoder filter.
//!
//! This is the Rust port of the proxy component the paper integrates first
//! into the RAPIDware framework: it "collects the data packets into FEC data
//! blocks of size k" and, when a group is full, "encoding routines are
//! invoked to produce n − k parity packets", which are forwarded along with
//! the data packets toward the wireless sender.
//!
//! The filter is *systematic*: source packets pass through unchanged and
//! immediately (no added latency on the data path); parity packets are
//! emitted right after the k-th source packet of each block.  Each parity
//! packet's payload is the 8-byte big-endian sequence number of the first
//! source packet of the block, followed by the parity shard computed over
//! the **wire encodings** of the block's source packets — so a receiver can
//! reconstruct a lost packet in its entirety (header, timestamp, and
//! payload), not just its payload bytes.

use rapidware_fec::{BlockAssembler, FecCodec};
use rapidware_packet::{BlockId, Packet, PacketKind, SeqNo};

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput, InsertionPoint};

/// A composable proxy filter that adds (n, k) block-erasure parity packets
/// to a stream.
#[derive(Debug)]
pub struct FecEncoderFilter {
    name: String,
    assembler: BlockAssembler,
    /// Sequence number of the first packet of the block being assembled.
    block_first_seq: Option<SeqNo>,
    /// Stream/timestamp template for parity packets (copied from the most
    /// recent source packet).
    template: Option<Packet>,
    next_block: BlockId,
    require_frame_boundary: bool,
    blocks_encoded: u64,
    parities_emitted: u64,
    /// Reused wire-encoding buffer: each source packet is serialised into
    /// this scratch before joining its FEC block, so the hot path allocates
    /// nothing per packet.
    wire_scratch: Vec<u8>,
}

impl FecEncoderFilter {
    /// Creates an encoder with the given (n, k) parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`FilterError::Fec`] wrapping
    /// [`rapidware_fec::FecError::InvalidParameters`] for invalid (n, k).
    pub fn new(n: usize, k: usize) -> Result<Self, FilterError> {
        let codec = FecCodec::new(n, k)?;
        Ok(Self {
            name: format!("fec-encoder({n},{k})"),
            assembler: BlockAssembler::new(codec),
            block_first_seq: None,
            template: None,
            next_block: BlockId::new(0),
            require_frame_boundary: false,
            blocks_encoded: 0,
            parities_emitted: 0,
            wire_scratch: Vec::new(),
        })
    }

    /// The paper's FEC(6, 4) configuration ("we use small groups so as to
    /// minimize jitter").
    ///
    /// # Errors
    ///
    /// Never fails; returns `Result` for uniformity with [`new`](Self::new).
    pub fn fec_6_4() -> Result<Self, FilterError> {
        Self::new(6, 4)
    }

    /// Marks this encoder as video-aware: it must be spliced into a running
    /// chain only at a frame boundary.
    #[must_use]
    pub fn frame_aligned(mut self) -> Self {
        self.require_frame_boundary = true;
        self
    }

    /// Number of source packets per block.
    pub fn k(&self) -> usize {
        self.assembler.codec().k()
    }

    /// Total encoded packets per block.
    pub fn n(&self) -> usize {
        self.assembler.codec().n()
    }

    /// Number of complete blocks encoded so far.
    pub fn blocks_encoded(&self) -> u64 {
        self.blocks_encoded
    }

    /// Number of parity packets emitted so far.
    pub fn parities_emitted(&self) -> u64 {
        self.parities_emitted
    }

    fn emit_parities(
        &mut self,
        block: rapidware_fec::EncodedBlock,
        out: &mut dyn FilterOutput,
    ) -> Result<(), FilterError> {
        let first_seq = self
            .block_first_seq
            .take()
            .ok_or_else(|| FilterError::Internal("fec block without a first sequence".into()))?;
        let template = self
            .template
            .clone()
            .ok_or_else(|| FilterError::Internal("fec block without a template packet".into()))?;
        let block_id = self.next_block;
        self.next_block = self.next_block.next();
        self.blocks_encoded += 1;

        for (index, shard) in block.parities.into_iter().enumerate() {
            let mut payload = Vec::with_capacity(8 + shard.len());
            payload.extend_from_slice(&first_seq.value().to_be_bytes());
            payload.extend_from_slice(&shard);
            let kind = PacketKind::Parity {
                block: block_id,
                index: (self.k() + index) as u8,
                k: self.k() as u8,
                n: self.n() as u8,
            };
            // Parity packets get sequence numbers in a disjoint "parity
            // space" derived from the block so they never collide with
            // source sequence numbers at a reordering buffer.
            let parity_seq = SeqNo::new(u64::MAX / 2 + block_id.value() * self.n() as u64 + index as u64);
            let parity = Packet::with_timestamp(
                template.stream(),
                parity_seq,
                kind,
                template.timestamp_us(),
                payload,
            );
            out.emit(parity);
            self.parities_emitted += 1;
        }
        Ok(())
    }
}

impl FecEncoderFilter {
    /// Encodes one packet; shared by the serial and batched paths so both
    /// produce identical output.
    fn encode_one(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        // Non-payload packets (control, parity from an upstream encoder) are
        // forwarded untouched and do not join a block.
        if !packet.kind().is_payload() {
            out.emit(packet);
            return Ok(());
        }
        if self.block_first_seq.is_none() {
            self.block_first_seq = Some(packet.seq());
        }
        packet.encode_into(&mut self.wire_scratch);
        self.template = Some(packet.clone());
        // The source packet itself is forwarded immediately (systematic
        // code: zero added latency on the data path).
        out.emit(packet);
        if let Some(block) = self.assembler.push(&self.wire_scratch)? {
            self.emit_parities(block, out)?;
        }
        Ok(())
    }
}

impl Filter for FecEncoderFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        self.encode_one(packet, out)
    }

    fn process_batch(
        &mut self,
        packets: Vec<Packet>,
        out: &mut dyn FilterOutput,
    ) -> Result<(), FilterError> {
        // The wire-encoding scratch stays warm for the whole batch and each
        // completed block's parities are produced by the codec's bulk
        // slice routines, so a 32-packet batch through FEC(6,4) costs eight
        // block encodes and no per-packet allocation beyond the parity
        // payloads themselves.
        for packet in packets {
            self.encode_one(packet, out)?;
        }
        Ok(())
    }

    fn flush(&mut self, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if let Some(block) = self.assembler.flush()? {
            self.emit_parities(block, out)?;
        }
        Ok(())
    }

    fn insertion_point(&self) -> InsertionPoint {
        if self.require_frame_boundary {
            InsertionPoint::FrameBoundary
        } else {
            InsertionPoint::Anywhere
        }
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name.clone(),
            kind: "fec-encoder".to_string(),
            parameters: format!(
                "n={}, k={}, blocks={}, parities={}",
                self.n(),
                self.k(),
                self.blocks_encoded,
                self.parities_emitted
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, StreamId};

    fn audio_packet(seq: u64, len: usize) -> Packet {
        Packet::with_timestamp(
            StreamId::new(3),
            SeqNo::new(seq),
            PacketKind::AudioData,
            seq * 20_000,
            vec![(seq % 251) as u8; len],
        )
    }

    #[test]
    fn emits_two_parities_every_four_sources_for_6_4() {
        let mut encoder = FecEncoderFilter::fec_6_4().unwrap();
        let mut out: Vec<Packet> = Vec::new();
        for seq in 0..8u64 {
            encoder.process(audio_packet(seq, 320), &mut out).unwrap();
        }
        // 8 sources + 2 blocks * 2 parities.
        assert_eq!(out.len(), 12);
        let parities: Vec<&Packet> = out.iter().filter(|p| p.kind().is_parity()).collect();
        assert_eq!(parities.len(), 4);
        assert_eq!(encoder.blocks_encoded(), 2);
        assert_eq!(encoder.parities_emitted(), 4);
        // Parity metadata is coherent.
        match parities[0].kind() {
            PacketKind::Parity { block, index, k, n } => {
                assert_eq!(block, rapidware_packet::BlockId::new(0));
                assert_eq!(index, 4);
                assert_eq!(k, 4);
                assert_eq!(n, 6);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        // First 8 bytes of the parity payload carry the block's first seq.
        let first_seq = u64::from_be_bytes(parities[0].payload()[..8].try_into().unwrap());
        assert_eq!(first_seq, 0);
        let first_seq = u64::from_be_bytes(parities[2].payload()[..8].try_into().unwrap());
        assert_eq!(first_seq, 4);
    }

    #[test]
    fn source_packets_pass_through_unchanged_and_in_order() {
        let mut encoder = FecEncoderFilter::fec_6_4().unwrap();
        let mut out: Vec<Packet> = Vec::new();
        let inputs: Vec<Packet> = (0..4).map(|s| audio_packet(s, 100 + s as usize)).collect();
        for packet in &inputs {
            encoder.process(packet.clone(), &mut out).unwrap();
        }
        let sources: Vec<&Packet> = out.iter().filter(|p| p.kind().is_payload()).collect();
        assert_eq!(sources.len(), 4);
        for (observed, expected) in sources.iter().zip(&inputs) {
            assert_eq!(*observed, expected);
        }
        // The source packet is emitted *before* the parities of its block.
        assert!(out[3].kind().is_payload());
        assert!(out[4].kind().is_parity());
    }

    #[test]
    fn flush_protects_a_partial_block() {
        let mut encoder = FecEncoderFilter::fec_6_4().unwrap();
        let mut out: Vec<Packet> = Vec::new();
        encoder.process(audio_packet(0, 64), &mut out).unwrap();
        encoder.process(audio_packet(1, 64), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        encoder.flush(&mut out).unwrap();
        assert_eq!(out.len(), 4, "two parities for the padded partial block");
        assert!(out[2].kind().is_parity());
    }

    #[test]
    fn control_packets_are_not_encoded() {
        let mut encoder = FecEncoderFilter::new(5, 2).unwrap();
        let mut out: Vec<Packet> = Vec::new();
        let control = Packet::new(StreamId::new(3), SeqNo::new(9), PacketKind::Control, vec![1]);
        encoder.process(control.clone(), &mut out).unwrap();
        encoder.process(audio_packet(0, 10), &mut out).unwrap();
        encoder.process(audio_packet(1, 10), &mut out).unwrap();
        // Control forwarded + 2 sources + 3 parities (k=2, n=5).
        assert_eq!(out.len(), 6);
        assert_eq!(out[0], control);
        assert_eq!(out.iter().filter(|p| p.kind().is_parity()).count(), 3);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(FecEncoderFilter::new(2, 4).is_err());
    }

    #[test]
    fn frame_aligned_encoder_requires_boundary() {
        let encoder = FecEncoderFilter::fec_6_4().unwrap().frame_aligned();
        assert_eq!(encoder.insertion_point(), InsertionPoint::FrameBoundary);
        let plain = FecEncoderFilter::fec_6_4().unwrap();
        assert_eq!(plain.insertion_point(), InsertionPoint::Anywhere);
    }

    #[test]
    fn descriptor_reports_parameters() {
        let encoder = FecEncoderFilter::fec_6_4().unwrap();
        let descriptor = encoder.descriptor();
        assert_eq!(descriptor.kind, "fec-encoder");
        assert!(descriptor.parameters.contains("n=6, k=4"));
        assert_eq!(encoder.name(), "fec-encoder(6,4)");
    }
}
