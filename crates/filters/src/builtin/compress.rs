//! Run-length compression filter pair.
//!
//! Bandwidth reduction on the wireless hop is a canonical proxy duty.  This
//! pair implements a simple, self-contained run-length encoding so the
//! framework can demonstrate lossless payload rewriting (as opposed to the
//! lossy transcoder): a [`CompressorFilter`] ahead of the wireless link and
//! a [`DecompressorFilter`] on the mobile host restore payloads exactly.
//!
//! Wire format per payload: a sequence of `(count, byte)` pairs where
//! `count` is 1–255.  Payloads whose RLE form would be larger than the
//! original are sent verbatim with a 1-byte `0x00` marker prefix; compressed
//! payloads carry a `0x01` prefix.

use rapidware_packet::Packet;

use crate::error::FilterError;
use crate::filter::{Filter, FilterDescriptor, FilterOutput};

const MARKER_RAW: u8 = 0x00;
const MARKER_RLE: u8 = 0x01;

/// Losslessly compresses payloads with run-length encoding.
#[derive(Debug, Default)]
pub struct CompressorFilter {
    bytes_in: u64,
    bytes_out: u64,
    /// Reused RLE work buffer so steady-state compression (especially the
    /// batched path) does not allocate a throwaway encoding per packet.
    scratch: Vec<u8>,
}

/// Reverses [`CompressorFilter`].
#[derive(Debug, Default)]
pub struct DecompressorFilter {
    bytes_in: u64,
    bytes_out: u64,
}

/// Run-length encodes `data` (without the marker byte) into `out`,
/// replacing its contents.
fn rle_encode_into(data: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(data.len() / 2 + 2);
    let mut iter = data.iter().copied().peekable();
    while let Some(byte) = iter.next() {
        let mut count: u8 = 1;
        while count < u8::MAX {
            if iter.peek() == Some(&byte) {
                iter.next();
                count += 1;
            } else {
                break;
            }
        }
        out.push(count);
        out.push(byte);
    }
}

/// Run-length encodes `data` into a fresh buffer (test helper).
#[cfg(test)]
fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    rle_encode_into(data, &mut out);
    out
}

/// Decodes a run-length encoded body.
fn rle_decode(data: &[u8]) -> Result<Vec<u8>, FilterError> {
    if !data.len().is_multiple_of(2) {
        return Err(FilterError::Internal(
            "run-length body has odd length".to_string(),
        ));
    }
    let mut out = Vec::with_capacity(data.len());
    for pair in data.chunks(2) {
        let count = pair[0];
        let byte = pair[1];
        if count == 0 {
            return Err(FilterError::Internal("zero-length run".to_string()));
        }
        out.extend(std::iter::repeat_n(byte, count as usize));
    }
    Ok(out)
}

impl CompressorFilter {
    /// Creates a compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observed compression ratio (input bytes per output byte).
    pub fn observed_ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            1.0
        } else {
            self.bytes_in as f64 / self.bytes_out as f64
        }
    }
}

impl DecompressorFilter {
    /// Creates a decompressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total payload bytes produced after decompression.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }
}

impl CompressorFilter {
    /// Compresses one packet; shared by the serial and batched paths so
    /// both produce identical output.
    fn compress_one(&mut self, packet: Packet, out: &mut dyn FilterOutput) {
        if !packet.kind().is_payload() {
            out.emit(packet);
            return;
        }
        self.bytes_in += packet.payload_len() as u64;
        rle_encode_into(packet.payload(), &mut self.scratch);
        let payload = if self.scratch.len() < packet.payload_len() {
            let mut body = Vec::with_capacity(self.scratch.len() + 1);
            body.push(MARKER_RLE);
            body.extend_from_slice(&self.scratch);
            body
        } else {
            let mut body = Vec::with_capacity(packet.payload_len() + 1);
            body.push(MARKER_RAW);
            body.extend_from_slice(packet.payload());
            body
        };
        self.bytes_out += payload.len() as u64;
        out.emit(packet.with_payload(payload));
    }
}

impl Filter for CompressorFilter {
    fn name(&self) -> &str {
        "compressor(rle)"
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        self.compress_one(packet, out);
        Ok(())
    }

    fn process_batch(
        &mut self,
        packets: Vec<Packet>,
        out: &mut dyn FilterOutput,
    ) -> Result<(), FilterError> {
        // The RLE work buffer is warm after the first packet, so the rest of
        // the batch compresses with zero transient allocations.
        for packet in packets {
            self.compress_one(packet, out);
        }
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name().to_string(),
            kind: "compressor".to_string(),
            parameters: format!("ratio={:.2}", self.observed_ratio()),
        }
    }
}

impl Filter for DecompressorFilter {
    fn name(&self) -> &str {
        "decompressor(rle)"
    }

    fn process(&mut self, packet: Packet, out: &mut dyn FilterOutput) -> Result<(), FilterError> {
        if !packet.kind().is_payload() {
            out.emit(packet);
            return Ok(());
        }
        self.bytes_in += packet.payload_len() as u64;
        let payload = packet.payload();
        let restored = match payload.first() {
            Some(&MARKER_RAW) => payload[1..].to_vec(),
            Some(&MARKER_RLE) => rle_decode(&payload[1..])?,
            Some(other) => {
                return Err(FilterError::Internal(format!(
                    "unknown compression marker {other:#04x}"
                )))
            }
            None => Vec::new(),
        };
        self.bytes_out += restored.len() as u64;
        out.emit(packet.with_payload(restored));
        Ok(())
    }

    fn descriptor(&self) -> FilterDescriptor {
        FilterDescriptor {
            name: self.name().to_string(),
            kind: "decompressor".to_string(),
            parameters: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_packet::{PacketKind, SeqNo, StreamId};

    fn packet(payload: Vec<u8>) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Data, payload)
    }

    fn round_trip(payload: Vec<u8>) -> Vec<u8> {
        let mut compressor = CompressorFilter::new();
        let mut decompressor = DecompressorFilter::new();
        let mut mid: Vec<Packet> = Vec::new();
        compressor.process(packet(payload), &mut mid).unwrap();
        let mut out: Vec<Packet> = Vec::new();
        decompressor.process(mid.pop().unwrap(), &mut out).unwrap();
        out.pop().unwrap().payload().to_vec()
    }

    #[test]
    fn repetitive_payloads_shrink_and_round_trip() {
        let payload = vec![7u8; 1000];
        let mut compressor = CompressorFilter::new();
        let mut mid: Vec<Packet> = Vec::new();
        compressor.process(packet(payload.clone()), &mut mid).unwrap();
        assert!(mid[0].payload_len() < 20, "1000 identical bytes compress well");
        assert!(compressor.observed_ratio() > 50.0);
        assert_eq!(round_trip(payload.clone()), payload);
    }

    #[test]
    fn incompressible_payloads_fall_back_to_raw() {
        let payload: Vec<u8> = (0..255u8).collect();
        let mut compressor = CompressorFilter::new();
        let mut mid: Vec<Packet> = Vec::new();
        compressor.process(packet(payload.clone()), &mut mid).unwrap();
        assert_eq!(mid[0].payload()[0], MARKER_RAW);
        assert_eq!(mid[0].payload_len(), payload.len() + 1);
        assert_eq!(round_trip(payload.clone()), payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        assert_eq!(round_trip(Vec::new()), Vec::<u8>::new());
    }

    #[test]
    fn long_runs_split_at_255() {
        let payload = vec![9u8; 600];
        assert_eq!(round_trip(payload.clone()), payload);
        let encoded = rle_encode(&payload);
        assert_eq!(encoded.len(), 6); // 255+255+90 => three (count, byte) pairs
    }

    #[test]
    fn mixed_content_round_trips() {
        let payload: Vec<u8> = (0..2000u32)
            .map(|i| if i % 7 == 0 { 42 } else { (i % 5) as u8 })
            .collect();
        assert_eq!(round_trip(payload.clone()), payload);
    }

    #[test]
    fn corrupt_marker_is_an_error() {
        let mut decompressor = DecompressorFilter::new();
        let mut out: Vec<Packet> = Vec::new();
        let bad = packet(vec![0x77, 1, 2, 3]);
        assert!(decompressor.process(bad, &mut out).is_err());
    }

    #[test]
    fn corrupt_rle_body_is_an_error() {
        let mut decompressor = DecompressorFilter::new();
        let mut out: Vec<Packet> = Vec::new();
        // Odd-length body.
        assert!(decompressor
            .process(packet(vec![MARKER_RLE, 3, 1, 9]), &mut out)
            .is_err());
        // Zero-length run.
        assert!(decompressor
            .process(packet(vec![MARKER_RLE, 0, 1]), &mut out)
            .is_err());
    }

    #[test]
    fn parity_packets_are_not_touched() {
        let mut compressor = CompressorFilter::new();
        let parity = Packet::new(
            StreamId::new(1),
            SeqNo::new(0),
            PacketKind::Parity {
                block: rapidware_packet::BlockId::new(0),
                index: 4,
                k: 4,
                n: 6,
            },
            vec![1u8; 50],
        );
        let mut out: Vec<Packet> = Vec::new();
        compressor.process(parity.clone(), &mut out).unwrap();
        assert_eq!(out[0], parity);
    }
}
