//! Property-based equivalence tests for the slice-by-16 CRC-32 against the
//! classic byte-at-a-time reference.
//!
//! `crc32_update` folds sixteen bytes per step through sixteen derived
//! tables; `crc32_update_bytewise` is the textbook loop.  These tests pin
//! the wide path to the reference over arbitrary contents, lengths (seams
//! at every `len % 16`), split points, and non-initial starting states.

use proptest::prelude::*;
use rapidware_packet::{crc32, crc32_finish, crc32_init, crc32_update, crc32_update_bytewise};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wide path equals the byte-wise path on arbitrary input.
    #[test]
    fn slice_by_16_matches_bytewise(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(
            crc32_update(crc32_init(), &data),
            crc32_update_bytewise(crc32_init(), &data)
        );
    }

    /// Equality also holds from an arbitrary (mid-stream) starting state,
    /// not just the init value — the form the incremental packet codec
    /// actually uses.
    #[test]
    fn equivalence_from_any_starting_state(
        state in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assert_eq!(
            crc32_update(state, &data),
            crc32_update_bytewise(state, &data)
        );
    }

    /// Splitting the input at any point and feeding both halves through the
    /// wide path agrees with the one-shot checksum.
    #[test]
    fn incremental_splits_agree_with_one_shot(
        data in proptest::collection::vec(any::<u8>(), 0..150),
        split_seed in any::<usize>(),
    ) {
        let split = if data.is_empty() { 0 } else { split_seed % (data.len() + 1) };
        let state = crc32_update(crc32_init(), &data[..split]);
        let state = crc32_update(state, &data[split..]);
        prop_assert_eq!(crc32_finish(state), crc32(&data));
    }
}
