//! Hostile-input hardening for [`Packet::decode`].
//!
//! The wire decoder is the first code that touches bytes arriving from a
//! real network (the UDP transport feeds every received datagram straight
//! into it), so it must never panic and must never hand back a packet that
//! did not pass the integrity checks:
//!
//! * arbitrary byte slices — any length, any contents — decode without
//!   panicking;
//! * every strict prefix of a valid frame is rejected as truncated, never
//!   misread as a shorter packet;
//! * any single corrupted byte in a valid frame is detected (the CRC covers
//!   the whole frame, including the length and kind fields, so a corrupted
//!   frame can only surface as a [`DecodeError`], never as a garbage
//!   packet);
//! * a forged length field above [`MAX_PAYLOAD_LEN`] is rejected before any
//!   payload is read (the datagram-reassembly guard).

use proptest::prelude::*;
use rapidware_packet::{
    DecodeError, FrameType, Packet, PacketKind, SeqNo, StreamId, HEADER_LEN, MAX_PAYLOAD_LEN,
};

/// A strategy covering every packet kind, including both aux-byte layouts.
fn kind_strategy() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::AudioData),
        Just(PacketKind::Data),
        Just(PacketKind::Control),
        (0u8..3, any::<bool>()).prop_map(|(frame, boundary)| PacketKind::VideoFrame {
            frame: match frame {
                0 => FrameType::I,
                1 => FrameType::P,
                _ => FrameType::B,
            },
            boundary,
        }),
        (any::<u64>(), 0u8..=255, 1u8..16, 1u8..16).prop_map(|(block, index, k, extra)| {
            PacketKind::Parity {
                block: rapidware_packet::BlockId::new(block),
                index,
                k,
                n: k.saturating_add(extra),
            }
        }),
    ]
}

/// A strategy producing a valid packet with an arbitrary header and payload.
fn packet_strategy() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u64>(),
        kind_strategy(),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..96)),
    )
        .prop_map(|(stream, seq, kind, (timestamp, payload))| {
            Packet::with_timestamp(
                StreamId::new(stream),
                SeqNo::new(seq),
                kind,
                timestamp,
                payload,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte slices never panic the decoder; whatever it returns
    /// is either a structurally valid packet or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(packet) = Packet::decode(&bytes) {
            // Anything accepted must satisfy the decoder's own contract:
            // the frame it re-encodes to round-trips to an equal packet.
            let reencoded = packet.encode();
            prop_assert_eq!(Packet::decode(&reencoded).unwrap(), packet);
        }
    }

    /// Every strict prefix of a valid frame is rejected (never misdecoded).
    #[test]
    fn truncated_frames_are_rejected(packet in packet_strategy(), cut in any::<u64>()) {
        let wire = packet.encode();
        let cut = (cut as usize) % wire.len().max(1);
        prop_assert!(
            Packet::decode(&wire[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte frame decoded successfully",
            wire.len()
        );
    }

    /// Any single corrupted byte is caught by the frame CRC (or an earlier
    /// structural check) — corruption can never produce a garbage packet.
    #[test]
    fn corrupted_frames_are_rejected(
        packet in packet_strategy(),
        position in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let mut wire = packet.encode().to_vec();
        let position = (position as usize) % wire.len();
        wire[position] ^= mask;
        prop_assert!(
            Packet::decode(&wire).is_err(),
            "flipping byte {position} with mask {mask:#04x} went undetected"
        );
    }
}

#[test]
fn oversized_declared_length_is_rejected_before_the_payload_is_read() {
    // Forge a header whose length field points at a multi-gigabyte payload.
    // The guard must fire on the declared length alone: the frame carries
    // no payload at all, and no CRC is ever computed.
    let packet = Packet::new(StreamId::new(1), SeqNo::new(1), PacketKind::Data, vec![0u8; 4]);
    let mut wire = packet.encode().to_vec();
    let declared = (MAX_PAYLOAD_LEN + 1) as u32;
    wire[HEADER_LEN - 8..HEADER_LEN - 4].copy_from_slice(&declared.to_be_bytes());
    assert_eq!(
        Packet::decode(&wire).unwrap_err(),
        DecodeError::FrameTooLarge {
            declared: declared as usize
        }
    );

    // At exactly the cap the guard stays out of the way (the frame is then
    // rejected by the ordinary length check, since no payload follows).
    wire[HEADER_LEN - 8..HEADER_LEN - 4]
        .copy_from_slice(&(MAX_PAYLOAD_LEN as u32).to_be_bytes());
    assert_eq!(Packet::decode(&wire).unwrap_err(), DecodeError::BadLength);
}
