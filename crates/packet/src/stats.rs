//! Receipt and reconstruction accounting.
//!
//! Figure 7 of the paper plots, for every window of 432 packets, the
//! percentage of packets *received* over the wireless link and the
//! percentage *reconstructed* after FEC decoding.  [`ReceiptStats`] performs
//! exactly that bookkeeping: the experiment harness feeds it one
//! [`LossEvent`] per source packet and reads back per-window and aggregate
//! percentages.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::SeqNo;

/// The fate of one source packet at a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossEvent {
    /// The packet arrived over the network.
    Received,
    /// The packet was lost on the network but recovered by FEC decoding.
    Reconstructed,
    /// The packet was lost and could not be recovered.
    Lost,
}

/// Aggregated statistics for one window of consecutive source packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Sequence number of the first packet in the window.
    pub start_seq: u64,
    /// Number of packets accounted for in this window.
    pub total: u64,
    /// Packets that arrived over the network.
    pub received: u64,
    /// Packets recovered by FEC (in addition to those received).
    pub reconstructed: u64,
}

impl WindowStats {
    /// Percentage of packets received over the network (0–100).
    pub fn received_pct(&self) -> f64 {
        percentage(self.received, self.total)
    }

    /// Percentage of packets available after FEC reconstruction (0–100).
    pub fn reconstructed_pct(&self) -> f64 {
        percentage(self.received + self.reconstructed, self.total)
    }
}

impl fmt::Display for WindowStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq {:>6}: received {:6.2}%  reconstructed {:6.2}%",
            self.start_seq,
            self.received_pct(),
            self.reconstructed_pct()
        )
    }
}

/// Accumulates per-packet outcomes into fixed-size windows, mirroring the
/// x-axis of the paper's Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReceiptStats {
    window_size: u64,
    windows: Vec<WindowStats>,
    total: u64,
    received: u64,
    reconstructed: u64,
}

impl ReceiptStats {
    /// Creates an accumulator with the given window size (in packets).
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero.
    pub fn new(window_size: u64) -> Self {
        assert!(window_size > 0, "window size must be non-zero");
        Self {
            window_size,
            windows: Vec::new(),
            total: 0,
            received: 0,
            reconstructed: 0,
        }
    }

    /// Window size in packets.
    pub fn window_size(&self) -> u64 {
        self.window_size
    }

    /// Records the outcome of the source packet with sequence number `seq`.
    pub fn record(&mut self, seq: SeqNo, event: LossEvent) {
        let window_index = (seq.value() / self.window_size) as usize;
        if self.windows.len() <= window_index {
            self.windows.resize_with(window_index + 1, WindowStats::default);
            for (i, window) in self.windows.iter_mut().enumerate() {
                if window.total == 0 && window.start_seq == 0 {
                    window.start_seq = i as u64 * self.window_size;
                }
            }
        }
        let window = &mut self.windows[window_index];
        window.start_seq = window_index as u64 * self.window_size;
        window.total += 1;
        self.total += 1;
        match event {
            LossEvent::Received => {
                window.received += 1;
                self.received += 1;
            }
            LossEvent::Reconstructed => {
                window.reconstructed += 1;
                self.reconstructed += 1;
            }
            LossEvent::Lost => {}
        }
    }

    /// Per-window statistics, in sequence order.
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Total number of packets recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Overall percentage of packets received over the network.
    pub fn received_pct(&self) -> f64 {
        percentage(self.received, self.total)
    }

    /// Overall percentage of packets available after FEC reconstruction.
    pub fn reconstructed_pct(&self) -> f64 {
        percentage(self.received + self.reconstructed, self.total)
    }

    /// Number of packets that were neither received nor reconstructed.
    pub fn unrecovered(&self) -> u64 {
        self.total - self.received - self.reconstructed
    }
}

fn percentage(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reception_is_100_percent() {
        let mut stats = ReceiptStats::new(10);
        for seq in 0..30u64 {
            stats.record(SeqNo::new(seq), LossEvent::Received);
        }
        assert_eq!(stats.total(), 30);
        assert!((stats.received_pct() - 100.0).abs() < f64::EPSILON);
        assert!((stats.reconstructed_pct() - 100.0).abs() < f64::EPSILON);
        assert_eq!(stats.windows().len(), 3);
    }

    #[test]
    fn fec_recovery_raises_reconstructed_above_received() {
        let mut stats = ReceiptStats::new(100);
        for seq in 0..100u64 {
            let event = if seq % 10 == 0 {
                LossEvent::Reconstructed
            } else {
                LossEvent::Received
            };
            stats.record(SeqNo::new(seq), event);
        }
        assert!((stats.received_pct() - 90.0).abs() < 1e-9);
        assert!((stats.reconstructed_pct() - 100.0).abs() < 1e-9);
        assert_eq!(stats.unrecovered(), 0);
    }

    #[test]
    fn unrecovered_losses_are_counted() {
        let mut stats = ReceiptStats::new(4);
        stats.record(SeqNo::new(0), LossEvent::Received);
        stats.record(SeqNo::new(1), LossEvent::Lost);
        stats.record(SeqNo::new(2), LossEvent::Lost);
        stats.record(SeqNo::new(3), LossEvent::Reconstructed);
        assert_eq!(stats.unrecovered(), 2);
        assert!((stats.received_pct() - 25.0).abs() < 1e-9);
        assert!((stats.reconstructed_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn windows_follow_sequence_numbers() {
        let mut stats = ReceiptStats::new(432);
        stats.record(SeqNo::new(0), LossEvent::Received);
        stats.record(SeqNo::new(431), LossEvent::Received);
        stats.record(SeqNo::new(432), LossEvent::Lost);
        stats.record(SeqNo::new(900), LossEvent::Received);
        let windows = stats.windows();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].start_seq, 0);
        assert_eq!(windows[0].total, 2);
        assert_eq!(windows[1].start_seq, 432);
        assert!((windows[1].received_pct() - 0.0).abs() < 1e-9);
        assert_eq!(windows[2].start_seq, 864);
    }

    #[test]
    fn window_display_mentions_both_percentages() {
        let window = WindowStats {
            start_seq: 0,
            total: 4,
            received: 3,
            reconstructed: 1,
        };
        let text = window.to_string();
        assert!(text.contains("received"));
        assert!(text.contains("reconstructed"));
    }

    #[test]
    fn empty_stats_report_zero() {
        let stats = ReceiptStats::new(10);
        assert_eq!(stats.received_pct(), 0.0);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    #[should_panic(expected = "window size must be non-zero")]
    fn zero_window_panics() {
        let _ = ReceiptStats::new(0);
    }
}
