//! A reordering / jitter buffer for received packets.
//!
//! In the paper's FEC audio proxy (Figure 6), a `PacketBuffer` sits between
//! each receiver object and the component that consumes packets (the FEC
//! encoder on the uplink path, the wireless sender on the downlink path).
//! This module provides that component: packets may arrive out of order,
//! duplicated, or late, and the buffer re-emits them in sequence order,
//! tracking what it had to drop.

use std::collections::BTreeMap;

use crate::id::SeqNo;
use crate::packet::Packet;

/// Outcome of [`PacketBuffer::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferPush {
    /// The packet was stored and will be released in order.
    Stored,
    /// A packet with the same sequence number is already buffered or was
    /// already released; the duplicate was discarded.
    Duplicate,
    /// The packet's sequence number is older than anything the buffer is
    /// still willing to release (it already moved past it); discarded.
    TooLate,
    /// The buffer was full; the packet was discarded.
    Overflow,
}

/// A bounded reordering buffer keyed by sequence number.
///
/// `PacketBuffer` releases packets in strictly increasing sequence order.
/// When the buffer fills past `capacity` it gives up on the oldest missing
/// sequence number and skips ahead, which is the behaviour a live audio
/// stream wants (waiting forever for a lost packet would stall playout).
#[derive(Debug)]
pub struct PacketBuffer {
    pending: BTreeMap<u64, Packet>,
    next_seq: u64,
    capacity: usize,
    duplicates: u64,
    too_late: u64,
    overflows: u64,
    skipped: u64,
    released: u64,
}

impl PacketBuffer {
    /// Creates a buffer that holds at most `capacity` out-of-order packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "packet buffer capacity must be non-zero");
        Self {
            pending: BTreeMap::new(),
            next_seq: 0,
            capacity,
            duplicates: 0,
            too_late: 0,
            overflows: 0,
            skipped: 0,
            released: 0,
        }
    }

    /// Creates a buffer that starts expecting `first` as the next in-order
    /// sequence number.
    pub fn starting_at(capacity: usize, first: SeqNo) -> Self {
        let mut buffer = Self::new(capacity);
        buffer.next_seq = first.value();
        buffer
    }

    /// Offers a packet to the buffer.
    pub fn push(&mut self, packet: Packet) -> BufferPush {
        let seq = packet.seq().value();
        if seq < self.next_seq {
            self.too_late += 1;
            return BufferPush::TooLate;
        }
        if self.pending.contains_key(&seq) {
            self.duplicates += 1;
            return BufferPush::Duplicate;
        }
        if self.pending.len() >= self.capacity {
            // Give up on the oldest gap: advance next_seq to the first
            // buffered packet so progress can resume.
            if let Some((&oldest, _)) = self.pending.iter().next() {
                if seq > oldest {
                    self.skipped += oldest.saturating_sub(self.next_seq);
                    self.next_seq = oldest;
                } else {
                    self.overflows += 1;
                    return BufferPush::Overflow;
                }
            }
        }
        self.pending.insert(seq, packet);
        BufferPush::Stored
    }

    /// Removes and returns the next in-order packet, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<Packet> {
        if let Some(packet) = self.pending.remove(&self.next_seq) {
            self.next_seq += 1;
            self.released += 1;
            return Some(packet);
        }
        None
    }

    /// Removes and returns every packet that is ready, in order.
    pub fn drain_ready(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some(packet) = self.pop_ready() {
            out.push(packet);
        }
        out
    }

    /// Abandons the current gap: skips ahead to the oldest buffered packet
    /// so that [`pop_ready`](Self::pop_ready) can make progress even though
    /// one or more packets were lost.  Returns how many sequence numbers
    /// were skipped.
    pub fn skip_gap(&mut self) -> u64 {
        if self.pending.contains_key(&self.next_seq) {
            // The next packet is present: there is no gap to skip.
            return 0;
        }
        match self.pending.keys().next() {
            Some(&oldest) if oldest > self.next_seq => {
                let skipped = oldest - self.next_seq;
                self.skipped += skipped;
                self.next_seq = oldest;
                skipped
            }
            _ => 0,
        }
    }

    /// Sequence number the buffer is waiting for.
    pub fn next_expected(&self) -> SeqNo {
        SeqNo::new(self.next_seq)
    }

    /// Number of packets currently held out of order.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of duplicate packets discarded so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Number of packets that arrived after the buffer had moved past them.
    pub fn too_late(&self) -> u64 {
        self.too_late
    }

    /// Number of packets dropped because the buffer was full.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Number of sequence numbers abandoned as lost.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Number of packets released in order so far.
    pub fn released(&self) -> u64 {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::StreamId;
    use crate::kind::PacketKind;

    fn packet(seq: u64) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![seq as u8])
    }

    #[test]
    fn releases_in_order_despite_reordered_arrival() {
        let mut buffer = PacketBuffer::new(16);
        for seq in [2u64, 0, 1, 4, 3] {
            assert_eq!(buffer.push(packet(seq)), BufferPush::Stored);
        }
        let released: Vec<u64> = buffer.drain_ready().iter().map(|p| p.seq().value()).collect();
        assert_eq!(released, vec![0, 1, 2, 3, 4]);
        assert_eq!(buffer.released(), 5);
    }

    #[test]
    fn duplicate_packets_are_discarded() {
        let mut buffer = PacketBuffer::new(8);
        assert_eq!(buffer.push(packet(0)), BufferPush::Stored);
        assert_eq!(buffer.push(packet(0)), BufferPush::Duplicate);
        assert_eq!(buffer.duplicates(), 1);
        assert_eq!(buffer.drain_ready().len(), 1);
    }

    #[test]
    fn late_packets_are_rejected_after_release() {
        let mut buffer = PacketBuffer::new(8);
        buffer.push(packet(0));
        buffer.push(packet(1));
        buffer.drain_ready();
        assert_eq!(buffer.push(packet(0)), BufferPush::TooLate);
        assert_eq!(buffer.too_late(), 1);
    }

    #[test]
    fn gap_blocks_until_skipped() {
        let mut buffer = PacketBuffer::new(8);
        buffer.push(packet(1)); // 0 missing
        buffer.push(packet(2));
        assert!(buffer.pop_ready().is_none());
        assert_eq!(buffer.skip_gap(), 1);
        let released: Vec<u64> = buffer.drain_ready().iter().map(|p| p.seq().value()).collect();
        assert_eq!(released, vec![1, 2]);
        assert_eq!(buffer.skipped(), 1);
    }

    #[test]
    fn overflow_advances_past_old_gap() {
        let mut buffer = PacketBuffer::new(4);
        // Sequence 0 never arrives; 1..=4 fill the buffer.
        for seq in 1..=4u64 {
            assert_eq!(buffer.push(packet(seq)), BufferPush::Stored);
        }
        // Pushing 5 forces the buffer to give up on 0.
        assert_eq!(buffer.push(packet(5)), BufferPush::Stored);
        assert_eq!(buffer.skipped(), 1);
        let released: Vec<u64> = buffer.drain_ready().iter().map(|p| p.seq().value()).collect();
        assert_eq!(released, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn overflow_rejects_packet_older_than_everything_buffered() {
        let mut buffer = PacketBuffer::starting_at(2, SeqNo::new(0));
        buffer.push(packet(5));
        buffer.push(packet(6));
        // Buffer full; 4 is older than the oldest buffered packet, so it is
        // the one that gets rejected.
        assert_eq!(buffer.push(packet(4)), BufferPush::Overflow);
        assert_eq!(buffer.overflows(), 1);
    }

    #[test]
    fn starting_at_skips_earlier_sequences() {
        let mut buffer = PacketBuffer::starting_at(8, SeqNo::new(100));
        assert_eq!(buffer.push(packet(99)), BufferPush::TooLate);
        assert_eq!(buffer.push(packet(100)), BufferPush::Stored);
        assert_eq!(buffer.pop_ready().unwrap().seq().value(), 100);
        assert_eq!(buffer.next_expected(), SeqNo::new(101));
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = PacketBuffer::new(0);
    }
}
