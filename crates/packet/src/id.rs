//! Newtype identifiers used throughout the framework.
//!
//! Sequence numbers, stream identifiers, and FEC block identifiers are all
//! plain integers on the wire, but confusing one for another is a classic
//! source of bugs in proxy code, so each gets its own newtype
//! (per the C-NEWTYPE guideline).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A monotonically increasing per-stream packet sequence number.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SeqNo(u64);

impl SeqNo {
    /// The first sequence number of a stream.
    pub const ZERO: SeqNo = SeqNo(0);

    /// Creates a sequence number from its raw value.
    pub fn new(value: u64) -> Self {
        SeqNo(value)
    }

    /// Raw integer value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The next sequence number.
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.wrapping_add(1))
    }

    /// Returns `self` advanced by `n`.
    #[must_use]
    pub fn advance(self, n: u64) -> SeqNo {
        SeqNo(self.0.wrapping_add(n))
    }

    /// Number of sequence numbers between `earlier` and `self`
    /// (`self - earlier`), saturating at zero if `earlier` is ahead.
    pub fn distance_from(self, earlier: SeqNo) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for SeqNo {
    fn from(value: u64) -> Self {
        SeqNo(value)
    }
}

impl From<SeqNo> for u64 {
    fn from(seq: SeqNo) -> u64 {
        seq.0
    }
}

/// Identifies one logical data stream handled by a proxy (a proxy may carry
/// several streams, each with its own filter chain).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct StreamId(u32);

impl StreamId {
    /// Creates a stream identifier from its raw value.
    pub fn new(value: u32) -> Self {
        StreamId(value)
    }

    /// Raw integer value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

impl From<u32> for StreamId {
    fn from(value: u32) -> Self {
        StreamId(value)
    }
}

/// Identifies one FEC block: a group of `k` consecutive source packets plus
/// the `n - k` parity packets computed over them.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BlockId(u64);

impl BlockId {
    /// Creates a block identifier from its raw value.
    pub fn new(value: u64) -> Self {
        BlockId(value)
    }

    /// Raw integer value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The next block identifier.
    #[must_use]
    pub fn next(self) -> BlockId {
        BlockId(self.0.wrapping_add(1))
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block-{}", self.0)
    }
}

impl From<u64> for BlockId {
    fn from(value: u64) -> Self {
        BlockId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_ordering_and_arithmetic() {
        let a = SeqNo::new(10);
        assert!(a < a.next());
        assert_eq!(a.next().value(), 11);
        assert_eq!(a.advance(5).value(), 15);
        assert_eq!(a.advance(5).distance_from(a), 5);
        assert_eq!(a.distance_from(a.advance(5)), 0);
    }

    #[test]
    fn seqno_conversions() {
        let s: SeqNo = 7u64.into();
        let v: u64 = s.into();
        assert_eq!(v, 7);
        assert_eq!(SeqNo::ZERO.value(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SeqNo::new(3).to_string(), "#3");
        assert_eq!(StreamId::new(2).to_string(), "stream-2");
        assert_eq!(BlockId::new(9).to_string(), "block-9");
    }

    #[test]
    fn block_id_next() {
        assert_eq!(BlockId::new(1).next(), BlockId::new(2));
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; the test documents the intent.
        fn takes_seq(_: SeqNo) {}
        takes_seq(SeqNo::new(1));
    }
}
