//! The [`Packet`] type and its wire encoding.

use std::fmt;

use bytes::{Buf, BufMut, Bytes};

use crate::crc::{crc32_finish, crc32_init, crc32_update};
use crate::id::{BlockId, SeqNo, StreamId};
use crate::kind::{FrameType, PacketKind};

/// Length, in bytes, of the fixed packet header on the wire.
///
/// Layout (big-endian):
///
/// | offset | size | field |
/// |---|---|---|
/// | 0 | 4 | stream id |
/// | 4 | 8 | sequence number |
/// | 12 | 8 | timestamp (µs since stream start) |
/// | 20 | 1 | kind tag |
/// | 21 | 1 | frame type / parity index |
/// | 22 | 1 | flags (bit 0: frame boundary) / parity k |
/// | 23 | 1 | reserved / parity n |
/// | 24 | 8 | parity block id |
/// | 32 | 4 | payload length |
/// | 36 | 4 | CRC-32 of header-so-far + payload |
pub const HEADER_LEN: usize = 40;

/// Maximum payload length [`Packet::decode`] accepts.
///
/// Frames arriving from a network (datagram reassembly, a corrupted or
/// hostile peer) carry an attacker-controlled length field; without a cap, a
/// forged header could declare a multi-gigabyte payload and drive a
/// reassembly buffer to reserve it before any integrity check runs.  The cap
/// is far above every real workload in this system (media payloads are a few
/// kilobytes, UDP datagrams top out at 65,507 bytes) while keeping the worst
/// case allocation bounded.  [`DecodeError::FrameTooLarge`] reports
/// violations before any payload is touched.
pub const MAX_PAYLOAD_LEN: usize = 1 << 20;

/// Fixed metadata carried by every packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHeader {
    /// Stream this packet belongs to.
    pub stream: StreamId,
    /// Per-stream sequence number.
    pub seq: SeqNo,
    /// Microseconds since the start of the stream (media timestamp).
    pub timestamp_us: u64,
    /// What the packet carries.
    pub kind: PacketKind,
}

/// A unit of data flowing through a proxy filter chain.
///
/// Packets are cheap to clone: the payload is a reference-counted [`Bytes`]
/// buffer, so a multicast fan-out to many receivers does not copy the data.
///
/// Alongside the wire fields, a packet carries one piece of **non-wire
/// telemetry metadata**: the ingress stamp ([`Packet::ingress_ns`]), the
/// span-clock instant at which the packet first entered the local proxy.
/// It is never encoded, never checksummed, never compared — equality,
/// hashing, and the encode/decode round trip all ignore it — so latency
/// instrumentation cannot perturb the data plane's observable behaviour.
#[derive(Clone)]
pub struct Packet {
    header: PacketHeader,
    payload: Bytes,
    /// Span-clock nanoseconds at local ingress; 0 = never stamped.
    ingress_ns: u64,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        // The ingress stamp is observability metadata, not packet content:
        // a stamped packet and its unstamped twin are the same packet.
        self.header == other.header && self.payload == other.payload
    }
}

impl Eq for Packet {}

/// Error returned by [`Packet::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeError {
    /// The input is shorter than the fixed header.
    Truncated,
    /// The payload length field points past the end of the input.
    BadLength,
    /// The payload length field exceeds [`MAX_PAYLOAD_LEN`]; the frame is
    /// rejected before any payload is read (the datagram-reassembly guard).
    FrameTooLarge {
        /// Payload length the header declared.
        declared: usize,
    },
    /// The kind tag is not one of the known packet kinds.
    UnknownKind(u8),
    /// The frame-type byte of a video packet is invalid.
    UnknownFrameType(u8),
    /// The CRC-32 does not match the header and payload contents.
    BadChecksum {
        /// CRC carried by the packet.
        expected: u32,
        /// CRC computed over the received bytes.
        actual: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "packet shorter than header"),
            DecodeError::BadLength => write!(f, "payload length exceeds packet size"),
            DecodeError::FrameTooLarge { declared } => {
                write!(f, "declared payload length {declared} exceeds the {MAX_PAYLOAD_LEN}-byte frame cap")
            }
            DecodeError::UnknownKind(tag) => write!(f, "unknown packet kind tag {tag}"),
            DecodeError::UnknownFrameType(v) => write!(f, "unknown frame type byte {v}"),
            DecodeError::BadChecksum { expected, actual } => {
                write!(f, "checksum mismatch (expected {expected:#010x}, got {actual:#010x})")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("stream", &self.header.stream)
            .field("seq", &self.header.seq)
            .field("kind", &self.header.kind)
            .field("timestamp_us", &self.header.timestamp_us)
            .field("payload_len", &self.payload.len())
            .finish()
    }
}

impl Packet {
    /// Creates a packet with a zero timestamp.
    pub fn new(
        stream: StreamId,
        seq: SeqNo,
        kind: PacketKind,
        payload: impl Into<Bytes>,
    ) -> Self {
        Self::with_timestamp(stream, seq, kind, 0, payload)
    }

    /// Creates a packet with an explicit media timestamp (µs).
    pub fn with_timestamp(
        stream: StreamId,
        seq: SeqNo,
        kind: PacketKind,
        timestamp_us: u64,
        payload: impl Into<Bytes>,
    ) -> Self {
        Self {
            header: PacketHeader {
                stream,
                seq,
                timestamp_us,
                kind,
            },
            payload: payload.into(),
            ingress_ns: 0,
        }
    }

    /// Creates a packet from an existing header and payload.
    pub fn from_parts(header: PacketHeader, payload: impl Into<Bytes>) -> Self {
        Self {
            header,
            payload: payload.into(),
            ingress_ns: 0,
        }
    }

    /// The local ingress stamp: span-clock nanoseconds at which this packet
    /// entered the proxy, or 0 if it was never stamped.  Not a wire field —
    /// see [`stamp_ingress_ns`](Self::stamp_ingress_ns).
    pub fn ingress_ns(&self) -> u64 {
        self.ingress_ns
    }

    /// Stamps the ingress instant if the packet is not already stamped
    /// (first touch wins, so a packet crossing several instrumented stages
    /// keeps its true arrival time).  The stamp survives clones,
    /// [`with_seq`](Self::with_seq), [`with_payload`](Self::with_payload),
    /// and payload edits, but not the encode/decode round trip — a decoded
    /// packet is a fresh arrival and starts unstamped.
    pub fn stamp_ingress_ns(&mut self, now_ns: u64) {
        if self.ingress_ns == 0 {
            self.ingress_ns = now_ns;
        }
    }

    /// The packet header.
    pub fn header(&self) -> &PacketHeader {
        &self.header
    }

    /// Stream identifier.
    pub fn stream(&self) -> StreamId {
        self.header.stream
    }

    /// Sequence number.
    pub fn seq(&self) -> SeqNo {
        self.header.seq
    }

    /// Media timestamp in microseconds.
    pub fn timestamp_us(&self) -> u64 {
        self.header.timestamp_us
    }

    /// Packet kind.
    pub fn kind(&self) -> PacketKind {
        self.header.kind
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Shared handle to the payload (no copy).
    pub fn payload_bytes(&self) -> Bytes {
        self.payload.clone()
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Replaces the payload via an arbitrary (possibly length-changing)
    /// edit, with copy-on-write semantics.
    ///
    /// [`payload_mut`](Self::payload_mut) hands out a fixed-length slice, so
    /// filters that grow or shrink the payload — an AEAD seal appending its
    /// 16-byte tag, a verifier stripping it — cannot use it.  This method
    /// copies the payload into a scratch `Vec`, applies `edit`, and installs
    /// the result as a fresh private buffer.  Sibling packets sharing the old
    /// buffer (a multicast fan-out) are never affected: the old allocation is
    /// released, not written through.
    ///
    /// ```
    /// use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
    ///
    /// let original = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Data, vec![1, 2, 3]);
    /// let mut sealed = original.clone(); // shares the payload buffer
    /// sealed.payload_edit(|buf| buf.extend_from_slice(&[0xAA; 16]));
    /// assert_eq!(original.payload(), &[1, 2, 3], "sibling unaffected");
    /// assert_eq!(sealed.payload_len(), 19);
    /// ```
    pub fn payload_edit(&mut self, edit: impl FnOnce(&mut Vec<u8>)) {
        // One AEAD tag of slack, so the common grow-by-tag edit appends
        // without a second allocation-and-copy of the whole payload.
        let mut buf = Vec::with_capacity(self.payload.len() + 16);
        buf.extend_from_slice(&self.payload);
        edit(&mut buf);
        self.payload = Bytes::from(buf);
    }

    /// The header bytes covered as associated data by an AEAD seal: the
    /// first 32 bytes of the wire header (stream id, sequence number,
    /// timestamp, kind tag, aux bytes, parity block id), excluding the
    /// payload-length and CRC fields, which legitimately change when a
    /// filter rewrites the payload.
    ///
    /// Binding these bytes into the tag means a forged header — even one
    /// with a dutifully recomputed CRC — fails authentication.
    pub fn aad_bytes(&self) -> [u8; 32] {
        let mut aad = [0u8; 32];
        aad[0..4].copy_from_slice(&self.header.stream.value().to_be_bytes());
        aad[4..12].copy_from_slice(&self.header.seq.value().to_be_bytes());
        aad[12..20].copy_from_slice(&self.header.timestamp_us.to_be_bytes());
        aad[20] = self.header.kind.tag();
        let (aux0, aux1, aux2, block) = self.aux_fields();
        aad[21] = aux0;
        aad[22] = aux1;
        aad[23] = aux2;
        aad[24..32].copy_from_slice(&block.to_be_bytes());
        aad
    }

    /// The kind-dependent aux bytes and block id as they appear on the wire.
    fn aux_fields(&self) -> (u8, u8, u8, u64) {
        match self.header.kind {
            PacketKind::VideoFrame { frame, boundary } => {
                let frame_byte = match frame {
                    FrameType::I => 0u8,
                    FrameType::P => 1,
                    FrameType::B => 2,
                };
                (frame_byte, u8::from(boundary), 0u8, 0u64)
            }
            PacketKind::Parity { block, index, k, n } => (index, k, n, block.value()),
            _ => (0, 0, 0, 0),
        }
    }

    /// Mutable access to the payload with copy-on-write semantics.
    ///
    /// Packets cloned for a multicast fan-out share one `Arc`-backed payload
    /// buffer; a filter that rewrites payload bytes on one receiver lane
    /// calls this to get a private copy *only if* the buffer is shared.  A
    /// packet that owns its payload exclusively is mutated in place with no
    /// allocation, so per-lane transformations stay cheap on the common
    /// single-consumer path.
    ///
    /// ```
    /// use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
    ///
    /// let original = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Data, vec![1, 2, 3]);
    /// let mut lane_copy = original.clone(); // shares the payload buffer
    /// lane_copy.payload_mut()[0] = 99;      // copy-on-write: original untouched
    /// assert_eq!(original.payload(), &[1, 2, 3]);
    /// assert_eq!(lane_copy.payload(), &[99, 2, 3]);
    /// ```
    pub fn payload_mut(&mut self) -> &mut [u8] {
        self.payload.make_mut()
    }

    /// Returns `true` if this packet and `other` share the same backing
    /// payload allocation (the zero-copy fan-out case).  Empty payloads
    /// compare by allocation too, so this is a physical-sharing test, not a
    /// content comparison.
    pub fn shares_payload_with(&self, other: &Packet) -> bool {
        std::ptr::eq(self.payload.as_ptr(), other.payload.as_ptr())
            && self.payload.len() == other.payload.len()
    }

    /// Total size on the wire: header plus payload.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Returns `true` if a filter may be spliced in immediately before this
    /// packet (see [`PacketKind::is_insertion_boundary`]).
    pub fn is_insertion_boundary(&self) -> bool {
        self.header.kind.is_insertion_boundary()
    }

    /// Returns a copy of this packet with a different sequence number.
    #[must_use]
    pub fn with_seq(&self, seq: SeqNo) -> Packet {
        let mut header = self.header;
        header.seq = seq;
        Packet {
            header,
            payload: self.payload.clone(),
            ingress_ns: self.ingress_ns,
        }
    }

    /// Returns a copy of this packet with a different payload (header
    /// unchanged); used by transcoders that rewrite packet contents.
    #[must_use]
    pub fn with_payload(&self, payload: impl Into<Bytes>) -> Packet {
        Packet {
            header: self.header,
            payload: payload.into(),
            ingress_ns: self.ingress_ns,
        }
    }

    /// Encodes the packet into its wire representation.
    pub fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        Bytes::from(buf)
    }

    /// Encodes the packet into a caller-owned buffer, replacing its
    /// contents.
    ///
    /// This is the batch-friendly encode path: a hot loop that serialises
    /// packet after packet (the FEC encoder framing each source packet, the
    /// decoder rebuilding shards) can reuse one scratch buffer instead of
    /// allocating per packet.  The checksum is computed incrementally over
    /// header and payload, so no concatenation scratch is needed either.
    ///
    /// ```
    /// use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
    ///
    /// let mut scratch = Vec::new();
    /// for seq in 0..4u64 {
    ///     let packet =
    ///         Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![7; 64]);
    ///     packet.encode_into(&mut scratch);
    ///     assert_eq!(Packet::decode(&scratch).unwrap(), packet);
    /// }
    /// ```
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(self.wire_len());
        buf.put_u32(self.header.stream.value());
        buf.put_u64(self.header.seq.value());
        buf.put_u64(self.header.timestamp_us);
        buf.put_u8(self.header.kind.tag());
        let (aux0, aux1, aux2, block) = self.aux_fields();
        buf.put_u8(aux0);
        buf.put_u8(aux1);
        buf.put_u8(aux2);
        buf.put_u64(block);
        buf.put_u32(self.payload.len() as u32);
        let crc = {
            let state = crc32_update(crc32_init(), buf);
            crc32_finish(crc32_update(state, &self.payload))
        };
        buf.put_u32(crc);
        buf.extend_from_slice(&self.payload);
    }

    /// Decodes a packet from its wire representation.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the input is truncated, carries an
    /// unknown kind or frame type, or fails the CRC check.
    pub fn decode(wire: &[u8]) -> Result<Packet, DecodeError> {
        if wire.len() < HEADER_LEN {
            return Err(DecodeError::Truncated);
        }
        let mut cursor = wire;
        let stream = StreamId::new(cursor.get_u32());
        let seq = SeqNo::new(cursor.get_u64());
        let timestamp_us = cursor.get_u64();
        let tag = cursor.get_u8();
        let aux0 = cursor.get_u8();
        let aux1 = cursor.get_u8();
        let aux2 = cursor.get_u8();
        let block = cursor.get_u64();
        let payload_len = cursor.get_u32() as usize;
        let carried_crc = cursor.get_u32();
        if payload_len > MAX_PAYLOAD_LEN {
            return Err(DecodeError::FrameTooLarge {
                declared: payload_len,
            });
        }
        if wire.len() < HEADER_LEN + payload_len {
            return Err(DecodeError::BadLength);
        }
        let payload = &wire[HEADER_LEN..HEADER_LEN + payload_len];
        let computed = {
            let state = crc32_update(crc32_init(), &wire[..HEADER_LEN - 4]);
            crc32_finish(crc32_update(state, payload))
        };
        if computed != carried_crc {
            return Err(DecodeError::BadChecksum {
                expected: carried_crc,
                actual: computed,
            });
        }
        let kind = match tag {
            0 => PacketKind::AudioData,
            1 => {
                let frame = match aux0 {
                    0 => FrameType::I,
                    1 => FrameType::P,
                    2 => FrameType::B,
                    other => return Err(DecodeError::UnknownFrameType(other)),
                };
                PacketKind::VideoFrame {
                    frame,
                    boundary: aux1 != 0,
                }
            }
            2 => PacketKind::Data,
            3 => PacketKind::Parity {
                block: BlockId::new(block),
                index: aux0,
                k: aux1,
                n: aux2,
            },
            4 => PacketKind::Control,
            other => return Err(DecodeError::UnknownKind(other)),
        };
        Ok(Packet {
            header: PacketHeader {
                stream,
                seq,
                timestamp_us,
                kind,
            },
            payload: Bytes::copy_from_slice(payload),
            ingress_ns: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32;

    fn sample_kinds() -> Vec<PacketKind> {
        vec![
            PacketKind::AudioData,
            PacketKind::Data,
            PacketKind::Control,
            PacketKind::VideoFrame {
                frame: FrameType::I,
                boundary: true,
            },
            PacketKind::VideoFrame {
                frame: FrameType::B,
                boundary: false,
            },
            PacketKind::Parity {
                block: BlockId::new(77),
                index: 5,
                k: 4,
                n: 6,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip_all_kinds() {
        for kind in sample_kinds() {
            let packet = Packet::with_timestamp(
                StreamId::new(9),
                SeqNo::new(123_456),
                kind,
                987_654_321,
                vec![1, 2, 3, 4, 5],
            );
            let wire = packet.encode();
            assert_eq!(wire.len(), packet.wire_len());
            let decoded = Packet::decode(&wire).unwrap();
            assert_eq!(decoded, packet, "kind {kind:?}");
        }
    }

    #[test]
    fn empty_payload_round_trip() {
        let packet = Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Control, Vec::new());
        let decoded = Packet::decode(&packet.encode()).unwrap();
        assert_eq!(decoded.payload_len(), 0);
    }

    #[test]
    fn truncated_input_rejected() {
        let packet = Packet::new(StreamId::new(1), SeqNo::new(1), PacketKind::Data, vec![9; 10]);
        let wire = packet.encode();
        assert_eq!(Packet::decode(&wire[..10]).unwrap_err(), DecodeError::Truncated);
        assert_eq!(
            Packet::decode(&wire[..HEADER_LEN + 3]).unwrap_err(),
            DecodeError::BadLength
        );
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let packet = Packet::new(StreamId::new(1), SeqNo::new(1), PacketKind::Data, vec![9; 32]);
        let mut wire = packet.encode().to_vec();
        wire[HEADER_LEN + 4] ^= 0xFF;
        assert!(matches!(
            Packet::decode(&wire).unwrap_err(),
            DecodeError::BadChecksum { .. }
        ));
    }

    #[test]
    fn corrupted_header_fails_crc() {
        let packet = Packet::new(StreamId::new(1), SeqNo::new(1), PacketKind::Data, vec![9; 8]);
        let mut wire = packet.encode().to_vec();
        wire[5] ^= 0x10; // flip a bit in the sequence number
        assert!(matches!(
            Packet::decode(&wire).unwrap_err(),
            DecodeError::BadChecksum { .. }
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        let packet = Packet::new(StreamId::new(1), SeqNo::new(1), PacketKind::Data, vec![1]);
        let mut wire = packet.encode().to_vec();
        wire[20] = 200; // kind tag
        // Recompute CRC so the only failure is the kind tag.
        let payload_len = 1usize;
        let crc = {
            let mut scratch = Vec::new();
            scratch.extend_from_slice(&wire[..HEADER_LEN - 4]);
            scratch.extend_from_slice(&wire[HEADER_LEN..HEADER_LEN + payload_len]);
            crc32(&scratch)
        };
        wire[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(Packet::decode(&wire).unwrap_err(), DecodeError::UnknownKind(200));
    }

    #[test]
    fn with_seq_and_with_payload_preserve_other_fields() {
        let packet = Packet::with_timestamp(
            StreamId::new(2),
            SeqNo::new(5),
            PacketKind::AudioData,
            42,
            vec![1, 2, 3],
        );
        let renumbered = packet.with_seq(SeqNo::new(6));
        assert_eq!(renumbered.seq(), SeqNo::new(6));
        assert_eq!(renumbered.timestamp_us(), 42);
        assert_eq!(renumbered.payload(), packet.payload());
        let rewritten = packet.with_payload(vec![9]);
        assert_eq!(rewritten.seq(), SeqNo::new(5));
        assert_eq!(rewritten.payload(), &[9]);
    }

    #[test]
    fn clone_shares_payload_storage() {
        let packet = Packet::new(StreamId::new(1), SeqNo::new(1), PacketKind::Data, vec![0u8; 1024]);
        let clone = packet.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(
            packet.payload_bytes().as_ptr(),
            clone.payload_bytes().as_ptr()
        );
    }

    #[test]
    fn payload_mut_is_copy_on_write() {
        let original =
            Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Data, vec![1u8, 2, 3]);
        let mut fanned = original.clone();
        assert!(fanned.shares_payload_with(&original), "clone shares storage");
        fanned.payload_mut()[1] = 42;
        assert_eq!(original.payload(), &[1, 2, 3], "sibling unaffected by the write");
        assert_eq!(fanned.payload(), &[1, 42, 3]);
        assert!(!fanned.shares_payload_with(&original), "write forced a private copy");

        // A uniquely owned payload mutates in place: no reallocation.
        let before = fanned.payload().as_ptr();
        fanned.payload_mut()[0] = 7;
        assert_eq!(fanned.payload().as_ptr(), before);
    }

    #[test]
    fn payload_edit_is_copy_on_write_for_length_changes() {
        let original =
            Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::Data, vec![1u8, 2, 3]);
        let mut sealed = original.clone();
        assert!(sealed.shares_payload_with(&original));
        sealed.payload_edit(|buf| buf.extend_from_slice(&[7u8; 16]));
        assert_eq!(original.payload(), &[1, 2, 3], "sibling unaffected by the grow");
        assert_eq!(sealed.payload_len(), 19);
        assert!(!sealed.shares_payload_with(&original));
        // Shrinking works the same way.
        sealed.payload_edit(|buf| buf.truncate(3));
        assert_eq!(sealed.payload(), &[1, 2, 3]);
        // An edited packet still round-trips on the wire.
        assert_eq!(Packet::decode(&sealed.encode()).unwrap(), sealed);
    }

    #[test]
    fn aad_bytes_match_the_wire_header_prefix() {
        for kind in sample_kinds() {
            let packet = Packet::with_timestamp(
                StreamId::new(9),
                SeqNo::new(123_456),
                kind,
                987_654_321,
                vec![1, 2, 3],
            );
            let wire = packet.encode();
            assert_eq!(&packet.aad_bytes()[..], &wire[..32], "kind {kind:?}");
        }
    }

    #[test]
    fn aad_bytes_distinguish_header_fields() {
        let base = Packet::new(StreamId::new(1), SeqNo::new(7), PacketKind::Data, vec![1]);
        let other_stream = Packet::new(StreamId::new(2), SeqNo::new(7), PacketKind::Data, vec![1]);
        let other_seq = Packet::new(StreamId::new(1), SeqNo::new(8), PacketKind::Data, vec![1]);
        let other_kind = Packet::new(StreamId::new(1), SeqNo::new(7), PacketKind::AudioData, vec![1]);
        assert_ne!(base.aad_bytes(), other_stream.aad_bytes());
        assert_ne!(base.aad_bytes(), other_seq.aad_bytes());
        assert_ne!(base.aad_bytes(), other_kind.aad_bytes());
    }

    #[test]
    fn debug_shows_key_fields() {
        let packet = Packet::new(StreamId::new(3), SeqNo::new(8), PacketKind::AudioData, vec![1]);
        let text = format!("{packet:?}");
        assert!(text.contains("StreamId(3)"));
        assert!(text.contains("SeqNo(8)"));
        assert!(text.contains("payload_len"));
    }

    #[test]
    fn decode_error_display() {
        let err = DecodeError::BadChecksum {
            expected: 1,
            actual: 2,
        };
        assert!(err.to_string().contains("checksum"));
        assert!(DecodeError::Truncated.to_string().contains("shorter"));
    }

    #[test]
    fn ingress_stamp_is_first_touch_and_invisible() {
        let mut packet =
            Packet::new(StreamId::new(1), SeqNo::new(0), PacketKind::AudioData, vec![1, 2, 3]);
        let unstamped = packet.clone();
        assert_eq!(packet.ingress_ns(), 0);
        packet.stamp_ingress_ns(42);
        packet.stamp_ingress_ns(99); // first touch wins
        assert_eq!(packet.ingress_ns(), 42);

        // The stamp rides through clone / with_seq / with_payload / edits…
        assert_eq!(packet.clone().ingress_ns(), 42);
        assert_eq!(packet.with_seq(SeqNo::new(7)).ingress_ns(), 42);
        assert_eq!(packet.with_payload(vec![9]).ingress_ns(), 42);
        let mut edited = packet.clone();
        edited.payload_edit(|p| p.push(4));
        assert_eq!(edited.ingress_ns(), 42);

        // …but never onto the wire, and never into equality.
        assert_eq!(packet, unstamped);
        let decoded = Packet::decode(&packet.encode()).expect("round trip");
        assert_eq!(decoded.ingress_ns(), 0);
        assert_eq!(decoded, packet);
    }
}
