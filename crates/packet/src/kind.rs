//! Packet kinds and media frame types.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::id::BlockId;

/// The type of a video frame in an MPEG-style group of pictures.
///
/// The paper motivates frame-type awareness for FEC filters ("placing more
/// redundancy in I frames than in B frames") and for choosing insertion
/// points ("start the FEC filter at a frame boundary in the stream").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Intra-coded frame: self-contained, most important.
    I,
    /// Predicted frame: depends on the previous I/P frame.
    P,
    /// Bidirectionally predicted frame: least important.
    B,
}

impl FrameType {
    /// Relative importance used by priority-aware filters: higher is more
    /// important.
    pub fn priority(self) -> u8 {
        match self {
            FrameType::I => 2,
            FrameType::P => 1,
            FrameType::B => 0,
        }
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameType::I => write!(f, "I"),
            FrameType::P => write!(f, "P"),
            FrameType::B => write!(f, "B"),
        }
    }
}

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// A block of PCM audio samples.
    AudioData,
    /// Part of a video frame of the given type; `boundary` marks the first
    /// packet of a frame (the insertion points the paper cares about).
    VideoFrame {
        /// The frame type this packet belongs to.
        frame: FrameType,
        /// `true` if this packet starts a new frame.
        boundary: bool,
    },
    /// Opaque application data (e.g. a web resource multicast by Pavilion).
    Data,
    /// An FEC parity packet produced by the encoder filter.
    Parity {
        /// Block this parity packet belongs to.
        block: BlockId,
        /// Index of this packet within the encoded block (`k..n`).
        index: u8,
        /// Number of source packets in the block.
        k: u8,
        /// Total number of encoded packets in the block.
        n: u8,
    },
    /// An in-band control or keep-alive message.
    Control,
}

impl PacketKind {
    /// Returns `true` for packets that carry application data (as opposed to
    /// parity or control traffic).
    pub fn is_payload(self) -> bool {
        matches!(
            self,
            PacketKind::AudioData | PacketKind::VideoFrame { .. } | PacketKind::Data
        )
    }

    /// Returns `true` for FEC parity packets.
    pub fn is_parity(self) -> bool {
        matches!(self, PacketKind::Parity { .. })
    }

    /// Returns `true` if a filter may be spliced into the stream immediately
    /// before a packet of this kind (a "frame boundary" in the paper's
    /// terms).  Audio blocks and standalone data packets are always
    /// boundaries; video packets only at the start of a frame.
    pub fn is_insertion_boundary(self) -> bool {
        match self {
            PacketKind::AudioData | PacketKind::Data | PacketKind::Control => true,
            PacketKind::VideoFrame { boundary, .. } => boundary,
            PacketKind::Parity { .. } => false,
        }
    }

    /// Compact one-byte tag used by the wire format.
    pub(crate) fn tag(self) -> u8 {
        match self {
            PacketKind::AudioData => 0,
            PacketKind::VideoFrame { .. } => 1,
            PacketKind::Data => 2,
            PacketKind::Parity { .. } => 3,
            PacketKind::Control => 4,
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketKind::AudioData => write!(f, "audio"),
            PacketKind::VideoFrame { frame, boundary } => {
                if *boundary {
                    write!(f, "video-{frame}(boundary)")
                } else {
                    write!(f, "video-{frame}")
                }
            }
            PacketKind::Data => write!(f, "data"),
            PacketKind::Parity { block, index, k, n } => {
                write!(f, "parity-{index}/{n} (k={k}, {block})")
            }
            PacketKind::Control => write!(f, "control"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_priorities_order_i_p_b() {
        assert!(FrameType::I.priority() > FrameType::P.priority());
        assert!(FrameType::P.priority() > FrameType::B.priority());
    }

    #[test]
    fn payload_classification() {
        assert!(PacketKind::AudioData.is_payload());
        assert!(PacketKind::Data.is_payload());
        assert!(PacketKind::VideoFrame {
            frame: FrameType::I,
            boundary: true
        }
        .is_payload());
        assert!(!PacketKind::Control.is_payload());
        let parity = PacketKind::Parity {
            block: BlockId::new(0),
            index: 4,
            k: 4,
            n: 6,
        };
        assert!(!parity.is_payload());
        assert!(parity.is_parity());
    }

    #[test]
    fn insertion_boundaries() {
        assert!(PacketKind::AudioData.is_insertion_boundary());
        assert!(PacketKind::VideoFrame {
            frame: FrameType::I,
            boundary: true
        }
        .is_insertion_boundary());
        assert!(!PacketKind::VideoFrame {
            frame: FrameType::B,
            boundary: false
        }
        .is_insertion_boundary());
        assert!(!PacketKind::Parity {
            block: BlockId::new(1),
            index: 5,
            k: 4,
            n: 6
        }
        .is_insertion_boundary());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(PacketKind::AudioData.to_string(), "audio");
        assert!(PacketKind::Parity {
            block: BlockId::new(3),
            index: 4,
            k: 4,
            n: 6
        }
        .to_string()
        .contains("parity-4/6"));
        assert_eq!(
            PacketKind::VideoFrame {
                frame: FrameType::I,
                boundary: true
            }
            .to_string(),
            "video-I(boundary)"
        );
    }
}
