//! # rapidware-packet — packet model shared by every RAPIDware-rs subsystem
//!
//! The proxy filters of McKinley & Padmanabhan's composable-proxy framework
//! operate on *data streams* carrying multimedia packets: PCM audio blocks,
//! MPEG-style video frames, generic data, FEC parity packets, and control
//! messages.  This crate defines that packet model once so the filter chain,
//! the FEC codec, the network simulator, and the media sources all agree on
//! what flows through a stream.
//!
//! Contents:
//!
//! * [`Packet`], [`PacketHeader`], [`PacketKind`], [`FrameType`] — the unit
//!   of data carried by a detachable stream, with a compact wire encoding
//!   ([`Packet::encode`] / [`Packet::decode`]) protected by a CRC-32.
//! * [`SeqNo`], [`StreamId`], [`BlockId`] — newtype identifiers.
//! * [`PacketBuffer`] — the reordering/jitter buffer that sits between a
//!   receiver object and a consumer (the paper's `PacketBuffer` component in
//!   Figure 6).
//! * [`ReceiptStats`] / [`WindowStats`] — per-window receipt and
//!   reconstruction accounting used to regenerate the paper's Figure 7.
//!
//! ## Example
//!
//! ```
//! use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
//!
//! let packet = Packet::new(StreamId::new(1), SeqNo::new(42), PacketKind::AudioData, vec![1, 2, 3]);
//! let wire = packet.encode();
//! let decoded = Packet::decode(&wire).expect("round-trip");
//! assert_eq!(decoded.seq(), SeqNo::new(42));
//! assert_eq!(decoded.payload(), &[1, 2, 3][..]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod crc;
mod id;
mod kind;
mod packet;
mod stats;

pub use buffer::{BufferPush, PacketBuffer};
pub use crc::{crc32, crc32_finish, crc32_init, crc32_update, crc32_update_bytewise};
pub use id::{BlockId, SeqNo, StreamId};
pub use kind::{FrameType, PacketKind};
pub use packet::{DecodeError, Packet, PacketHeader, HEADER_LEN, MAX_PAYLOAD_LEN};
pub use stats::{LossEvent, ReceiptStats, WindowStats};
