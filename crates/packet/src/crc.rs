//! A table-driven CRC-32 (IEEE 802.3 polynomial) used to protect the
//! packet wire format.
//!
//! The checksum exists so that tests and fault-injection experiments can
//! detect payload corruption introduced by a misbehaving filter or by the
//! network simulator's corruption model; it is not meant to be a
//! cryptographic integrity mechanism.
//!
//! The hot path is **slice-by-16**: sixteen derived lookup tables (16 KiB,
//! built at compile time) let [`crc32_update`] fold sixteen input bytes per
//! step with sixteen independent table loads and XORs instead of a serial
//! one-byte-at-a-time dependency chain.  The classic byte-wise loop is kept
//! as [`crc32_update_bytewise`] — it is the reference the wide path is
//! property-tested against (`tests/proptest_crc.rs`) and the tail handler
//! for the last `len % 16` bytes.

/// Computes the CRC-32 (IEEE) of `data`.
///
/// ```
/// // The well-known check value for the ASCII string "123456789".
/// assert_eq!(rapidware_packet::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), data))
}

/// Starts an incremental CRC-32 computation (see [`crc32_update`]).
#[inline]
pub fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Folds `data` into a running CRC-32 state, sixteen bytes per step.
///
/// Feeding several slices through `crc32_update` and finishing with
/// [`crc32_finish`] yields the same checksum as [`crc32`] over their
/// concatenation, without materialising the concatenated buffer — this is
/// what lets the packet codec checksum header and payload with zero scratch
/// allocations.
///
/// ```
/// use rapidware_packet::{crc32, crc32_finish, crc32_init, crc32_update};
///
/// let state = crc32_update(crc32_init(), b"1234");
/// let state = crc32_update(state, b"56789");
/// assert_eq!(crc32_finish(state), crc32(b"123456789"));
/// ```
#[inline]
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(16);
    for chunk in chunks.by_ref() {
        // The running state is folded into the first word; every byte of
        // the chunk then contributes one independent table lookup, letting
        // the CPU issue them in parallel instead of waiting on the
        // byte-serial `state` dependency.
        let w0 = u32::from_le_bytes(chunk[0..4].try_into().expect("chunk of 4")) ^ state;
        let w1 = u32::from_le_bytes(chunk[4..8].try_into().expect("chunk of 4"));
        let w2 = u32::from_le_bytes(chunk[8..12].try_into().expect("chunk of 4"));
        let w3 = u32::from_le_bytes(chunk[12..16].try_into().expect("chunk of 4"));
        state = TABLES[15][(w0 & 0xFF) as usize]
            ^ TABLES[14][((w0 >> 8) & 0xFF) as usize]
            ^ TABLES[13][((w0 >> 16) & 0xFF) as usize]
            ^ TABLES[12][(w0 >> 24) as usize]
            ^ TABLES[11][(w1 & 0xFF) as usize]
            ^ TABLES[10][((w1 >> 8) & 0xFF) as usize]
            ^ TABLES[9][((w1 >> 16) & 0xFF) as usize]
            ^ TABLES[8][(w1 >> 24) as usize]
            ^ TABLES[7][(w2 & 0xFF) as usize]
            ^ TABLES[6][((w2 >> 8) & 0xFF) as usize]
            ^ TABLES[5][((w2 >> 16) & 0xFF) as usize]
            ^ TABLES[4][(w2 >> 24) as usize]
            ^ TABLES[3][(w3 & 0xFF) as usize]
            ^ TABLES[2][((w3 >> 8) & 0xFF) as usize]
            ^ TABLES[1][((w3 >> 16) & 0xFF) as usize]
            ^ TABLES[0][(w3 >> 24) as usize];
    }
    crc32_update_bytewise(state, chunks.remainder())
}

/// The classic one-byte-per-step CRC-32 loop: the reference implementation
/// the slice-by-16 path is property-tested against, and the tail handler
/// for inputs shorter than one 16-byte step.
#[inline]
pub fn crc32_update_bytewise(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        let index = ((state ^ u32::from(byte)) & 0xFF) as usize;
        state = (state >> 8) ^ TABLES[0][index];
    }
    state
}

/// Finalises an incremental CRC-32 computation.
#[inline]
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// Slice-by-16 lookup tables for the reflected IEEE polynomial 0xEDB88320.
///
/// `TABLES[0]` is the classic byte-wise table; `TABLES[k][b]` is the CRC
/// contribution of byte `b` seen `k` positions before the end of a 16-byte
/// group (`TABLES[k][b] == crc_of(b followed by k zero bytes)`).
static TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // Each further table advances the previous one by one zero byte:
    // processing byte b then k zeros equals tables[k][b].
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xAAu8; 64];
        let original = crc32(&data);
        data[17] ^= 0x01;
        assert_ne!(crc32(&data), original);
    }

    #[test]
    fn different_lengths_differ() {
        assert_ne!(crc32(&[0u8; 3]), crc32(&[0u8; 4]));
    }

    #[test]
    fn slice_by_16_matches_bytewise_at_every_length() {
        // Cover the wide loop, the tail, and every alignment of the seam.
        let data: Vec<u8> = (0..96).map(|i| (i * 37 + 11) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32_update(crc32_init(), &data[..len]),
                crc32_update_bytewise(crc32_init(), &data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn incremental_split_points_agree_with_one_shot() {
        let data: Vec<u8> = (0..64).map(|i| (i * 13 + 5) as u8).collect();
        let whole = crc32(&data);
        for split in 0..=data.len() {
            let state = crc32_update(crc32_init(), &data[..split]);
            let state = crc32_update(state, &data[split..]);
            assert_eq!(crc32_finish(state), whole, "split {split}");
        }
    }
}
