//! A small, table-driven CRC-32 (IEEE 802.3 polynomial) used to protect the
//! packet wire format.
//!
//! The checksum exists so that tests and fault-injection experiments can
//! detect payload corruption introduced by a misbehaving filter or by the
//! network simulator's corruption model; it is not meant to be a
//! cryptographic integrity mechanism.

/// Computes the CRC-32 (IEEE) of `data`.
///
/// ```
/// // The well-known check value for the ASCII string "123456789".
/// assert_eq!(rapidware_packet::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), data))
}

/// Starts an incremental CRC-32 computation (see [`crc32_update`]).
#[inline]
pub fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Folds `data` into a running CRC-32 state.
///
/// Feeding several slices through `crc32_update` and finishing with
/// [`crc32_finish`] yields the same checksum as [`crc32`] over their
/// concatenation, without materialising the concatenated buffer — this is
/// what lets the packet codec checksum header and payload with zero scratch
/// allocations.
///
/// ```
/// use rapidware_packet::{crc32, crc32_finish, crc32_init, crc32_update};
///
/// let state = crc32_update(crc32_init(), b"1234");
/// let state = crc32_update(state, b"56789");
/// assert_eq!(crc32_finish(state), crc32(b"123456789"));
/// ```
#[inline]
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        let index = ((state ^ u32::from(byte)) & 0xFF) as usize;
        state = (state >> 8) ^ TABLE[index];
    }
    state
}

/// Finalises an incremental CRC-32 computation.
#[inline]
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// Lookup table for the reflected IEEE polynomial 0xEDB88320.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xAAu8; 64];
        let original = crc32(&data);
        data[17] ^= 0x01;
        assert_ne!(crc32(&data), original);
    }

    #[test]
    fn different_lengths_differ() {
        assert_ne!(crc32(&[0u8; 3]), crc32(&[0u8; 4]));
    }
}
