//! # rapidware — composable proxy filters for heterogeneous mobile computing
//!
//! A Rust reproduction of McKinley & Padmanabhan, *"Design of Composable
//! Proxy Filters for Heterogeneous Mobile Computing"* (IEEE Workshop on
//! Wireless Networks and Mobile Computing, with ICDCS-21, 2001).
//!
//! This facade crate re-exports the whole system and adds the experiment
//! machinery used to regenerate the paper's evaluation:
//!
//! | subsystem | crate | what it is |
//! |---|---|---|
//! | [`streams`] | `rapidware-streams` | detachable pipes (pause / reconnect / splice) — the paper's detachable Java I/O streams |
//! | [`packet`] | `rapidware-packet` | the packet model, reorder buffers, receipt statistics |
//! | [`fec`] | `rapidware-fec` | (n, k) block erasure codes over GF(2⁸) |
//! | [`filters`] | `rapidware-filters` | the `Filter` trait, the reconfigurable chain, and the built-in filter library |
//! | [`proxy`] | `rapidware-proxy` | thread-per-filter proxy runtime, filter registry, control protocol |
//! | [`transport`] | `rapidware-transport` | real UDP ingress/egress endpoints and the deterministic loopback impairment shim |
//! | [`raplets`] | `rapidware-raplets` | observer / responder raplets and the adaptation engine |
//! | [`netsim`] | `rapidware-netsim` | deterministic wireless LAN simulator (the testbed substitute) |
//! | [`media`] | `rapidware-media` | synthetic audio / video workloads and measurement sinks |
//! | [`pavilion`] | `rapidware-pavilion` | the collaborative-session substrate (leadership, browsing, caching) |
//!
//! The [`scenario`] module glues these together into reproducible end-to-end
//! experiments (the audio-multicast-over-WaveLAN setup of the paper's
//! Figure 7 and its ablations), the [`engine`] module closes the control
//! loop — seeded link samples drive the raplets, whose actions reconfigure
//! a running chain, with every step recorded in a replayable trace — and
//! [`AdaptiveProxyBuilder`] assembles a live adaptive proxy in a few lines.
//!
//! ## Quickstart
//!
//! ```
//! use rapidware::scenario::{FecScenario, ScenarioConfig};
//!
//! // The paper's operating point: FEC(6,4), laptops 25 m from the access
//! // point — but only a second of audio so the doctest stays fast.
//! let config = ScenarioConfig::figure7().with_packets(50).with_receivers(1);
//! let report = FecScenario::new(config).run();
//! let receiver = &report.receivers[0];
//! assert!(receiver.reconstructed_pct() >= receiver.received_pct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use rapidware_fec as fec;
pub use rapidware_filters as filters;
pub use rapidware_media as media;
pub use rapidware_netsim as netsim;
pub use rapidware_packet as packet;
pub use rapidware_pavilion as pavilion;
pub use rapidware_proxy as proxy;
pub use rapidware_raplets as raplets;
pub use rapidware_streams as streams;
pub use rapidware_transport as transport;

mod builder;
pub mod engine;
pub mod scenario;

pub use builder::AdaptiveProxyBuilder;
/// The sharded session runtime (re-exported from `rapidware-proxy`): a
/// fixed worker pool hosting hundreds of chains and fanout sessions as
/// cooperative tasks instead of thread-per-filter.
pub use rapidware_proxy::runtime;

/// The most commonly used types, re-exported for glob import.
pub mod prelude {
    pub use crate::builder::AdaptiveProxyBuilder;
    pub use crate::engine::{
        ActionApplier, LossRegime, ScenarioEngine, ScenarioOutcome, ScenarioSpec, ScenarioTrace,
        SyncChainApplier, ThreadedProxyApplier,
    };
    pub use crate::scenario::{FecScenario, ReceiverReport, ScenarioConfig, ScenarioReport};
    pub use rapidware_fec::FecCodec;
    pub use rapidware_filters::{
        FecDecoderFilter, FecEncoderFilter, Filter, FilterChain, FilterContainer, FilterOutput,
        NullFilter, TapFilter,
    };
    pub use rapidware_media::{AudioConfig, AudioSource, MediaSink, VideoConfig, VideoSource};
    pub use rapidware_netsim::{
        DistanceLossModel, LinearWalk, LinkConfig, LossModel, SimClock, SimTime, WirelessLan,
    };
    pub use rapidware_packet::{Packet, PacketKind, ReceiptStats, SeqNo, StreamId};
    pub use rapidware_pavilion::{CollaborativeSession, DeviceProfile};
    pub use rapidware_proxy::{
        Command, ControlManager, FilterRegistry, FilterSpec, PooledChain, PooledSession, Proxy,
        Runtime, RuntimeConfig, ThreadedChain, UdpSessionConfig, UdpStreamConfig,
    };
    pub use rapidware_transport::{ImpairedUdp, ImpairmentPlan, UdpConfig, UdpEgress, UdpIngress};
    pub use rapidware_raplets::{
        AdaptationAction, AdaptationEngine, FecResponder, LinkSample, LossRateObserver,
    };
    pub use rapidware_streams::{pipe, DetachableReceiver, DetachableSender};
}
