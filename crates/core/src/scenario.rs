//! End-to-end experiment scenarios.
//!
//! [`FecScenario`] reproduces the setup of the paper's evaluation
//! (Section 5): a proxy receives a live PCM audio stream, optionally runs an
//! FEC encoder filter over it, and multicasts the result over a simulated
//! 2 Mbps WaveLAN to one or more wireless receivers, each of which runs an
//! FEC decoder filter and measures the fraction of packets *received* over
//! the network versus *reconstructed* after FEC — the two curves of
//! Figure 7.  The same runner, re-parameterised, drives the loss-vs-distance
//! sweep, the (n, k) ablation, and the adaptive (observer/responder) walk
//! scenario.

use std::collections::HashSet;

use crate::engine::apply_actions_to_chain;
use rapidware_filters::{FecDecoderFilter, Filter, FilterChain};
use rapidware_media::{AudioConfig, AudioSource, MediaSink, PlayoutReport};
use rapidware_netsim::{
    BernoulliLoss, DistanceLossModel, LinearWalk, SimTime, WirelessLan,
};
use rapidware_packet::{LossEvent, Packet, ReceiptStats, SeqNo, StreamId};
use rapidware_proxy::FilterRegistry;
use rapidware_raplets::{
    AdaptationEngine, AdaptationRecord, FecResponder, LinkSample, LossRateObserver,
};

/// Parameters of one [`FecScenario`] run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed for the network simulator (runs are reproducible per seed).
    pub seed: u64,
    /// Number of source audio packets to transmit.
    pub packets: u64,
    /// Audio format (defaults to the paper's 8 kHz stereo 8-bit PCM).
    pub audio: AudioConfig,
    /// Static FEC configuration `(n, k)`, if any.
    pub fec: Option<(usize, usize)>,
    /// If `true`, start without FEC and let the loss-observer / FEC-responder
    /// raplets insert, tune, and remove the encoder at run time.
    pub adaptive: bool,
    /// Distance of the stationary receivers from the access point, in
    /// meters.
    pub distance_m: f64,
    /// Mobility trace overriding `distance_m` (each receiver walks it).
    pub walk: Option<LinearWalk>,
    /// Fixed per-packet loss probability overriding the distance model.
    pub loss_rate: Option<f64>,
    /// Number of wireless receivers in the multicast group.
    pub receivers: usize,
    /// Width (in packets) of the per-window statistics, as in Figure 7.
    pub window: u64,
    /// How often (in source packets) the adaptation engine samples the link.
    pub sample_interval: u64,
}

impl ScenarioConfig {
    /// The operating point of the paper's Figure 7: 8 kHz stereo 8-bit
    /// audio, FEC(6,4), three wireless laptops 25 m from the access point,
    /// ≈5184 packets, 432-packet statistics windows.
    pub fn figure7() -> Self {
        Self {
            seed: 2001,
            packets: 5_184,
            audio: AudioConfig::pcm_8khz_stereo_8bit(),
            fec: Some((6, 4)),
            adaptive: false,
            distance_m: 25.0,
            walk: None,
            loss_rate: None,
            receivers: 3,
            window: 432,
            sample_interval: 50,
        }
    }

    /// A heavy multi-receiver fan-out: the Figure 7 pipeline serving a
    /// whole room of wireless receivers instead of three laptops.
    ///
    /// Each receiver suffers *independent* losses, which is exactly the
    /// regime where one parity packet repairs different packets at
    /// different receivers — the paper's argument for block erasure codes
    /// on multicast — and the workload that motivates the batched data
    /// plane: the sender-side encode cost is paid once while the fan-out
    /// multiplies delivery work by the receiver count.
    pub fn multicast_fanout(receivers: usize) -> Self {
        Self {
            receivers: receivers.max(1),
            packets: 2_000,
            ..Self::figure7()
        }
    }

    /// The adaptive walk scenario of Section 3: the user starts near the
    /// access point, walks to a conference room down the hall, and the
    /// raplets insert FEC on the fly once loss rises.
    pub fn adaptive_walk() -> Self {
        Self {
            fec: None,
            adaptive: true,
            walk: Some(LinearWalk::office_to_conference_room()),
            packets: 9_000, // three minutes of audio at 50 packets/s
            receivers: 1,
            ..Self::figure7()
        }
    }

    /// Overrides the number of source packets.
    #[must_use]
    pub fn with_packets(mut self, packets: u64) -> Self {
        self.packets = packets;
        self
    }

    /// Overrides the number of receivers.
    #[must_use]
    pub fn with_receivers(mut self, receivers: usize) -> Self {
        self.receivers = receivers.max(1);
        self
    }

    /// Uses the given static FEC configuration.
    #[must_use]
    pub fn with_fec(mut self, n: usize, k: usize) -> Self {
        self.fec = Some((n, k));
        self
    }

    /// Disables FEC entirely (the "raw" baseline).
    #[must_use]
    pub fn without_fec(mut self) -> Self {
        self.fec = None;
        self.adaptive = false;
        self
    }

    /// Places the stationary receivers at this distance.
    #[must_use]
    pub fn with_distance(mut self, distance_m: f64) -> Self {
        self.distance_m = distance_m;
        self
    }

    /// Uses a fixed loss rate instead of the distance model.
    #[must_use]
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        self.loss_rate = Some(loss_rate);
        self
    }

    /// Uses a mobility trace for every receiver.
    #[must_use]
    pub fn with_walk(mut self, walk: LinearWalk) -> Self {
        self.walk = Some(walk);
        self
    }

    /// Overrides the simulator seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the statistics window width.
    #[must_use]
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window.max(1);
        self
    }
}

/// Per-receiver results of a scenario run.
#[derive(Debug, Clone)]
pub struct ReceiverReport {
    /// Receiver name.
    pub name: String,
    /// Per-window receipt / reconstruction statistics (the Figure 7 curves).
    pub stats: ReceiptStats,
    /// Playout continuity as seen by the media sink.
    pub playout: PlayoutReport,
    /// Parity packets that reached this receiver.
    pub parity_received: u64,
}

impl ReceiverReport {
    /// Percentage of source packets received over the network.
    pub fn received_pct(&self) -> f64 {
        self.stats.received_pct()
    }

    /// Percentage of source packets available after FEC reconstruction.
    pub fn reconstructed_pct(&self) -> f64 {
        self.stats.reconstructed_pct()
    }
}

/// The results of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Number of source packets transmitted.
    pub source_packets_sent: u64,
    /// Number of parity packets transmitted.
    pub parity_packets_sent: u64,
    /// Source payload bytes transmitted.
    pub source_bytes_sent: u64,
    /// Parity payload bytes transmitted.
    pub parity_bytes_sent: u64,
    /// Per-receiver results.
    pub receivers: Vec<ReceiverReport>,
    /// The adaptation log (empty for non-adaptive runs).
    pub adaptation_log: Vec<AdaptationRecord>,
    /// Snapshot of the sender chain's filters at the end of the run.
    pub final_sender_filters: Vec<String>,
}

impl ScenarioReport {
    /// Bandwidth overhead of FEC: parity bytes as a fraction of source
    /// bytes.
    pub fn overhead(&self) -> f64 {
        if self.source_bytes_sent == 0 {
            0.0
        } else {
            self.parity_bytes_sent as f64 / self.source_bytes_sent as f64
        }
    }

    /// Mean raw receipt percentage across receivers.
    pub fn average_received_pct(&self) -> f64 {
        average(self.receivers.iter().map(ReceiverReport::received_pct))
    }

    /// Mean post-reconstruction percentage across receivers.
    pub fn average_reconstructed_pct(&self) -> f64 {
        average(self.receivers.iter().map(ReceiverReport::reconstructed_pct))
    }
}

fn average(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0u32;
    for value in values {
        sum += value;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / f64::from(count)
    }
}

struct ReceiverState {
    name: String,
    decoder: FecDecoderFilter,
    sink: MediaSink,
    received: HashSet<u64>,
    emitted: HashSet<u64>,
    parity_received: u64,
}

/// The audio-multicast-over-wireless experiment runner.
#[derive(Debug, Clone)]
pub struct FecScenario {
    config: ScenarioConfig,
}

impl FecScenario {
    /// Creates a runner for the given configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        Self { config }
    }

    /// The configuration this runner will execute.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Runs the scenario to completion and reports the results.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names FEC parameters the codec rejects
    /// (e.g. `k > n`); all other behaviour is captured in the report.
    pub fn run(&self) -> ScenarioReport {
        let config = &self.config;
        let registry = FilterRegistry::with_builtins();

        // Sender side: audio source feeding a (reconfigurable) filter chain.
        let mut source = AudioSource::new(StreamId::new(1), config.audio);
        let mut sender_chain = FilterChain::new();
        if let (Some((n, k)), false) = (config.fec, config.adaptive) {
            let spec = rapidware_proxy::FilterSpec::new("fec-encoder")
                .with_param("n", n.to_string())
                .with_param("k", k.to_string());
            sender_chain
                .push_back(registry.instantiate(&spec).expect("valid fec parameters"))
                .expect("append to an empty chain");
        }
        let mut engine = if config.adaptive {
            let mut engine = AdaptationEngine::new();
            engine.add_observer(Box::new(LossRateObserver::paper_default()));
            engine.add_responder(Box::new(FecResponder::paper_default()));
            Some(engine)
        } else {
            None
        };

        // The wireless LAN and its receivers.
        let mut lan = WirelessLan::wavelan_2mbps(config.seed);
        let (n, k) = config.fec.unwrap_or((6, 4));
        let mut receivers: Vec<ReceiverState> = (0..config.receivers.max(1))
            .map(|index| {
                let name = format!("receiver-{index}");
                if let Some(loss) = config.loss_rate {
                    lan.add_receiver(&name, Box::new(BernoulliLoss::new(loss)));
                } else if let Some(walk) = config.walk {
                    lan.add_mobile_receiver(
                        &name,
                        DistanceLossModel::wavelan_2mbps(),
                        Box::new(walk),
                    );
                } else {
                    lan.add_receiver_at_distance(&name, config.distance_m);
                }
                ReceiverState {
                    name,
                    decoder: FecDecoderFilter::new(n, k).expect("valid fec parameters"),
                    sink: MediaSink::new(),
                    received: HashSet::new(),
                    emitted: HashSet::new(),
                    parity_received: 0,
                }
            })
            .collect();

        let mut report = ScenarioReport {
            source_packets_sent: 0,
            parity_packets_sent: 0,
            source_bytes_sent: 0,
            parity_bytes_sent: 0,
            receivers: Vec::new(),
            adaptation_log: Vec::new(),
            final_sender_filters: Vec::new(),
        };

        // Adaptation sampling window, measured at receiver 0.
        let mut window_sent = 0u64;
        let mut window_delivered = 0u64;

        for index in 0..config.packets {
            let packet = source.next_packet();
            let now = SimTime::from_micros(packet.timestamp_us());
            let outgoing = sender_chain
                .process(packet)
                .expect("scenario filters do not fail");
            for out_packet in outgoing {
                Self::broadcast(
                    &mut lan,
                    now,
                    &out_packet,
                    config.packets,
                    &mut receivers,
                    &mut report,
                    &mut window_sent,
                    &mut window_delivered,
                );
            }

            if let Some(engine) = engine.as_mut() {
                if (index + 1) % config.sample_interval.max(1) == 0 {
                    let mut sample = LinkSample::new(now, window_sent, window_delivered);
                    if let Some(distance) =
                        lan.receiver_distance(lan.receiver_ids()[0], now)
                    {
                        sample = sample.with_distance(distance);
                    }
                    let actions = engine.ingest(&sample);
                    let flushed =
                        apply_actions_to_chain(&mut sender_chain, &registry, &actions);
                    for out_packet in flushed {
                        Self::broadcast(
                            &mut lan,
                            now,
                            &out_packet,
                            config.packets,
                            &mut receivers,
                            &mut report,
                            &mut window_sent,
                            &mut window_delivered,
                        );
                    }
                    window_sent = 0;
                    window_delivered = 0;
                }
            }
        }

        // Flush the tail of the stream (a partial FEC block, if any).
        let final_time = SimTime::from_micros(config.packets * config.audio.packet_interval_us());
        let flushed = sender_chain.flush().expect("scenario filters do not fail");
        for out_packet in flushed {
            Self::broadcast(
                &mut lan,
                final_time,
                &out_packet,
                config.packets,
                &mut receivers,
                &mut report,
                &mut window_sent,
                &mut window_delivered,
            );
        }

        // Assemble per-receiver statistics.
        for state in receivers {
            let mut stats = ReceiptStats::new(config.window);
            for seq in 0..config.packets {
                let event = if state.received.contains(&seq) {
                    LossEvent::Received
                } else if state.emitted.contains(&seq) {
                    LossEvent::Reconstructed
                } else {
                    LossEvent::Lost
                };
                stats.record(SeqNo::new(seq), event);
            }
            let playout = state.sink.report(config.packets);
            report.receivers.push(ReceiverReport {
                name: state.name,
                stats,
                playout,
                parity_received: state.parity_received,
            });
        }
        if let Some(engine) = engine.as_mut() {
            report.adaptation_log = engine.take_log();
        }
        report.final_sender_filters = sender_chain.names();
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn broadcast(
        lan: &mut WirelessLan,
        now: SimTime,
        packet: &Packet,
        total_sources: u64,
        receivers: &mut [ReceiverState],
        report: &mut ScenarioReport,
        window_sent: &mut u64,
        window_delivered: &mut u64,
    ) {
        let is_payload = packet.kind().is_payload();
        if is_payload {
            report.source_packets_sent += 1;
            report.source_bytes_sent += packet.payload_len() as u64;
            *window_sent += 1;
        } else if packet.kind().is_parity() {
            report.parity_packets_sent += 1;
            report.parity_bytes_sent += packet.payload_len() as u64;
        }
        let records = lan.broadcast(now, packet.wire_len());
        for (index, record) in records.iter().enumerate() {
            if !record.is_delivered() {
                continue;
            }
            let state = &mut receivers[index];
            if is_payload {
                state.received.insert(packet.seq().value());
                if index == 0 {
                    *window_delivered += 1;
                }
            } else if packet.kind().is_parity() {
                state.parity_received += 1;
            }
            let mut emitted: Vec<Packet> = Vec::new();
            if state
                .decoder
                .process(packet.clone(), &mut emitted)
                .is_err()
            {
                state.sink.reject_corrupted();
                continue;
            }
            for out in emitted {
                if !out.kind().is_payload() {
                    continue;
                }
                let seq = out.seq().value();
                if seq >= total_sources {
                    continue;
                }
                if state.emitted.insert(seq) {
                    if state.received.contains(&seq) {
                        state.sink.deliver(&out);
                    } else {
                        state.sink.deliver_recovered(&out);
                    }
                }
            }
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_short_run_delivers_everything() {
        let config = ScenarioConfig::figure7()
            .with_packets(200)
            .with_receivers(1)
            .with_loss_rate(0.0);
        let report = FecScenario::new(config).run();
        let receiver = &report.receivers[0];
        assert!((receiver.received_pct() - 100.0).abs() < 1e-9);
        assert!((receiver.reconstructed_pct() - 100.0).abs() < 1e-9);
        assert_eq!(report.source_packets_sent, 200);
        assert_eq!(report.parity_packets_sent, 100, "two parities per 4-packet block");
        assert!(report.overhead() > 0.0);
        assert_eq!(receiver.playout.missing, 0);
    }

    #[test]
    fn figure7_shape_holds_on_a_short_run() {
        let config = ScenarioConfig::figure7().with_packets(1_000);
        let report = FecScenario::new(config).run();
        for receiver in &report.receivers {
            // Raw receipt should be high but below 100%, and FEC should
            // close most of the gap.
            assert!(receiver.received_pct() < 100.0);
            assert!(receiver.received_pct() > 95.0);
            assert!(receiver.reconstructed_pct() >= receiver.received_pct());
            assert!(receiver.reconstructed_pct() > 99.0);
        }
        assert_eq!(report.final_sender_filters, vec!["fec-encoder(6,4)"]);
    }

    #[test]
    fn no_fec_baseline_has_no_parity_and_no_recovery() {
        let config = ScenarioConfig::figure7()
            .without_fec()
            .with_packets(500)
            .with_receivers(1)
            .with_loss_rate(0.05);
        let report = FecScenario::new(config).run();
        assert_eq!(report.parity_packets_sent, 0);
        let receiver = &report.receivers[0];
        assert!((receiver.reconstructed_pct() - receiver.received_pct()).abs() < 1e-9);
        assert!(receiver.received_pct() < 100.0);
    }

    #[test]
    fn heavier_loss_needs_stronger_codes() {
        let weak = FecScenario::new(
            ScenarioConfig::figure7()
                .with_packets(1_000)
                .with_receivers(1)
                .with_loss_rate(0.15)
                .with_fec(5, 4)
                .with_seed(7),
        )
        .run();
        let strong = FecScenario::new(
            ScenarioConfig::figure7()
                .with_packets(1_000)
                .with_receivers(1)
                .with_loss_rate(0.15)
                .with_fec(8, 4)
                .with_seed(7),
        )
        .run();
        assert!(
            strong.receivers[0].reconstructed_pct() > weak.receivers[0].reconstructed_pct(),
            "FEC(8,4) must out-recover FEC(5,4) at 15% loss"
        );
        assert!(strong.overhead() > weak.overhead());
    }

    #[test]
    fn adaptive_walk_inserts_fec_when_loss_rises() {
        let config = ScenarioConfig::adaptive_walk()
            .with_packets(4_000)
            .with_walk(LinearWalk::new(5.0, 40.0, SimTime::from_secs(10), 2.0));
        let report = FecScenario::new(config).run();
        assert!(
            !report.adaptation_log.is_empty(),
            "the walk must trigger at least one adaptation"
        );
        assert!(
            report.parity_packets_sent > 0,
            "FEC must have been active for part of the run"
        );
        assert!(
            report
                .final_sender_filters
                .iter()
                .any(|name| name.starts_with("fec-encoder")),
            "by the end of the walk the encoder should be installed"
        );
        // Adaptation should still leave the stream largely intact.
        assert!(report.receivers[0].reconstructed_pct() > 90.0);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let config = ScenarioConfig::figure7().with_packets(400).with_receivers(2);
        let a = FecScenario::new(config.clone()).run();
        let b = FecScenario::new(config).run();
        assert_eq!(a.source_packets_sent, b.source_packets_sent);
        for (ra, rb) in a.receivers.iter().zip(&b.receivers) {
            assert_eq!(ra.stats.windows(), rb.stats.windows());
        }
    }

    #[test]
    fn multicast_fanout_recovers_independent_losses_everywhere() {
        let config = ScenarioConfig::multicast_fanout(16).with_packets(600);
        let report = FecScenario::new(config).run();
        assert_eq!(report.receivers.len(), 16);
        // Losses are independent per receiver: receivers must not all see
        // the identical loss pattern...
        let received: Vec<u64> = report
            .receivers
            .iter()
            .map(|r| r.stats.windows().iter().map(|w| w.received).sum())
            .collect();
        assert!(
            received.windows(2).any(|pair| pair[0] != pair[1]),
            "16 receivers with identical receipt counts: losses not independent? {received:?}"
        );
        // ...yet FEC(6,4) must close the gap at every single one of them.
        for receiver in &report.receivers {
            assert!(
                receiver.reconstructed_pct() > 99.0,
                "{} only reached {:.2}%",
                receiver.name,
                receiver.reconstructed_pct()
            );
        }
    }

    #[test]
    fn report_aggregates_across_receivers() {
        let config = ScenarioConfig::figure7().with_packets(400).with_receivers(3);
        let report = FecScenario::new(config).run();
        assert_eq!(report.receivers.len(), 3);
        let average = report.average_reconstructed_pct();
        assert!(average > 0.0 && average <= 100.0);
        assert!(report.average_received_pct() <= average + 1e-9);
    }
}
