//! Fanout scenarios: one source, a shared head chain, N heterogeneous
//! receiver lanes, each with its own closed adaptation loop.
//!
//! The flat [`ScenarioEngine`](super::ScenarioEngine) adapts *one* sender
//! chain that every receiver shares — the paper's multicast argument, where
//! clean receivers absorb the parity inserted for a lossy sibling.  A
//! [`FanoutEngine`] models the heterogeneous alternative: the head chain
//! does the work every receiver shares exactly once, then each receiver
//! lane runs its **own** tail chain, its own loss model, and its own
//! observer/responder loop, so FEC appears *only* on the lane whose link
//! needs it and the wired siblings pay nothing.
//!
//! ```text
//!                          ┌─ tail A (clean)  ──▶ receiver A   loop A (quiet)
//!  source ──▶ head chain ──┼─ tail B (clean)  ──▶ receiver B   loop B (quiet)
//!             (shared,     └─ tail C (lossy)  ──▶ receiver C   loop C inserts
//!              runs once)      fec-encoder(6,4)                 FEC on C only
//! ```
//!
//! Like the flat engine, a fanout run is deterministic per spec and seed,
//! produces a replayable [`ScenarioTrace`], and behaves identically on the
//! synchronous applier and on a live threaded [`Session`].
//!
//! ```
//! use rapidware::engine::{FanoutEngine, FanoutSpec};
//!
//! let spec = FanoutSpec::wired_plus_lossy_wlan().with_packets(400);
//! let outcome = FanoutEngine::new(spec).run_sync();
//! // Every lane surfaced every non-lost packet...
//! assert!(outcome.report.lanes.iter().all(|lane| lane.outcome.undelivered == 0));
//! // ...and only the lossy lane ever carried parity.
//! assert!(outcome.report.lanes.iter().skip(1).all(|lane| lane.parity_sent == 0));
//! ```

use std::collections::HashSet;
use std::fmt;

use rapidware_filters::{ChainSpans, FecDecoderFilter, FilterChain};
use rapidware_media::{AudioConfig, AudioSource};
use rapidware_netsim::{ReceiverId, SimTime, WirelessLan};
use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware_proxy::{FilterRegistry, FilterSpec, PooledSession, Registry, Session};
use rapidware_raplets::{
    apply_to_session, AdaptationAction, AdaptationEngine, FecResponder, LinkSample,
    LossRateObserver,
};
use rapidware_streams::DetachableReceiver;

use super::applier::{apply_actions_to_chain, marker_stream};
use super::report::{LatencySummary, ReceiverOutcome};
use super::spec::{validate_regime, LossRegime, RapletSet, SpecError};
use super::trace::{describe_action, describe_event, ScenarioTrace, TraceEvent};
use super::TimelineEntry;

/// One receiver lane of a [`FanoutSpec`]: its link, and whether it runs an
/// adaptation loop of its own.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSpec {
    /// Lane name (used in traces, reports, and the live session).
    pub name: String,
    /// The loss regime of this lane's link over the whole run.
    pub regime: LossRegime,
    /// Whether this lane runs its own observer/responder loop.  A
    /// non-adaptive lane keeps a static (empty) tail chain.
    pub adaptive: bool,
    /// Whether this lane's loss schedule should provoke at least one FEC
    /// insertion (checked by the health harness; its inverse — no parity,
    /// no actions — is checked when `false`).
    pub expect_adaptation: bool,
}

impl LaneSpec {
    /// A wired (lossless, non-adapting-but-monitored) lane.
    pub fn wired(name: &str) -> Self {
        Self {
            name: name.to_string(),
            regime: LossRegime::Perfect,
            adaptive: true,
            expect_adaptation: false,
        }
    }

    /// A lane with the given loss regime and its own adaptation loop that
    /// is expected to fire.
    pub fn lossy(name: &str, regime: LossRegime) -> Self {
        Self {
            name: name.to_string(),
            regime,
            adaptive: true,
            expect_adaptation: true,
        }
    }
}

/// A complete, declarative description of one fanout scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutSpec {
    /// Scenario name (used in traces and reports).
    pub name: String,
    /// RNG seed for the network simulator.
    pub seed: u64,
    /// Number of source media packets to transmit.
    pub packets: u64,
    /// The media workload.
    pub audio: AudioConfig,
    /// Filters installed on the shared head chain before the run starts.
    pub head_filters: Vec<FilterSpec>,
    /// The receiver lanes, in order.
    pub lanes: Vec<LaneSpec>,
    /// The raplet set installed into each adaptive lane's loop.
    pub raplets: RapletSet,
    /// Width of the sampling window, in source packets.
    pub sample_interval: u64,
    /// Per-stage batch size used by the live session applier.
    pub batch_size: usize,
    /// Whether every lane must converge back to an empty tail chain by the
    /// end of the run.
    pub expect_clean_finish: bool,
}

impl FanoutSpec {
    fn base(name: &str, packets: u64, lanes: Vec<LaneSpec>) -> Self {
        Self {
            name: name.to_string(),
            seed: 2001,
            packets,
            audio: AudioConfig::pcm_8khz_stereo_8bit(),
            head_filters: Vec::new(),
            lanes,
            raplets: RapletSet::paper_default(),
            sample_interval: 50,
            batch_size: 8,
            expect_clean_finish: true,
        }
    }

    /// The acceptance scenario: one lossy WLAN receiver among three wired
    /// peers.  All four lanes run the same adaptation loop; only the lossy
    /// lane's loop fires, so FEC parity appears on exactly one lane while
    /// the wired lanes carry the raw stream untouched.
    pub fn wired_plus_lossy_wlan() -> Self {
        let mut lanes = vec![LaneSpec::lossy(
            "wlan-lossy",
            LossRegime::Phased(vec![
                (SimTime::ZERO, LossRegime::Perfect),
                (SimTime::from_secs(8), LossRegime::Bernoulli { rate: 0.12 }),
                (SimTime::from_secs(26), LossRegime::Perfect),
            ]),
        )];
        lanes.extend((1..4).map(|i| LaneSpec::wired(&format!("wired-{i}"))));
        Self::base("fanout-wired-plus-lossy-wlan", 2_200, lanes)
    }

    /// Two wireless lanes of different severity beside a wired lane: the
    /// heavy lane should reach the strong FEC tier, the light lane the
    /// moderate tier, and the wired lane stays untouched — three different
    /// adaptations of one stream under one session.
    pub fn tiered_wireless() -> Self {
        Self::base(
            "fanout-tiered-wireless",
            2_600,
            vec![
                LaneSpec::lossy(
                    "wlan-heavy",
                    LossRegime::Phased(vec![
                        (SimTime::ZERO, LossRegime::Perfect),
                        (SimTime::from_secs(8), LossRegime::Bernoulli { rate: 0.30 }),
                        (SimTime::from_secs(28), LossRegime::Perfect),
                    ]),
                ),
                LaneSpec::lossy(
                    "wlan-light",
                    LossRegime::Phased(vec![
                        (SimTime::ZERO, LossRegime::Perfect),
                        (SimTime::from_secs(12), LossRegime::Bernoulli { rate: 0.06 }),
                        (SimTime::from_secs(30), LossRegime::Perfect),
                    ]),
                ),
                LaneSpec::wired("wired"),
            ],
        )
    }

    /// The no-false-positive baseline: four wired lanes behind a head tap.
    /// Nothing may adapt, no parity may appear anywhere, and the head
    /// filter's work is shared by all four lanes.
    pub fn all_wired() -> Self {
        let lanes = (0..4).map(|i| LaneSpec::wired(&format!("wired-{i}"))).collect();
        Self {
            head_filters: vec![FilterSpec::new("tap").with_param("name", "head-tap")],
            ..Self::base("fanout-all-wired", 1_200, lanes)
        }
    }

    /// The built-in fanout scenario family, in a stable order.
    pub fn fanout_matrix() -> Vec<Self> {
        vec![
            Self::wired_plus_lossy_wlan(),
            Self::tiered_wireless(),
            Self::all_wired(),
        ]
    }

    /// Checks the spec for degenerate inputs that would otherwise panic
    /// deep inside the engine, the live session, or the simulator: zero
    /// packets, no lanes, duplicate lane names, empty phase lists, nested
    /// walks, zero strides.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.packets == 0 {
            return Err(SpecError::ZeroPackets {
                scenario: self.name.clone(),
            });
        }
        if self.lanes.is_empty() {
            return Err(SpecError::NoLanes {
                scenario: self.name.clone(),
            });
        }
        let mut seen = HashSet::new();
        for lane in &self.lanes {
            if !seen.insert(lane.name.as_str()) {
                return Err(SpecError::DuplicateLane {
                    scenario: self.name.clone(),
                    lane: lane.name.clone(),
                });
            }
            validate_regime(&lane.regime, &self.name, &format!("lane {}", lane.name))?;
        }
        Ok(())
    }

    /// Overrides the simulator seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of source packets.
    #[must_use]
    pub fn with_packets(mut self, packets: u64) -> Self {
        self.packets = packets;
        self
    }

    /// Overrides the live session applier's per-stage batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

/// The chain side of a fanout run: where the head chain and the per-lane
/// tail chains live, and where per-lane adaptation actions land.
///
/// `process` returns one output vector **per lane**, in lane order;
/// implementations must be deterministic for a given input sequence, and
/// both provided appliers must produce identical per-lane streams.
pub trait FanoutApplier {
    /// Short label for reports (`"sync"` / `"session"`).
    fn label(&self) -> &'static str;

    /// Pushes one window of source packets through the head chain and every
    /// lane tail, returning each lane's emissions in lane order.
    fn process(&mut self, packets: Vec<Packet>) -> Vec<Vec<Packet>>;

    /// Applies adaptation actions to one lane's tail chain, returning any
    /// residue flushed out of removed or replaced filters on that lane.
    fn apply(&mut self, lane: usize, actions: &[AdaptationAction]) -> Vec<Packet>;

    /// Names of the filters installed on `lane`'s tail chain.
    fn lane_filters(&self, lane: usize) -> Vec<String>;

    /// Names of the filters installed on the shared head chain.
    fn head_filters(&self) -> Vec<String>;

    /// Ends the stream: flushes the head chain through every lane and every
    /// lane tail, returning each lane's residue in lane order.  The applier
    /// must not be used afterwards.
    fn finish(&mut self) -> Vec<Vec<Packet>>;

    /// End-to-end latency percentiles (head ingress to lane egress, all
    /// lanes merged) observed by the applier's telemetry spans, or `None`
    /// for appliers without instrumentation.  Purely observational —
    /// latency never participates in report equality.
    fn latency(&self) -> Option<LatencySummary> {
        None
    }
}

/// The synchronous fanout applier: one [`FilterChain`] head, one per lane.
pub struct SyncFanoutApplier {
    head: FilterChain,
    lanes: Vec<FilterChain>,
    registry: FilterRegistry,
    telemetry: std::sync::Arc<Registry>,
}

impl fmt::Debug for SyncFanoutApplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyncFanoutApplier")
            .field("head", &self.head.names())
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

impl SyncFanoutApplier {
    /// Creates the sync applier for a spec: the head chain is populated
    /// from `spec.head_filters`, and one empty tail chain per lane.
    ///
    /// # Panics
    ///
    /// Panics if a head filter spec names an unknown kind (specs are
    /// expected to reference registered kinds).
    pub fn for_spec(spec: &FanoutSpec) -> Self {
        let registry = FilterRegistry::with_builtins();
        let telemetry = Registry::new();
        let mut head = FilterChain::new();
        // Interior spans on the head stamp ingress; egress spans on each
        // lane close the ingress-to-egress measurement, so lane e2e covers
        // the full head-plus-tail path.
        head.set_spans(ChainSpans::interior(
            &telemetry,
            format!("session.{}.head", spec.name),
        ));
        for filter_spec in &spec.head_filters {
            let filter = registry
                .instantiate(filter_spec)
                .expect("head filter specs reference registered kinds");
            head.push_back(filter).expect("appending to a fresh chain never fails");
        }
        let lanes = spec
            .lanes
            .iter()
            .map(|lane| {
                let mut chain = FilterChain::new();
                chain.set_spans(ChainSpans::egress(
                    &telemetry,
                    format!("session.{}.lane.{}", spec.name, lane.name),
                ));
                chain
            })
            .collect();
        Self {
            head,
            lanes,
            registry,
            telemetry,
        }
    }
}

impl FanoutApplier for SyncFanoutApplier {
    fn label(&self) -> &'static str {
        "sync"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Vec<Packet>> {
        let shared = self
            .head
            .process_batch(packets)
            .expect("scenario head filters do not fail");
        // Like the live fanout worker: clone for all but the last lane,
        // move into the last.
        let last = self.lanes.len().saturating_sub(1);
        let mut shared = Some(shared);
        self.lanes
            .iter_mut()
            .enumerate()
            .map(|(index, lane)| {
                let batch = if index == last {
                    shared.take().expect("only the last lane takes the batch")
                } else {
                    shared.as_ref().expect("batch present until the last lane").clone()
                };
                lane.process_batch(batch).expect("scenario lane filters do not fail")
            })
            .collect()
    }

    fn apply(&mut self, lane: usize, actions: &[AdaptationAction]) -> Vec<Packet> {
        apply_actions_to_chain(&mut self.lanes[lane], &self.registry, actions)
    }

    fn lane_filters(&self, lane: usize) -> Vec<String> {
        self.lanes[lane].names()
    }

    fn head_filters(&self) -> Vec<String> {
        self.head.names()
    }

    fn finish(&mut self) -> Vec<Vec<Packet>> {
        // The head's tail residue (e.g. a partial block of a head-side
        // filter) flows through every lane before the lanes flush, exactly
        // as EOF propagates through a live session.
        let head_residue = self.head.flush().expect("scenario head filters do not fail");
        self.lanes
            .iter_mut()
            .map(|lane| {
                let mut out = lane
                    .process_batch(head_residue.clone())
                    .expect("scenario lane filters do not fail");
                out.extend(lane.flush().expect("scenario lane filters do not fail"));
                out
            })
            .collect()
    }

    fn latency(&self) -> Option<LatencySummary> {
        LatencySummary::from_snapshot(&self.telemetry.snapshot())
    }
}

/// The live fanout applier: a threaded [`Session`] (shared head chain,
/// fanout worker, one tail chain per lane), reconfigured per lane through
/// the session control surface while packets flow.
///
/// Determinism uses the same quiescence trick as the flat threaded applier:
/// a [`PacketKind::Control`] marker is pushed through the head chain, fans
/// out to every lane, and each lane is drained until its copy of the marker
/// emerges.
pub struct SessionFanoutApplier {
    session: Session,
    telemetry: std::sync::Arc<Registry>,
    lane_names: Vec<String>,
    outputs: Vec<DetachableReceiver<Packet>>,
    /// Packets collected for a lane outside its own turn (possible only if
    /// a caller interleaves `apply` with undrained traffic); prepended to
    /// that lane's next `process` result so nothing is ever dropped.
    pending: Vec<Vec<Packet>>,
    next_marker: u64,
    finished: bool,
}

impl fmt::Debug for SessionFanoutApplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionFanoutApplier")
            .field("lanes", &self.lane_names)
            .finish()
    }
}

impl SessionFanoutApplier {
    /// Spins up a live session for a spec: head filters installed, one lane
    /// per [`LaneSpec`], pipes sized so a whole sample window (plus parity
    /// overhead) fits without blocking the driver.
    ///
    /// # Panics
    ///
    /// Panics if the session cannot be constructed (fresh sessions only
    /// fail on resource exhaustion).
    pub fn for_spec(spec: &FanoutSpec) -> Self {
        let capacity = (spec.sample_interval.max(32) as usize) * 4;
        let session = Session::with_config(
            spec.name.clone(),
            FilterRegistry::with_builtins(),
            capacity,
            spec.batch_size.max(1),
        )
        .expect("fresh sessions are always constructible");
        // Spans go on before head filters and lanes exist so every worker
        // picks them up when it spawns.
        let telemetry = Registry::new();
        session.enable_telemetry(&telemetry);
        for (position, filter_spec) in spec.head_filters.iter().enumerate() {
            session
                .insert_head_filter(position, filter_spec)
                .expect("head filter specs reference registered kinds");
        }
        let mut outputs = Vec::with_capacity(spec.lanes.len());
        let mut lane_names = Vec::with_capacity(spec.lanes.len());
        for lane in &spec.lanes {
            outputs.push(session.add_lane(&lane.name).expect("spec lane names are unique"));
            lane_names.push(lane.name.clone());
        }
        let lane_count = lane_names.len();
        Self {
            session,
            telemetry,
            lane_names,
            outputs,
            pending: vec![Vec::new(); lane_count],
            next_marker: 0,
            finished: false,
        }
    }

    /// Sends one control marker through the head chain (it fans out to
    /// every lane) and drains **all lanes concurrently** until each copy of
    /// the marker emerges, returning the per-lane packets that preceded it.
    fn quiesce_all(&mut self) -> Vec<Vec<Packet>> {
        let marker_seq = self.next_marker;
        self.next_marker += 1;
        send_marker(&self.session.input(), marker_seq);
        drain_lanes_until_marker(&self.outputs, marker_seq)
    }
}

fn send_marker(input: &rapidware_streams::DetachableSender<Packet>, marker_seq: u64) {
    let marker =
        Packet::new(marker_stream(), SeqNo::new(marker_seq), PacketKind::Control, Vec::new());
    input.send(marker).expect("session input stays open");
}

/// Drains **all lanes concurrently** until each one yields its copy of
/// marker `marker_seq`, returning the per-lane packets that preceded it.
///
/// The drain is round-robin with non-blocking receives rather than
/// lane-by-lane: the fanout stage back-pressures against full lane pipes,
/// so blocking on lane 0 while the fanout is parked against lane 1 would
/// deadlock whenever a window (amplified by an expanding head filter)
/// overflows a pipe.  Draining every lane keeps the fanout moving no
/// matter which pipe fills first.  Shared by the threaded-session and
/// pooled-session appliers so the protocol cannot drift between runtimes.
pub(super) fn drain_lanes_until_marker(
    outputs: &[DetachableReceiver<Packet>],
    marker_seq: u64,
) -> Vec<Vec<Packet>> {
    let mut collected: Vec<Vec<Packet>> = vec![Vec::new(); outputs.len()];
    let mut done = vec![false; outputs.len()];
    while done.iter().any(|flag| !flag) {
        let mut progressed = false;
        for lane in 0..outputs.len() {
            if done[lane] {
                continue;
            }
            while let Ok(packet) = outputs[lane].try_recv() {
                progressed = true;
                if packet.kind() == PacketKind::Control && packet.stream() == marker_stream() {
                    if packet.seq().value() == marker_seq {
                        done[lane] = true;
                        break;
                    }
                    // Stale marker from an earlier quiescence point.
                    continue;
                }
                collected[lane].push(packet);
            }
        }
        if !progressed {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
    collected
}

/// Round-robin drains every lane to end of stream, appending everything
/// (markers excluded) to `residue`; the finishing counterpart of
/// [`drain_lanes_until_marker`].
pub(super) fn drain_lanes_to_eof(outputs: &[DetachableReceiver<Packet>], residue: &mut [Vec<Packet>]) {
    let mut done = vec![false; outputs.len()];
    while done.iter().any(|flag| !flag) {
        let mut progressed = false;
        for lane in 0..outputs.len() {
            if done[lane] {
                continue;
            }
            loop {
                match outputs[lane].try_recv() {
                    Ok(packet) => {
                        progressed = true;
                        if packet.kind() == PacketKind::Control
                            && packet.stream() == marker_stream()
                        {
                            continue;
                        }
                        residue[lane].push(packet);
                    }
                    Err(rapidware_streams::TryRecvError::Empty) => break,
                    Err(_) => {
                        done[lane] = true;
                        break;
                    }
                }
            }
        }
        if !progressed {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}

impl FanoutApplier for SessionFanoutApplier {
    fn label(&self) -> &'static str {
        "session"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Vec<Packet>> {
        let input = self.session.input();
        for packet in packets {
            input.send(packet).expect("session input stays open");
        }
        let mut out = self.quiesce_all();
        for (lane, extra) in out.iter_mut().enumerate() {
            if !self.pending[lane].is_empty() {
                let mut merged = std::mem::take(&mut self.pending[lane]);
                merged.append(extra);
                *extra = merged;
            }
        }
        out
    }

    fn apply(&mut self, lane: usize, actions: &[AdaptationAction]) -> Vec<Packet> {
        apply_to_session(&self.session, &self.lane_names[lane], actions)
            .expect("responder actions are valid for the live lane");
        // Residue flushed out of the removed/replaced lane filter is
        // buffered at this lane's endpoint.  Quiescing drains every lane
        // (see quiesce_all); the other lanes have no traffic in flight at
        // an apply point, but anything they do produce is parked in
        // `pending` and handed back with their next window.
        let mut all = self.quiesce_all();
        let target = std::mem::take(&mut all[lane]);
        for (index, extra) in all.into_iter().enumerate() {
            if !extra.is_empty() {
                self.pending[index].extend(extra);
            }
        }
        target
    }

    fn lane_filters(&self, lane: usize) -> Vec<String> {
        self.session
            .lane_filter_names(&self.lane_names[lane])
            .expect("spec lanes exist for the applier's lifetime")
    }

    fn head_filters(&self) -> Vec<String> {
        self.session.head_filter_names()
    }

    fn finish(&mut self) -> Vec<Vec<Packet>> {
        self.finished = true;
        self.session.close_input();
        // Round-robin drain to EOF on every lane, for the same reason as
        // quiesce_all: the fanout worker must stay free to move the final
        // flush through whichever lane pipe fills first.
        let mut residue: Vec<Vec<Packet>> = std::mem::take(&mut self.pending);
        drain_lanes_to_eof(&self.outputs, &mut residue);
        residue
    }

    fn latency(&self) -> Option<LatencySummary> {
        LatencySummary::from_snapshot(&self.telemetry.snapshot())
    }
}

impl Drop for SessionFanoutApplier {
    fn drop(&mut self) {
        if !self.finished {
            self.session.close_input();
        }
        let _ = self.session.shutdown();
    }
}

/// The pooled fanout applier: a [`PooledSession`] on a sharded worker-pool
/// [`Runtime`](rapidware_proxy::Runtime) — head chain, fanout stage, and
/// every lane tail run as cooperative tasks on
/// [`POOLED_APPLIER_SHARDS`](super::POOLED_APPLIER_SHARDS) fixed workers,
/// with zero dedicated threads per session.
///
/// Uses the same control-marker quiescence and round-robin lane drains as
/// [`SessionFanoutApplier`], and must agree with it (and the sync applier)
/// byte for byte.
pub struct RuntimeFanoutApplier {
    runtime: std::sync::Arc<rapidware_proxy::Runtime>,
    session: PooledSession,
    telemetry: std::sync::Arc<Registry>,
    lane_names: Vec<String>,
    outputs: Vec<DetachableReceiver<Packet>>,
    /// Packets collected for a lane outside its own turn; prepended to that
    /// lane's next `process` result so nothing is ever dropped.
    pending: Vec<Vec<Packet>>,
    next_marker: u64,
    finished: bool,
}

impl fmt::Debug for RuntimeFanoutApplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeFanoutApplier")
            .field("lanes", &self.lane_names)
            .finish()
    }
}

impl RuntimeFanoutApplier {
    /// Spins up a pooled session for a spec on a fresh worker pool: head
    /// filters installed, one lane per [`LaneSpec`], pipes sized so a whole
    /// sample window (plus parity overhead) fits without blocking the
    /// driver.
    ///
    /// # Panics
    ///
    /// Panics if the session cannot be constructed (fresh sessions only
    /// fail on resource exhaustion).
    pub fn for_spec(spec: &FanoutSpec) -> Self {
        let capacity = (spec.sample_interval.max(32) as usize) * 4;
        let config = rapidware_proxy::RuntimeConfig::new(
            super::POOLED_APPLIER_SHARDS,
            spec.batch_size.max(1),
        )
        .with_pipe_capacity(capacity);
        let runtime = rapidware_proxy::Runtime::start(config);
        let session = runtime.add_session_with(
            spec.name.clone(),
            FilterRegistry::with_builtins(),
            capacity,
            spec.batch_size.max(1),
        );
        // Session spans plus runtime profiling go on before the head
        // filters and lanes exist, mirroring the threaded applier.
        let telemetry = Registry::new();
        runtime.enable_telemetry(&telemetry);
        session.enable_telemetry(&telemetry);
        for (position, filter_spec) in spec.head_filters.iter().enumerate() {
            session
                .insert_head_filter(position, filter_spec)
                .expect("head filter specs reference registered kinds");
        }
        let mut outputs = Vec::with_capacity(spec.lanes.len());
        let mut lane_names = Vec::with_capacity(spec.lanes.len());
        for lane in &spec.lanes {
            outputs.push(session.add_lane(&lane.name).expect("spec lane names are unique"));
            lane_names.push(lane.name.clone());
        }
        let lane_count = lane_names.len();
        Self {
            runtime,
            session,
            telemetry,
            lane_names,
            outputs,
            pending: vec![Vec::new(); lane_count],
            next_marker: 0,
            finished: false,
        }
    }

    fn quiesce_all(&mut self) -> Vec<Vec<Packet>> {
        let marker_seq = self.next_marker;
        self.next_marker += 1;
        send_marker(&self.session.input(), marker_seq);
        drain_lanes_until_marker(&self.outputs, marker_seq)
    }
}

impl FanoutApplier for RuntimeFanoutApplier {
    fn label(&self) -> &'static str {
        "pooled"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Vec<Packet>> {
        let input = self.session.input();
        for packet in packets {
            input.send(packet).expect("session input stays open");
        }
        let mut out = self.quiesce_all();
        for (lane, extra) in out.iter_mut().enumerate() {
            if !self.pending[lane].is_empty() {
                let mut merged = std::mem::take(&mut self.pending[lane]);
                merged.append(extra);
                *extra = merged;
            }
        }
        out
    }

    fn apply(&mut self, lane: usize, actions: &[AdaptationAction]) -> Vec<Packet> {
        rapidware_raplets::apply_to_pooled_session(
            &self.session,
            &self.lane_names[lane],
            actions,
        )
        .expect("responder actions are valid for the pooled lane");
        let mut all = self.quiesce_all();
        let target = std::mem::take(&mut all[lane]);
        for (index, extra) in all.into_iter().enumerate() {
            if !extra.is_empty() {
                self.pending[index].extend(extra);
            }
        }
        target
    }

    fn lane_filters(&self, lane: usize) -> Vec<String> {
        self.session
            .lane_filter_names(&self.lane_names[lane])
            .expect("spec lanes exist for the applier's lifetime")
    }

    fn head_filters(&self) -> Vec<String> {
        self.session.head_filter_names()
    }

    fn finish(&mut self) -> Vec<Vec<Packet>> {
        self.finished = true;
        self.session.close_input();
        let mut residue: Vec<Vec<Packet>> = std::mem::take(&mut self.pending);
        drain_lanes_to_eof(&self.outputs, &mut residue);
        residue
    }

    fn latency(&self) -> Option<LatencySummary> {
        LatencySummary::from_snapshot(&self.telemetry.snapshot())
    }
}

impl Drop for RuntimeFanoutApplier {
    fn drop(&mut self) {
        if !self.finished {
            self.session.close_input();
        }
        let _ = self.session.shutdown();
        let _ = self.runtime.shutdown();
    }
}

/// Final accounting for one receiver lane of a fanout run.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneReport {
    /// Lane name (from the spec).
    pub name: String,
    /// Delivery accounting for this lane's receiver.
    pub outcome: ReceiverOutcome,
    /// Parity packets this lane transmitted.
    pub parity_sent: u64,
    /// This lane's adaptation timeline (events, actions, chain states).
    pub timeline: Vec<TimelineEntry>,
    /// Tail filters still installed on this lane when the run ended.
    pub final_filters: Vec<String>,
}

impl LaneReport {
    /// `true` if this lane's timeline shows a FEC insertion followed by its
    /// removal, in that order.
    pub fn fec_inserted_then_removed(&self) -> bool {
        let insert = self
            .timeline
            .iter()
            .position(|t| t.entry.starts_with("action insert") && t.entry.contains("fec-encoder"));
        let remove = self
            .timeline
            .iter()
            .position(|t| t.entry.starts_with("action remove fec-encoder"));
        matches!((insert, remove), (Some(i), Some(r)) if i < r)
    }
}

/// The outcome of one fanout run: per-lane accounting plus head-chain
/// state.
#[derive(Debug, Clone)]
pub struct FanoutReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Simulator seed of the run.
    pub seed: u64,
    /// Source payload packets generated upstream of the head chain.
    pub source_packets_sent: u64,
    /// Filters on the shared head chain when the run ended.
    pub head_filters: Vec<String>,
    /// Per-lane accounting, in spec order.
    pub lanes: Vec<LaneReport>,
    /// End-to-end latency percentiles (head ingress to lane egress, all
    /// lanes merged), when the applier carried telemetry spans.  Excluded
    /// from `PartialEq`: latency is host- and scheduler-dependent, while
    /// the rest of the report is deterministic given the seed.
    pub latency: Option<LatencySummary>,
}

impl PartialEq for FanoutReport {
    fn eq(&self, other: &Self) -> bool {
        // `latency` is deliberately omitted: replayed traces carry no
        // timing, and cross-applier byte-identity must not depend on
        // wall-clock measurements.
        self.scenario == other.scenario
            && self.seed == other.seed
            && self.source_packets_sent == other.source_packets_sent
            && self.head_filters == other.head_filters
            && self.lanes == other.lanes
    }
}

impl FanoutReport {
    /// Total parity packets across all lanes.
    pub fn parity_total(&self) -> u64 {
        self.lanes.iter().map(|l| l.parity_sent).sum()
    }

    /// Total packets the links delivered but lane pipelines failed to
    /// surface.  Must be zero in a healthy run.
    pub fn undelivered_total(&self) -> u64 {
        self.lanes.iter().map(|l| l.outcome.undelivered).sum()
    }

    /// Reconstructs the report of the run that produced `trace`, without
    /// re-simulating: per-lane timelines come from the `Lane*` events,
    /// totals from [`TraceEvent::LaneTotals`], and head state from
    /// [`TraceEvent::FanoutSummary`].
    pub fn replay(trace: &ScenarioTrace) -> FanoutReport {
        let mut report = FanoutReport {
            scenario: trace.scenario().to_string(),
            seed: trace.seed(),
            source_packets_sent: 0,
            head_filters: Vec::new(),
            lanes: Vec::new(),
            // Traces record packet accounting, not wall-clock timing.
            latency: None,
        };
        let mut timelines: Vec<(usize, TimelineEntry)> = Vec::new();
        for event in trace.events() {
            match event {
                TraceEvent::LaneObserved { lane, time, event } => timelines.push((
                    *lane,
                    TimelineEntry {
                        time: *time,
                        entry: format!("event {event}"),
                    },
                )),
                TraceEvent::LaneActionApplied { lane, time, action } => timelines.push((
                    *lane,
                    TimelineEntry {
                        time: *time,
                        entry: format!("action {action}"),
                    },
                )),
                TraceEvent::LaneChainReconfigured { lane, time, filters } => timelines.push((
                    *lane,
                    TimelineEntry {
                        time: *time,
                        entry: format!(
                            "chain {}",
                            if filters.is_empty() { "-".to_string() } else { filters.join("+") }
                        ),
                    },
                )),
                TraceEvent::LaneTotals {
                    name,
                    delivered,
                    recovered,
                    lost,
                    undelivered,
                    parity_sent,
                    final_filters,
                    ..
                } => report.lanes.push(LaneReport {
                    name: name.clone(),
                    outcome: ReceiverOutcome {
                        delivered: *delivered,
                        recovered: *recovered,
                        lost: *lost,
                        undelivered: *undelivered,
                    },
                    parity_sent: *parity_sent,
                    timeline: Vec::new(),
                    final_filters: final_filters.clone(),
                }),
                TraceEvent::FanoutSummary {
                    source_packets,
                    head_filters,
                } => {
                    report.source_packets_sent = *source_packets;
                    report.head_filters = head_filters.clone();
                }
                _ => {}
            }
        }
        for (lane, entry) in timelines {
            if let Some(report_lane) = report.lanes.get_mut(lane) {
                report_lane.timeline.push(entry);
            }
        }
        report
    }
}

impl fmt::Display for FanoutReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (seed {}): {} source packets, head [{}]",
            self.scenario,
            self.seed,
            self.source_packets_sent,
            self.head_filters.join("+")
        )?;
        for lane in &self.lanes {
            writeln!(
                f,
                "  {}: delivered={} recovered={} lost={} undelivered={} parity={} steps={} final={}",
                lane.name,
                lane.outcome.delivered,
                lane.outcome.recovered,
                lane.outcome.lost,
                lane.outcome.undelivered,
                lane.parity_sent,
                lane.timeline.len(),
                if lane.final_filters.is_empty() {
                    "-".to_string()
                } else {
                    lane.final_filters.join("+")
                }
            )?;
        }
        Ok(())
    }
}

/// Everything a fanout run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutOutcome {
    /// Per-lane accounting and adaptation timelines.
    pub report: FanoutReport,
    /// The replayable record (`FanoutReport::replay(&trace) == report`).
    pub trace: ScenarioTrace,
}

impl FanoutOutcome {
    /// The fanout health checks, shared by the scenario-matrix test harness
    /// and the `scenario_matrix` bench binary: one line per violated
    /// property of a run against its spec.
    pub fn health_problems(&self, spec: &FanoutSpec) -> Vec<String> {
        let report = &self.report;
        let mut problems = Vec::new();
        if report.source_packets_sent != spec.packets {
            problems.push(format!(
                "transmitted {} source packets, spec says {}",
                report.source_packets_sent, spec.packets
            ));
        }
        if report.lanes.len() != spec.lanes.len() {
            problems.push(format!(
                "report covers {} lanes, spec has {}",
                report.lanes.len(),
                spec.lanes.len()
            ));
            return problems;
        }
        for (lane_spec, lane) in spec.lanes.iter().zip(&report.lanes) {
            let name = &lane_spec.name;
            let outcome = &lane.outcome;
            let accounted =
                outcome.delivered + outcome.recovered + outcome.lost + outcome.undelivered;
            if accounted != spec.packets {
                problems.push(format!(
                    "lane {name} accounts for {accounted} of {} packets",
                    spec.packets
                ));
            }
            if outcome.undelivered > 0 {
                problems.push(format!(
                    "lane {name}: {} non-lost data packets undelivered",
                    outcome.undelivered
                ));
            }
            if lane_spec.expect_adaptation {
                if !lane.fec_inserted_then_removed() {
                    problems
                        .push(format!("lane {name}: missing insert-then-remove adaptation cycle"));
                }
                if lane.parity_sent == 0 {
                    problems.push(format!("lane {name}: no parity on the air"));
                }
                if outcome.recovered == 0 {
                    problems.push(format!("lane {name}: FEC never repaired a loss"));
                }
            } else {
                if !lane.timeline.is_empty() {
                    problems.push(format!(
                        "lane {name}: {} spurious adaptation steps on a quiet link",
                        lane.timeline.len()
                    ));
                }
                if lane.parity_sent != 0 {
                    problems.push(format!(
                        "lane {name}: unexpected parity on a quiet link (FEC must stay on the lossy lane)"
                    ));
                }
            }
            if spec.expect_clean_finish && !lane.final_filters.is_empty() {
                problems.push(format!(
                    "lane {name} did not converge: {:?}",
                    lane.final_filters
                ));
            }
        }
        if FanoutReport::replay(&self.trace) != self.report {
            problems.push("replaying the trace does not reproduce the report".to_string());
        }
        problems
    }
}

/// Per-lane simulation state on the receiver side of the link.
struct LaneRuntime {
    receiver: ReceiverId,
    adaptation: Option<AdaptationEngine>,
    logged: usize,
    decoders: Vec<((usize, usize), FecDecoderFilter)>,
    received: HashSet<u64>,
    emitted: HashSet<u64>,
    parity_sent: u64,
    window_sent: u64,
    window_delivered: u64,
    window_bytes: u64,
}

/// Drives one [`FanoutSpec`] through the full per-lane closed loop.
#[derive(Debug, Clone)]
pub struct FanoutEngine {
    spec: FanoutSpec,
}

impl FanoutEngine {
    /// Creates an engine for the given spec.
    pub fn new(spec: FanoutSpec) -> Self {
        Self { spec }
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &FanoutSpec {
        &self.spec
    }

    /// Runs the scenario on the synchronous [`SyncFanoutApplier`].
    pub fn run_sync(&self) -> FanoutOutcome {
        self.run_with(&mut SyncFanoutApplier::for_spec(&self.spec))
    }

    /// Like [`run_sync`](Self::run_sync), but rejects degenerate specs with
    /// a typed [`SpecError`] instead of panicking.
    pub fn try_run_sync(&self) -> Result<FanoutOutcome, SpecError> {
        self.spec.validate()?;
        self.try_run_with(&mut SyncFanoutApplier::for_spec(&self.spec))
    }

    /// Runs the scenario on a live threaded [`SessionFanoutApplier`].
    pub fn run_session(&self) -> FanoutOutcome {
        self.run_with(&mut SessionFanoutApplier::for_spec(&self.spec))
    }

    /// Runs the scenario on a [`RuntimeFanoutApplier`]: the whole session
    /// multiplexed over a sharded worker pool.  The trace must be
    /// byte-identical to the sync and threaded-session runs.
    pub fn run_pooled(&self) -> FanoutOutcome {
        self.run_with(&mut RuntimeFanoutApplier::for_spec(&self.spec))
    }

    /// Runs the scenario on a [`UdpFanoutApplier`](super::UdpFanoutApplier):
    /// the session's ingress and every lane egress are loopback UDP
    /// sockets.  The report must agree with the in-process appliers at the
    /// same seed.
    pub fn run_udp(&self) -> FanoutOutcome {
        self.run_with(&mut super::UdpFanoutApplier::for_spec(&self.spec))
    }

    /// Runs the scenario on a
    /// [`SharedUdpFanoutApplier`](super::SharedUdpFanoutApplier): the same
    /// wire path as [`run_udp`](Self::run_udp), but the whole session rides
    /// one shared carrier socket demuxed by the readiness reactor onto the
    /// worker pool.  The report must agree with the in-process appliers at
    /// the same seed.
    pub fn run_udp_shared(&self) -> FanoutOutcome {
        self.run_with(&mut super::SharedUdpFanoutApplier::for_spec(&self.spec))
    }

    /// Runs the scenario against any applier.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (see [`FanoutSpec::validate`]) or a
    /// filter fails, which the built-in fanout scenarios never do.  Use
    /// [`try_run_with`](Self::try_run_with) to get degenerate specs back as
    /// typed errors instead.
    pub fn run_with(&self, applier: &mut dyn FanoutApplier) -> FanoutOutcome {
        self.try_run_with(applier).unwrap_or_else(|err| panic!("invalid fanout spec: {err}"))
    }

    /// Runs the scenario against any applier, rejecting degenerate specs
    /// with a typed [`SpecError`] instead of panicking.
    pub fn try_run_with(
        &self,
        applier: &mut dyn FanoutApplier,
    ) -> Result<FanoutOutcome, SpecError> {
        let spec = &self.spec;
        spec.validate()?;
        let mut trace = ScenarioTrace::new(spec.name.clone(), spec.seed);

        // The topology: one seeded LAN, one receiver per lane, each with
        // its own loss schedule.
        let mut lan = WirelessLan::wavelan_2mbps(spec.seed);
        let mut lanes: Vec<LaneRuntime> = spec
            .lanes
            .iter()
            .map(|lane_spec| {
                lane_spec.regime.attach(&mut lan, &lane_spec.name);
                let receiver = *lan.receiver_ids().last().expect("receiver was just attached");
                LaneRuntime {
                    receiver,
                    adaptation: lane_spec.adaptive.then(|| lane_engine(&spec.raplets)),
                    logged: 0,
                    decoders: decoder_codes(&spec.raplets)
                        .into_iter()
                        .map(|(n, k)| {
                            (
                                (n, k),
                                FecDecoderFilter::new(n, k).expect("spec uses valid FEC parameters"),
                            )
                        })
                        .collect(),
                    received: HashSet::new(),
                    emitted: HashSet::new(),
                    parity_sent: 0,
                    window_sent: 0,
                    window_delivered: 0,
                    window_bytes: 0,
                }
            })
            .collect();

        let mut source = AudioSource::new(StreamId::new(1), spec.audio);
        let mut source_packets = 0u64;
        let mut window_start = SimTime::ZERO;
        let mut sent = 0u64;

        while sent < spec.packets {
            let count = (spec.packets - sent).min(spec.sample_interval.max(1));
            let window: Vec<Packet> = (0..count).map(|_| source.next_packet()).collect();
            sent += count;
            source_packets += count;
            let now = SimTime::from_micros(
                window.last().expect("windows are non-empty").timestamp_us(),
            );
            let first_ts = SimTime::from_micros(window[0].timestamp_us());

            // Head once, then each lane's tail; transmit per lane on its
            // own link (lane order fixes the RNG draw order, so runs are
            // identical across appliers).
            let per_lane = applier.process(window);
            for (index, outgoing) in per_lane.iter().enumerate() {
                transmit_on_lane(&mut lan, &mut lanes[index], outgoing, first_ts, spec.packets);
            }

            // Sample every lane's link over the window, then run that
            // lane's own loop.
            for (index, lane) in lanes.iter_mut().enumerate() {
                let sample = LinkSample::new(now, lane.window_sent, lane.window_delivered)
                    .with_window(window_start, lane.window_bytes);
                trace.push(TraceEvent::LaneSample {
                    lane: index,
                    time: now,
                    sent: lane.window_sent,
                    delivered: lane.window_delivered,
                    loss_rate: sample.loss_rate(),
                });
                lane.window_sent = 0;
                lane.window_delivered = 0;
                lane.window_bytes = 0;

                let Some(adaptation) = lane.adaptation.as_mut() else {
                    continue;
                };
                let actions = adaptation.ingest(&sample);
                for record in &adaptation.log()[lane.logged..] {
                    trace.push(TraceEvent::LaneObserved {
                        lane: index,
                        time: record.time,
                        event: describe_event(&record.event),
                    });
                    for action in &record.actions {
                        trace.push(TraceEvent::LaneActionApplied {
                            lane: index,
                            time: record.time,
                            action: describe_action(action),
                        });
                    }
                }
                lane.logged = adaptation.log().len();
                if !actions.is_empty() {
                    let residue = applier.apply(index, &actions);
                    transmit_on_lane(&mut lan, lane, &residue, now, spec.packets);
                    trace.push(TraceEvent::LaneChainReconfigured {
                        lane: index,
                        time: now,
                        filters: applier.lane_filters(index),
                    });
                }
            }
            window_start = now;
        }

        // End of stream: flush head and tails; per-lane residue still has
        // to cross each lane's link.
        let final_time = SimTime::from_micros(spec.packets * spec.audio.packet_interval_us());
        let final_lane_filters: Vec<Vec<String>> =
            (0..lanes.len()).map(|index| applier.lane_filters(index)).collect();
        let head_filters = applier.head_filters();
        let residues = applier.finish();
        for (index, residue) in residues.iter().enumerate() {
            transmit_on_lane(&mut lan, &mut lanes[index], residue, final_time, spec.packets);
        }

        // Final accounting, one totals record per lane.
        let mut report_lanes = Vec::with_capacity(lanes.len());
        for (index, lane) in lanes.iter().enumerate() {
            let mut outcome = ReceiverOutcome {
                delivered: 0,
                recovered: 0,
                lost: 0,
                undelivered: 0,
            };
            for seq in 0..spec.packets {
                match (lane.received.contains(&seq), lane.emitted.contains(&seq)) {
                    (true, true) => outcome.delivered += 1,
                    (true, false) => outcome.undelivered += 1,
                    (false, true) => outcome.recovered += 1,
                    (false, false) => outcome.lost += 1,
                }
            }
            let name = spec.lanes[index].name.clone();
            trace.push(TraceEvent::LaneTotals {
                lane: index,
                name: name.clone(),
                delivered: outcome.delivered,
                recovered: outcome.recovered,
                lost: outcome.lost,
                undelivered: outcome.undelivered,
                parity_sent: lane.parity_sent,
                final_filters: final_lane_filters[index].clone(),
            });
            report_lanes.push(LaneReport {
                name,
                outcome,
                parity_sent: lane.parity_sent,
                timeline: Vec::new(),
                final_filters: final_lane_filters[index].clone(),
            });
        }
        trace.push(TraceEvent::FanoutSummary {
            source_packets,
            head_filters: head_filters.clone(),
        });

        let mut report = FanoutReport {
            scenario: spec.name.clone(),
            seed: spec.seed,
            source_packets_sent: source_packets,
            head_filters,
            lanes: report_lanes,
            latency: applier.latency(),
        };
        // Per-lane timelines are exactly what replay extracts from the
        // trace; reuse it so the two can never disagree structurally.
        let replayed = FanoutReport::replay(&trace);
        for (lane, replayed_lane) in report.lanes.iter_mut().zip(replayed.lanes) {
            lane.timeline = replayed_lane.timeline;
        }
        Ok(FanoutOutcome { report, trace })
    }
}

/// Builds the per-lane adaptation loop from a raplet set.
fn lane_engine(raplets: &RapletSet) -> AdaptationEngine {
    let (high, low) = raplets.loss_thresholds;
    let mut engine = AdaptationEngine::new();
    engine.add_observer(Box::new(
        LossRateObserver::with_thresholds(high, low).with_smoothing(raplets.smoothing),
    ));
    engine.add_responder(Box::new(FecResponder::new(
        0,
        raplets.fec_moderate,
        raplets.fec_strong,
        raplets.strong_threshold,
    )));
    engine
}

/// The distinct (n, k) codes a lane's receiver must be able to decode.
fn decoder_codes(raplets: &RapletSet) -> Vec<(usize, usize)> {
    let mut codes = vec![raplets.fec_moderate];
    if raplets.fec_strong != raplets.fec_moderate {
        codes.push(raplets.fec_strong);
    }
    codes
}

/// Puts one lane's packets on that lane's link, in order, and routes
/// deliveries into the lane's decoders and bookkeeping.  Payload packets
/// ride at their own media timestamp; parity (and any other derived
/// traffic) rides at the timestamp of the payload that triggered it, which
/// keeps timing identical across appliers.
fn transmit_on_lane(
    lan: &mut WirelessLan,
    lane: &mut LaneRuntime,
    packets: &[Packet],
    start_time: SimTime,
    total_sources: u64,
) {
    let mut air_time = start_time;
    for packet in packets {
        let is_payload = packet.kind().is_payload();
        if is_payload {
            air_time = SimTime::from_micros(packet.timestamp_us());
            lane.window_sent += 1;
        } else if packet.kind().is_parity() {
            lane.parity_sent += 1;
        }
        let record = lan.unicast(lane.receiver, air_time, packet.wire_len());
        if !record.is_delivered() {
            continue;
        }
        if is_payload {
            lane.received.insert(packet.seq().value());
            lane.window_delivered += 1;
            lane.window_bytes += packet.payload_len() as u64;
        }
        super::feed_decoders(packet, &mut lane.decoders, &mut lane.emitted, total_sources);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_wired_fanout_delivers_everything_without_adapting() {
        let spec = FanoutSpec::all_wired().with_packets(300);
        let outcome = FanoutEngine::new(spec.clone()).run_sync();
        assert_eq!(outcome.health_problems(&spec), Vec::<String>::new());
        assert_eq!(outcome.report.source_packets_sent, 300);
        assert_eq!(outcome.report.parity_total(), 0);
        assert_eq!(outcome.report.head_filters, vec!["head-tap"]);
        for lane in &outcome.report.lanes {
            assert_eq!(lane.outcome.delivered, 300);
            assert!(lane.timeline.is_empty());
        }
    }

    #[test]
    fn fec_appears_only_on_the_lossy_lane() {
        let spec = FanoutSpec::wired_plus_lossy_wlan();
        let outcome = FanoutEngine::new(spec.clone()).run_sync();
        assert_eq!(outcome.health_problems(&spec), Vec::<String>::new());
        let report = &outcome.report;
        let lossy = &report.lanes[0];
        assert!(lossy.fec_inserted_then_removed());
        assert!(lossy.parity_sent > 0);
        assert!(lossy.outcome.recovered > 0);
        for wired in &report.lanes[1..] {
            assert_eq!(wired.parity_sent, 0, "{} must carry no parity", wired.name);
            assert!(wired.timeline.is_empty(), "{} must not adapt", wired.name);
            assert_eq!(wired.outcome.delivered, spec.packets);
        }
        // The trace names the lanes and replays into the identical report.
        assert_eq!(FanoutReport::replay(&outcome.trace), *report);
        assert!(outcome.trace.canonical_text().contains("name=wlan-lossy"));
    }

    #[test]
    fn tiered_lanes_reach_different_fec_strengths() {
        let spec = FanoutSpec::tiered_wireless();
        let outcome = FanoutEngine::new(spec.clone()).run_sync();
        assert_eq!(outcome.health_problems(&spec), Vec::<String>::new());
        let heavy_timeline: Vec<&str> = outcome.report.lanes[0]
            .timeline
            .iter()
            .map(|t| t.entry.as_str())
            .collect();
        // The heavy lane reaches the strong tier at some point.
        assert!(
            heavy_timeline.iter().any(|e| e.contains("n=8")),
            "heavy lane should reach FEC(8,4): {heavy_timeline:?}"
        );
        // The light lane only ever uses the moderate tier.
        assert!(outcome.report.lanes[1]
            .timeline
            .iter()
            .all(|t| !t.entry.contains("n=8")));
    }

    #[test]
    fn sync_session_and_pooled_appliers_agree_byte_for_byte() {
        let spec = FanoutSpec::wired_plus_lossy_wlan().with_packets(600);
        let engine = FanoutEngine::new(spec);
        let sync = engine.run_sync();
        let session = engine.run_session();
        assert_eq!(sync.trace.canonical_text(), session.trace.canonical_text());
        assert_eq!(sync.report, session.report);
        let pooled = engine.run_pooled();
        assert_eq!(sync.trace.canonical_text(), pooled.trace.canonical_text());
        assert_eq!(sync.report, pooled.report);
    }

    /// Conformance for the latency extension: every instrumented applier
    /// surfaces end-to-end percentiles, packet accounting stays identical
    /// across appliers, and the latency field never participates in report
    /// equality (wall-clock measurements differ run to run, so reports
    /// would otherwise never compare equal).
    #[test]
    fn latency_percentiles_ride_along_without_breaking_report_identity() {
        let spec = FanoutSpec::wired_plus_lossy_wlan().with_packets(400);
        let engine = FanoutEngine::new(spec.clone());
        let sync = engine.run_sync();
        let pooled = engine.run_pooled();

        // Identical packet accounting, lane by lane.
        assert_eq!(sync.report, pooled.report);
        assert_eq!(
            sync.report.source_packets_sent,
            pooled.report.source_packets_sent
        );
        for (a, b) in sync.report.lanes.iter().zip(&pooled.report.lanes) {
            assert_eq!(a.outcome, b.outcome, "lane {} accounting", a.name);
            assert_eq!(a.parity_sent, b.parity_sent, "lane {} parity", a.name);
        }

        // Both appliers timed every surfaced packet.
        for (label, outcome) in [("sync", &sync), ("pooled", &pooled)] {
            let latency = outcome
                .report
                .latency
                .unwrap_or_else(|| panic!("{label} applier is instrumented"));
            assert!(latency.count > 0, "{label} timed packets");
            assert!(latency.p50_ns <= latency.p99_ns, "{label} percentiles ordered");
        }

        // Replay reconstructs the accounting but not the timing, and the
        // reports still compare equal — latency is excluded from equality.
        let replayed = FanoutReport::replay(&sync.trace);
        assert_eq!(replayed.latency, None);
        assert_eq!(replayed, sync.report);

        // Two reports that differ only in latency are equal; a packet-count
        // difference still breaks equality.
        let mut relabelled = sync.report.clone();
        relabelled.latency = None;
        assert_eq!(relabelled, sync.report);
        relabelled.source_packets_sent += 1;
        assert_ne!(relabelled, sync.report);
    }

    #[test]
    fn pooled_applier_survives_a_head_chain_that_outgrows_the_lane_pipes() {
        // The pooled cousin of the session-applier overflow test: FEC(6,1)
        // in the head expands every window 6x past the lane pipe capacity,
        // so the fanout task back-pressures mid-window and the round-robin
        // drain must keep it moving.
        let mut spec = FanoutSpec::all_wired().with_packets(150);
        spec.head_filters = vec![FilterSpec::new("fec-encoder")
            .with_param("n", "6")
            .with_param("k", "1")];
        let engine = FanoutEngine::new(spec);
        let pooled = engine.run_pooled();
        let sync = engine.run_sync();
        assert_eq!(pooled.report.source_packets_sent, 150);
        assert_eq!(sync.trace.canonical_text(), pooled.trace.canonical_text());
    }

    #[test]
    fn session_applier_survives_a_head_chain_that_outgrows_the_lane_pipes() {
        // FEC(6,1) in the head expands every window 6x — past the lane
        // pipe capacity — so the fanout worker back-pressures mid-window.
        // The session applier's round-robin drain must keep the worker
        // moving (a lane-by-lane drain would deadlock here), and the run
        // must still agree with the sync applier byte for byte.
        let mut spec = FanoutSpec::all_wired().with_packets(150);
        spec.head_filters = vec![FilterSpec::new("fec-encoder")
            .with_param("n", "6")
            .with_param("k", "1")];
        let engine = FanoutEngine::new(spec);
        let session = engine.run_session();
        let sync = engine.run_sync();
        assert_eq!(session.report.source_packets_sent, 150);
        assert_eq!(sync.trace.canonical_text(), session.trace.canonical_text());
        for lane in &session.report.lanes {
            assert_eq!(lane.outcome.delivered, 150, "perfect links deliver everything");
        }
    }

    #[test]
    fn fanout_matrix_is_complete_and_named() {
        let matrix = FanoutSpec::fanout_matrix();
        assert_eq!(matrix.len(), 3);
        for spec in &matrix {
            assert!(spec.name.starts_with("fanout-"));
            assert!(!spec.lanes.is_empty());
            assert!(spec.lanes.iter().any(|l| !l.expect_adaptation));
        }
    }

    #[test]
    fn degenerate_fanout_specs_return_typed_errors() {
        let mut no_lanes = FanoutSpec::all_wired();
        no_lanes.lanes.clear();
        assert_eq!(
            FanoutEngine::new(no_lanes).try_run_sync().unwrap_err(),
            SpecError::NoLanes {
                scenario: "fanout-all-wired".into()
            }
        );

        let zero_packets = FanoutSpec::all_wired().with_packets(0);
        assert_eq!(
            FanoutEngine::new(zero_packets).try_run_sync().unwrap_err(),
            SpecError::ZeroPackets {
                scenario: "fanout-all-wired".into()
            }
        );

        let mut duplicate = FanoutSpec::all_wired();
        duplicate.lanes = vec![LaneSpec::wired("twin"), LaneSpec::wired("twin")];
        assert_eq!(
            duplicate.validate().unwrap_err(),
            SpecError::DuplicateLane {
                scenario: "fanout-all-wired".into(),
                lane: "twin".into()
            }
        );

        let mut empty_phases = FanoutSpec::all_wired();
        empty_phases.lanes = vec![LaneSpec::lossy("phased", LossRegime::Phased(Vec::new()))];
        assert!(matches!(
            empty_phases.validate().unwrap_err(),
            SpecError::EmptyPhases { .. }
        ));

        for spec in FanoutSpec::fanout_matrix() {
            assert_eq!(spec.validate(), Ok(()), "{} must validate", spec.name);
        }
    }

    #[test]
    #[should_panic(expected = "invalid fanout spec")]
    fn run_with_still_panics_on_degenerate_specs() {
        let mut spec = FanoutSpec::all_wired();
        spec.lanes.clear();
        let _ = FanoutEngine::new(spec).run_sync();
    }

    #[test]
    fn health_problems_flag_broken_fanout_runs() {
        // The full-length spec: truncating it would end the run inside the
        // loss episode, before the insert-then-remove cycle completes.
        let spec = FanoutSpec::wired_plus_lossy_wlan();
        let healthy = FanoutEngine::new(spec.clone()).run_sync();
        assert_eq!(healthy.health_problems(&spec), Vec::<String>::new());

        let mut broken = healthy.clone();
        broken.report.lanes[0].outcome.undelivered += 2;
        broken.report.lanes[0].outcome.delivered -= 2;
        broken.report.lanes[1].parity_sent = 5;
        broken.report.lanes[2].final_filters = vec!["fec-encoder(6,4)".to_string()];
        let problems = broken.health_problems(&spec);
        assert!(problems.iter().any(|p| p.contains("undelivered")), "{problems:?}");
        assert!(
            problems.iter().any(|p| p.contains("unexpected parity")),
            "{problems:?}"
        );
        assert!(problems.iter().any(|p| p.contains("did not converge")), "{problems:?}");
        assert!(
            problems.iter().any(|p| p.contains("reproduce the report")),
            "{problems:?}"
        );
    }
}
