//! Appliers that run a scenario over a **shared-socket carrier**: the
//! reactor-driven data plane from
//! [`Proxy::add_udp_carrier`](rapidware_proxy::Proxy), where one bound UDP
//! socket carries every stream of the scenario and pool tasks — woken by
//! socket readiness, not pump threads — drain and flush it in batches.
//!
//! ```text
//!   engine ──encode──▶ UDP ──▶ carrier demux ─▶ pooled chain ─▶ carrier mux ──▶ UDP ──decode──▶ engine
//! ```
//!
//! [`SharedUdpApplier`] and [`SharedUdpFanoutApplier`] are the conformance
//! witnesses for that path: they run the exact protocol of the pump-thread
//! appliers in [`udp`](super::udp) — same control-marker quiescence, same
//! app-side sockets — so the scenario matrix can require their reports and
//! canonical traces to be **byte-identical** to the sync applier's.  The
//! scenario's source packets ride stream id 1 and the quiescence markers
//! ride the reserved marker stream; both ids are routed to the same chain,
//! which preserves the single-socket FIFO order determinism rests on.

use std::net::UdpSocket;

use rapidware_packet::{Packet, PacketKind, StreamId};
use rapidware_proxy::{
    Proxy, RuntimeConfig, SharedUdpSessionConfig, SharedUdpSessionHandle, SharedUdpStreamConfig,
    SharedUdpStreamHandle, UdpCarrierConfig,
};
use rapidware_raplets::{apply_to_pooled_session, apply_to_proxy, AdaptationAction};
use rapidware_streams::DetachableReceiver;
use rapidware_transport::{UdpConfig, UdpIngress};

use super::applier::{marker_stream, ActionApplier};
use super::fanout::{drain_lanes_to_eof, drain_lanes_until_marker, FanoutApplier, FanoutSpec};
use super::udp::{marker, transmit};
use super::POOLED_APPLIER_SHARDS;

/// The stream id scenario sources emit on (see
/// [`AudioSource`](rapidware_media::AudioSource) construction in the
/// engine): the carrier routes it, plus the marker stream, into the
/// scenario chain.
fn scenario_stream() -> StreamId {
    StreamId::new(1)
}

/// The name every applier-owned carrier registers under.
const CARRIER: &str = "carrier";

/// The shared-socket applier: one flat pooled stream riding a carrier, so
/// the whole closed loop crosses the readiness reactor instead of pump
/// threads.
#[derive(Debug)]
pub struct SharedUdpApplier {
    proxy: Proxy,
    stream: String,
    handle: SharedUdpStreamHandle,
    tx: UdpSocket,
    scratch: Vec<u8>,
    rx: UdpIngress,
    next_marker: u64,
    finished: bool,
}

impl SharedUdpApplier {
    /// Spins up a proxy with a carrier and one shared-socket stream on a
    /// [`POOLED_APPLIER_SHARDS`]-worker pool, plus the application-side
    /// sockets on both ends.  `window_hint` sizes the pipes so a whole
    /// sample window (plus parity overhead) fits without shedding frames.
    ///
    /// # Panics
    ///
    /// Panics if a loopback socket cannot be bound (resource exhaustion).
    pub fn new(batch_size: usize, window_hint: usize) -> Self {
        let capacity = (window_hint.max(32)) * 4;
        let udp_config = UdpConfig::default().with_capacity(capacity);
        let rx = UdpIngress::bind("127.0.0.1:0", &udp_config)
            .expect("binding an ephemeral loopback socket");
        let mut proxy = Proxy::with_runtime(
            "scenario-proxy",
            RuntimeConfig::new(POOLED_APPLIER_SHARDS, batch_size.max(1))
                .with_pipe_capacity(capacity),
        );
        proxy
            .add_udp_carrier(
                CARRIER,
                UdpCarrierConfig::new()
                    .with_capacity(capacity)
                    .with_batch_size(batch_size.max(1)),
            )
            .expect("a fresh proxy accepts its first carrier");
        let handle = proxy
            .add_stream_udp_shared(
                "scenario",
                SharedUdpStreamConfig::on_carrier(CARRIER, rx.local_addr())
                    .with_stream(scenario_stream())
                    .with_stream(marker_stream())
                    .with_capacity(capacity)
                    .with_batch_size(batch_size.max(1)),
            )
            .expect("a fresh carrier accepts its first stream");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("binding the app-side send socket");
        Self {
            proxy,
            stream: "scenario".to_string(),
            handle,
            tx,
            scratch: Vec::new(),
            rx,
            next_marker: 0,
            finished: false,
        }
    }

    fn quiesce(&mut self) -> Vec<Packet> {
        let marker_seq = self.next_marker;
        self.next_marker += 1;
        transmit(&self.tx, self.handle.ingress_addr(), &marker(marker_seq), &mut self.scratch);
        let mut collected = Vec::new();
        loop {
            let packet = self
                .rx
                .recv()
                .expect("the marker is still in flight, so the stream cannot end");
            if packet.kind() == PacketKind::Control && packet.stream() == marker_stream() {
                if packet.seq().value() == marker_seq {
                    return collected;
                }
                continue;
            }
            collected.push(packet);
        }
    }
}

impl ActionApplier for SharedUdpApplier {
    fn label(&self) -> &'static str {
        "shared-udp"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Packet> {
        for packet in &packets {
            transmit(&self.tx, self.handle.ingress_addr(), packet, &mut self.scratch);
        }
        self.quiesce()
    }

    fn apply(&mut self, actions: &[AdaptationAction]) -> Vec<Packet> {
        apply_to_proxy(&self.proxy, &self.stream, actions)
            .expect("responder actions are valid for the live chain");
        self.quiesce()
    }

    fn installed_filters(&self) -> Vec<String> {
        self.proxy
            .filter_names(&self.stream)
            .expect("the scenario stream exists for the applier's lifetime")
    }

    fn finish(&mut self) -> Vec<Packet> {
        self.finished = true;
        // Closing the chain input flushes every filter; the residue rides
        // out the shared egress followed by a per-stream FIN, which ends
        // the app-side stream.
        self.handle.close_input();
        let mut residue = Vec::new();
        while let Ok(packet) = self.rx.recv() {
            if packet.kind() == PacketKind::Control && packet.stream() == marker_stream() {
                continue;
            }
            residue.push(packet);
        }
        residue
    }
}

impl Drop for SharedUdpApplier {
    fn drop(&mut self) {
        if !self.finished {
            self.handle.close_input();
        }
        let _ = self.proxy.shutdown();
    }
}

/// The shared-socket fanout applier: a pooled session riding a carrier,
/// every lane multiplexed back out of the carrier's one socket to its own
/// application-side receiver.
pub struct SharedUdpFanoutApplier {
    proxy: Proxy,
    session: String,
    handle: SharedUdpSessionHandle,
    tx: UdpSocket,
    scratch: Vec<u8>,
    /// Application-side sockets, one per lane (kept alive; their pipe
    /// receivers are in `outputs`).
    lane_rx: Vec<UdpIngress>,
    outputs: Vec<DetachableReceiver<Packet>>,
    lane_names: Vec<String>,
    /// Packets collected for a lane outside its own turn; prepended to that
    /// lane's next `process` result so nothing is ever dropped.
    pending: Vec<Vec<Packet>>,
    next_marker: u64,
    finished: bool,
}

impl std::fmt::Debug for SharedUdpFanoutApplier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedUdpFanoutApplier")
            .field("lanes", &self.lane_names)
            .finish()
    }
}

impl SharedUdpFanoutApplier {
    /// Spins up a carrier-backed pooled session for a spec: head filters
    /// installed, one egress lane (and one application-side socket) per
    /// [`LaneSpec`](super::LaneSpec), pipes sized so a whole sample window
    /// fits without shedding frames.
    ///
    /// # Panics
    ///
    /// Panics if a loopback socket cannot be bound (resource exhaustion).
    pub fn for_spec(spec: &FanoutSpec) -> Self {
        let capacity = (spec.sample_interval.max(32) as usize) * 4;
        let udp_config = UdpConfig::default().with_capacity(capacity);
        let mut lane_rx = Vec::with_capacity(spec.lanes.len());
        let mut session_config = SharedUdpSessionConfig::on_carrier(CARRIER)
            .with_stream(scenario_stream())
            .with_stream(marker_stream())
            .with_capacity(capacity)
            .with_batch_size(spec.batch_size.max(1));
        for lane in &spec.lanes {
            let ingress = UdpIngress::bind("127.0.0.1:0", &udp_config)
                .expect("binding an ephemeral loopback socket");
            session_config = session_config.with_lane(&lane.name, ingress.local_addr());
            lane_rx.push(ingress);
        }
        let mut proxy = Proxy::with_runtime(
            "scenario-proxy",
            RuntimeConfig::new(POOLED_APPLIER_SHARDS, spec.batch_size.max(1))
                .with_pipe_capacity(capacity),
        );
        proxy
            .add_udp_carrier(
                CARRIER,
                UdpCarrierConfig::new()
                    .with_capacity(capacity)
                    .with_batch_size(spec.batch_size.max(1)),
            )
            .expect("a fresh proxy accepts its first carrier");
        let handle = proxy
            .add_session_udp_shared(spec.name.clone(), session_config)
            .expect("a fresh carrier accepts its first session");
        let session = proxy
            .pooled_session(&spec.name)
            .expect("the session was just created");
        for (position, filter_spec) in spec.head_filters.iter().enumerate() {
            session
                .insert_head_filter(position, filter_spec)
                .expect("head filter specs reference registered kinds");
        }
        let tx = UdpSocket::bind("127.0.0.1:0").expect("binding the app-side send socket");
        let outputs: Vec<DetachableReceiver<Packet>> =
            lane_rx.iter().map(UdpIngress::receiver).collect();
        let lane_names: Vec<String> = spec.lanes.iter().map(|lane| lane.name.clone()).collect();
        let lane_count = lane_names.len();
        Self {
            proxy,
            session: spec.name.clone(),
            handle,
            tx,
            scratch: Vec::new(),
            lane_rx,
            outputs,
            lane_names,
            pending: vec![Vec::new(); lane_count],
            next_marker: 0,
            finished: false,
        }
    }

    /// Sends one control marker into the carrier (it routes to the session
    /// head and fans out to every lane) and drains all lanes concurrently
    /// until each copy emerges.
    fn quiesce_all(&mut self) -> Vec<Vec<Packet>> {
        let marker_seq = self.next_marker;
        self.next_marker += 1;
        transmit(&self.tx, self.handle.ingress_addr(), &marker(marker_seq), &mut self.scratch);
        drain_lanes_until_marker(&self.outputs, marker_seq)
    }
}

impl FanoutApplier for SharedUdpFanoutApplier {
    fn label(&self) -> &'static str {
        "shared-udp"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Vec<Packet>> {
        for packet in &packets {
            transmit(&self.tx, self.handle.ingress_addr(), packet, &mut self.scratch);
        }
        let mut out = self.quiesce_all();
        for (lane, extra) in out.iter_mut().enumerate() {
            if !self.pending[lane].is_empty() {
                let mut merged = std::mem::take(&mut self.pending[lane]);
                merged.append(extra);
                *extra = merged;
            }
        }
        out
    }

    fn apply(&mut self, lane: usize, actions: &[AdaptationAction]) -> Vec<Packet> {
        let session = self
            .proxy
            .pooled_session(&self.session)
            .expect("the scenario session exists for the applier's lifetime");
        apply_to_pooled_session(session, &self.lane_names[lane], actions)
            .expect("responder actions are valid for the live lane");
        let mut all = self.quiesce_all();
        let target = std::mem::take(&mut all[lane]);
        for (index, extra) in all.into_iter().enumerate() {
            if !extra.is_empty() {
                self.pending[index].extend(extra);
            }
        }
        target
    }

    fn lane_filters(&self, lane: usize) -> Vec<String> {
        self.proxy
            .pooled_session(&self.session)
            .and_then(|session| session.lane_filter_names(&self.lane_names[lane]))
            .expect("spec lanes exist for the applier's lifetime")
    }

    fn head_filters(&self) -> Vec<String> {
        self.proxy
            .pooled_session(&self.session)
            .expect("the scenario session exists for the applier's lifetime")
            .head_filter_names()
    }

    fn finish(&mut self) -> Vec<Vec<Packet>> {
        self.finished = true;
        // Closing the session input flushes the head through every lane;
        // each lane sends its residue and a per-stream FIN out of the one
        // carrier socket, which closes the matching app-side pipe, so the
        // EOF drain below terminates.
        self.handle.close_input();
        let mut residue: Vec<Vec<Packet>> = std::mem::take(&mut self.pending);
        drain_lanes_to_eof(&self.outputs, &mut residue);
        residue
    }
}

impl Drop for SharedUdpFanoutApplier {
    fn drop(&mut self) {
        if !self.finished {
            self.handle.close_input();
        }
        let _ = self.lane_rx.drain(..);
        let _ = self.proxy.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{FanoutEngine, ScenarioEngine, ScenarioSpec};

    #[test]
    fn the_shared_applier_matches_the_sync_applier_on_a_small_scenario() {
        let spec = ScenarioSpec::handoff_cliff().with_packets(400);
        let engine = ScenarioEngine::new(spec);
        let sync = engine.run_sync();
        let shared = engine.run_udp_shared();
        assert_eq!(sync.report, shared.report, "the carrier must not change the outcome");
        assert_eq!(sync.trace.canonical_text(), shared.trace.canonical_text());
    }

    #[test]
    fn the_shared_fanout_applier_matches_the_sync_applier_on_a_small_spec() {
        let spec = super::super::FanoutSpec::all_wired().with_packets(300);
        let engine = FanoutEngine::new(spec);
        let sync = engine.run_sync();
        let shared = engine.run_udp_shared();
        assert_eq!(sync.report, shared.report, "the carrier must not change the outcome");
    }
}
