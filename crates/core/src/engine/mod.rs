//! The closed-loop scenario engine.
//!
//! This module closes the control loop the paper describes but the rest of
//! the workspace only exposes as parts: a seeded `netsim` topology produces
//! per-window [`LinkSample`]s → the raplets' [`AdaptationEngine`] raises
//! events and emits [`AdaptationAction`]s → an [`ActionApplier`] applies
//! them to a running filter chain (the synchronous [`FilterChain`] or a
//! live thread-per-filter [`Proxy`] stream) → the reconfigured chain shapes
//! the traffic the topology sees next.  Every step is stamped in
//! [`SimTime`] and appended to a replayable [`ScenarioTrace`].
//!
//! ```text
//!  data    AudioSource ─▶ ActionApplier ─▶ WirelessLan ─▶ FEC decoders
//!  plane                  (FilterChain /    (seeded loss)   + sinks
//!                          ThreadedChain)        │
//!                                ▲               ▼ per-window counts
//!  control  AdaptationAction ◀─ Responder ◀─ Observer ◀─ LinkSample
//!  plane          │
//!                 └──▶ ScenarioTrace (SimTime-stamped, replayable)
//! ```
//!
//! Runs are deterministic: the same [`ScenarioSpec`] and seed produce a
//! byte-identical trace on every run, and the sync and threaded appliers
//! produce the same adaptation timeline.
//!
//! ```
//! use rapidware::engine::{ScenarioEngine, ScenarioSpec};
//!
//! let engine = ScenarioEngine::new(ScenarioSpec::steady_wlan().with_packets(100));
//! let outcome = engine.run_sync();
//! // Every non-lost data packet reached the application...
//! assert_eq!(outcome.report.undelivered_total(), 0);
//! // ...and replaying the recorded trace reproduces the report.
//! assert_eq!(outcome.trace.replay(), outcome.report);
//! ```
//!
//! [`LinkSample`]: rapidware_raplets::LinkSample
//! [`AdaptationEngine`]: rapidware_raplets::AdaptationEngine
//! [`AdaptationAction`]: rapidware_raplets::AdaptationAction
//! [`FilterChain`]: rapidware_filters::FilterChain
//! [`Proxy`]: rapidware_proxy::Proxy
//! [`SimTime`]: rapidware_netsim::SimTime

mod applier;
mod fanout;
mod generate;
mod report;
mod shared_udp;
mod spec;
mod trace;
mod udp;

pub use applier::{
    apply_actions_to_chain, ActionApplier, RuntimeApplier, SyncChainApplier, ThreadedProxyApplier,
};
pub use shared_udp::{SharedUdpApplier, SharedUdpFanoutApplier};
pub use udp::{UdpApplier, UdpFanoutApplier};
pub use fanout::{
    FanoutApplier, FanoutEngine, FanoutOutcome, FanoutReport, FanoutSpec, LaneReport, LaneSpec,
    RuntimeFanoutApplier, SessionFanoutApplier, SyncFanoutApplier,
};
pub use generate::{ChurnEvent, GeneratedShape, GeneratedSpec, PlacementKind, PlacementSpec};
pub use report::{LatencySummary, ReceiverOutcome, ScenarioReport, TimelineEntry};
pub use spec::{LossRegime, RapletSet, ScenarioSpec, SpecError};
pub use trace::{describe_action, describe_event, ScenarioTrace, TraceEvent};

use std::collections::HashSet;

use rapidware_filters::{rekey_packet, FecDecoderFilter, Filter};
use rapidware_media::AudioSource;
use rapidware_netsim::{SimTime, WirelessLan};
use rapidware_packet::{Packet, StreamId};
use rapidware_proxy::FilterSpec;
use rapidware_raplets::{
    AdaptationAction, AdaptationEngine, FecResponder, LinkSample, LossRateObserver,
};

/// The fixed seeds the scenario-matrix harness runs at.  The integration
/// tests and the `scenario_matrix` bench binary both read this constant, so
/// the two enforcement points cannot drift apart.
pub const MATRIX_SEEDS: [u64; 2] = [2001, 42];

/// Worker-pool size the pooled scenario appliers run on.  Small enough to
/// prove multiplexing (many chain tasks per worker), large enough to keep
/// work stealing in play; traces must not depend on it.
pub const POOLED_APPLIER_SHARDS: usize = 4;

/// The channel key secure scenario runs seal with (decimal `0x5EED`, the
/// registry's default).  Fixed so filter names — which appear in canonical
/// traces — are identical on every applier.
pub const SECURE_SCENARIO_KEY: &str = "24301";

/// The epoch a secure scenario's midpoint rotation installs.
const SECURE_REKEY_EPOCH: u32 = 1;

/// Everything a closed-loop run produces: the final accounting and the
/// step-by-step trace it was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Delivery accounting and adaptation timeline.
    pub report: ScenarioReport,
    /// The replayable record of the run (`trace.replay() == report`).
    pub trace: ScenarioTrace,
}

impl ScenarioOutcome {
    /// The scenario-matrix health checks, shared by the test harness
    /// (which asserts the list is empty) and the `scenario_matrix` bench
    /// binary (which prints it): one line per violated property of a run
    /// against the expectations declared in its spec.
    pub fn health_problems(&self, spec: &ScenarioSpec) -> Vec<String> {
        let report = &self.report;
        let mut problems = Vec::new();
        if report.source_packets_sent != spec.packets {
            problems.push(format!(
                "transmitted {} source packets, spec says {}",
                report.source_packets_sent, spec.packets
            ));
        }
        for (index, receiver) in report.receivers.iter().enumerate() {
            let accounted =
                receiver.delivered + receiver.recovered + receiver.lost + receiver.undelivered;
            if accounted != spec.packets {
                problems.push(format!(
                    "receiver {index} accounts for {accounted} of {} packets",
                    spec.packets
                ));
            }
        }
        if report.undelivered_total() > 0 {
            problems.push(format!(
                "{} non-lost data packets undelivered",
                report.undelivered_total()
            ));
        }
        if spec.expect_adaptation {
            if !report.fec_inserted_then_removed() {
                problems.push("missing insert-then-remove adaptation cycle".to_string());
            }
            if report.parity_packets_sent == 0 {
                problems.push("no parity on the air".to_string());
            }
            if report.recovered_total() == 0 {
                problems.push("FEC never repaired a loss".to_string());
            }
        } else {
            if !report.timeline.is_empty() {
                problems.push(format!(
                    "{} spurious adaptation steps on a quiet link",
                    report.timeline.len()
                ));
            }
            if report.parity_packets_sent != 0 {
                problems.push("unexpected parity on a quiet link".to_string());
            }
        }
        if spec.expect_clean_finish && !report.converged() {
            problems.push(format!("did not converge: {:?}", report.final_filters));
        }
        if self.trace.replay() != self.report {
            problems.push("replaying the trace does not reproduce the report".to_string());
        }
        problems
    }
}

/// Per-receiver simulation state: one sync FEC decoder per code the
/// responder can install (a decoder only accepts parity of its own (n, k)),
/// plus the bookkeeping needed for the final accounting.
struct ReceiverState {
    decoders: Vec<((usize, usize), FecDecoderFilter)>,
    received: HashSet<u64>,
    emitted: HashSet<u64>,
}

/// Counters shared by the broadcast path.
#[derive(Default)]
struct AirCounters {
    source_packets: u64,
    parity_packets: u64,
    window_sent: u64,
    window_delivered: u64,
    window_bytes_delivered: u64,
}

/// Drives one [`ScenarioSpec`] through the full closed loop.
#[derive(Debug, Clone)]
pub struct ScenarioEngine {
    spec: ScenarioSpec,
}

impl ScenarioEngine {
    /// Creates an engine for the given spec.
    pub fn new(spec: ScenarioSpec) -> Self {
        Self { spec }
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Runs the scenario against the synchronous [`SyncChainApplier`].
    pub fn run_sync(&self) -> ScenarioOutcome {
        self.run_with(&mut SyncChainApplier::new())
    }

    /// Like [`run_sync`](Self::run_sync), but rejects degenerate specs with
    /// a typed [`SpecError`] instead of panicking.
    pub fn try_run_sync(&self) -> Result<ScenarioOutcome, SpecError> {
        self.try_run_with(&mut SyncChainApplier::new())
    }

    /// Runs the scenario against a live [`ThreadedProxyApplier`] (filters
    /// on their own threads, reconfigured through the proxy control
    /// surface), using the spec's batch size.
    pub fn run_threaded(&self) -> ScenarioOutcome {
        let window = self.spec.sample_interval as usize;
        self.run_with(&mut ThreadedProxyApplier::new(self.spec.batch_size, window))
    }

    /// Runs the scenario against a [`RuntimeApplier`]: the chain executes
    /// as a cooperative task on a sharded worker pool
    /// ([`POOLED_APPLIER_SHARDS`] workers), reconfigured through the same
    /// proxy control surface.  The trace must be byte-identical to the sync
    /// and threaded runs.
    pub fn run_pooled(&self) -> ScenarioOutcome {
        let window = self.spec.sample_interval as usize;
        self.run_with(&mut RuntimeApplier::new(
            POOLED_APPLIER_SHARDS,
            self.spec.batch_size,
            window,
        ))
    }

    /// Runs the scenario against a [`UdpApplier`]: every packet crosses
    /// two real loopback UDP sockets on its way through the chain.  The
    /// report must agree with the in-process appliers at the same seed.
    pub fn run_udp(&self) -> ScenarioOutcome {
        let window = self.spec.sample_interval as usize;
        self.run_with(&mut UdpApplier::new(self.spec.batch_size, window))
    }

    /// Runs the scenario against a [`SharedUdpApplier`]: the same wire
    /// path as [`run_udp`](Self::run_udp), but the proxy side is a
    /// shared-socket carrier demuxed by the readiness reactor onto the
    /// worker pool — one socket, zero pump threads.  The report must agree
    /// with the in-process appliers at the same seed.
    pub fn run_udp_shared(&self) -> ScenarioOutcome {
        let window = self.spec.sample_interval as usize;
        self.run_with(&mut SharedUdpApplier::new(self.spec.batch_size, window))
    }

    /// Runs the scenario against any applier.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (see [`ScenarioSpec::validate`]) or
    /// a filter fails, which the built-in scenarios never do.  Use
    /// [`try_run_with`](Self::try_run_with) to get degenerate specs back as
    /// typed errors instead.
    pub fn run_with(&self, chain: &mut dyn ActionApplier) -> ScenarioOutcome {
        self.try_run_with(chain).unwrap_or_else(|err| panic!("invalid scenario spec: {err}"))
    }

    /// Runs the scenario against any applier, rejecting degenerate specs
    /// with a typed [`SpecError`] instead of panicking.
    pub fn try_run_with(
        &self,
        chain: &mut dyn ActionApplier,
    ) -> Result<ScenarioOutcome, SpecError> {
        let spec = &self.spec;
        spec.validate()?;
        let mut trace = ScenarioTrace::new(spec.name.clone(), spec.seed);

        // The topology: one seeded LAN, one loss regime per receiver.
        let mut lan = WirelessLan::wavelan_2mbps(spec.seed);
        for (index, regime) in spec.receivers.iter().enumerate() {
            regime.attach(&mut lan, &format!("receiver-{index}"));
        }
        let monitor = lan.receiver_ids()[0];
        let mut codes = vec![spec.raplets.fec_moderate];
        if spec.raplets.fec_strong != spec.raplets.fec_moderate {
            codes.push(spec.raplets.fec_strong);
        }
        let mut receivers: Vec<ReceiverState> = (0..spec.receivers.len())
            .map(|_| ReceiverState {
                decoders: codes
                    .iter()
                    .map(|&(n, k)| {
                        (
                            (n, k),
                            FecDecoderFilter::new(n, k).expect("spec uses valid FEC parameters"),
                        )
                    })
                    .collect(),
                received: HashSet::new(),
                emitted: HashSet::new(),
            })
            .collect();

        // The raplets.
        let (high, low) = spec.raplets.loss_thresholds;
        let mut adaptation = AdaptationEngine::new();
        adaptation.add_observer(Box::new(
            LossRateObserver::with_thresholds(high, low).with_smoothing(spec.raplets.smoothing),
        ));
        adaptation.add_responder(Box::new(FecResponder::new(
            0,
            spec.raplets.fec_moderate,
            spec.raplets.fec_strong,
            spec.raplets.strong_threshold,
        )));
        let mut logged = 0usize;

        let mut source = AudioSource::new(StreamId::new(1), spec.audio);
        let mut counters = AirCounters::default();
        let mut window_start = SimTime::ZERO;
        let mut sent = 0u64;

        // Secure channel: the seal/verify pair brackets the chain for the
        // whole run.  Installed through the applier's own action path so
        // every runtime (sync, threaded, pooled, UDP, shared-UDP) places it
        // identically; FEC adaptation inserts at the head, upstream of the
        // pair, so parity gets sealed too.
        let rekey_at = if spec.secure {
            let key = FilterSpec::new("encrypt").with_param("key", SECURE_SCENARIO_KEY);
            let decrypt = FilterSpec::new("decrypt").with_param("key", SECURE_SCENARIO_KEY);
            let installed = chain.apply(&[
                AdaptationAction::Insert { position: 0, spec: key },
                AdaptationAction::Insert {
                    position: 1,
                    spec: decrypt,
                },
            ]);
            debug_assert!(installed.is_empty(), "inserting flushes nothing");
            // Rotate the channel key at the midpoint of the run (skipped
            // for single-packet runs, where no seq strictly follows 0).
            (spec.packets >= 2).then_some(spec.packets / 2)
        } else {
            None
        };

        while sent < spec.packets {
            // One sample window of source packets through the chain.
            let count = (spec.packets - sent).min(spec.sample_interval.max(1));
            let mut window: Vec<Packet> = (0..count).map(|_| source.next_packet()).collect();
            sent += count;
            if let Some(boundary) = rekey_at {
                // Splice the rotation control frame in immediately before
                // the first packet of the new epoch.  Both crypto stages
                // see it at the same point in stream order, so they agree
                // on which epoch seals each seq; the decrypt stage then
                // consumes it, so rotation plumbing never goes on the air.
                if let Some(position) =
                    window.iter().position(|p| p.seq().value() == boundary)
                {
                    let at = &window[position];
                    let rekey = rekey_packet(
                        at.stream(),
                        SECURE_REKEY_EPOCH,
                        boundary,
                        at.timestamp_us(),
                    );
                    window.insert(position, rekey);
                }
            }
            let now = SimTime::from_micros(
                window.last().expect("windows are non-empty").timestamp_us(),
            );
            let mut air_time = SimTime::from_micros(window[0].timestamp_us());
            let outgoing = chain.process(window);

            // Transmit: payload packets go on the air at their own media
            // timestamp; parity (and any other derived traffic) rides at
            // the timestamp of the payload packet that triggered it, which
            // keeps timing identical across appliers.
            for packet in &outgoing {
                if packet.kind().is_payload() {
                    air_time = SimTime::from_micros(packet.timestamp_us());
                }
                broadcast(&mut lan, air_time, packet, spec.packets, &mut receivers, &mut counters);
            }

            // Sample the monitored link over the window just transmitted.
            let mut sample = LinkSample::new(now, counters.window_sent, counters.window_delivered)
                .with_window(window_start, counters.window_bytes_delivered);
            if let Some(distance) = lan.receiver_distance(monitor, now) {
                sample = sample.with_distance(distance);
            }
            trace.push(TraceEvent::Sample {
                time: now,
                sent: counters.window_sent,
                delivered: counters.window_delivered,
                loss_rate: sample.loss_rate(),
            });
            counters.window_sent = 0;
            counters.window_delivered = 0;
            counters.window_bytes_delivered = 0;
            window_start = now;

            // Observer → responder → applier.
            let actions = adaptation.ingest(&sample);
            for record in &adaptation.log()[logged..] {
                trace.push(TraceEvent::Observed {
                    time: record.time,
                    event: describe_event(&record.event),
                });
                for action in &record.actions {
                    trace.push(TraceEvent::ActionApplied {
                        time: record.time,
                        action: describe_action(action),
                    });
                }
            }
            logged = adaptation.log().len();
            if !actions.is_empty() {
                // Residue flushed out of removed/replaced filters still has
                // to reach the receivers (it completes their open blocks).
                for packet in chain.apply(&actions) {
                    broadcast(&mut lan, now, &packet, spec.packets, &mut receivers, &mut counters);
                }
                trace.push(TraceEvent::ChainReconfigured {
                    time: now,
                    filters: chain.installed_filters(),
                });
            }
        }

        // End of stream: flush the chain's tail (e.g. a partial FEC block).
        let final_time = SimTime::from_micros(spec.packets * spec.audio.packet_interval_us());
        let final_filters = chain.installed_filters();
        for packet in chain.finish() {
            broadcast(&mut lan, final_time, &packet, spec.packets, &mut receivers, &mut counters);
        }

        // Final accounting.
        let mut outcomes = Vec::with_capacity(receivers.len());
        for (index, state) in receivers.iter().enumerate() {
            let mut outcome = ReceiverOutcome {
                delivered: 0,
                recovered: 0,
                lost: 0,
                undelivered: 0,
            };
            for seq in 0..spec.packets {
                match (state.received.contains(&seq), state.emitted.contains(&seq)) {
                    (true, true) => outcome.delivered += 1,
                    (true, false) => outcome.undelivered += 1,
                    (false, true) => outcome.recovered += 1,
                    (false, false) => outcome.lost += 1,
                }
            }
            trace.push(TraceEvent::ReceiverTotals {
                receiver: index,
                delivered: outcome.delivered,
                recovered: outcome.recovered,
                lost: outcome.lost,
                undelivered: outcome.undelivered,
            });
            outcomes.push(outcome);
        }
        trace.push(TraceEvent::RunSummary {
            source_packets: counters.source_packets,
            parity_packets: counters.parity_packets,
            final_filters: final_filters.clone(),
        });

        let report = ScenarioReport {
            scenario: spec.name.clone(),
            seed: spec.seed,
            source_packets_sent: counters.source_packets,
            parity_packets_sent: counters.parity_packets,
            receivers: outcomes,
            timeline: trace.adaptation_timeline(),
            final_filters,
            latency: chain.latency(),
        };
        Ok(ScenarioOutcome { report, trace })
    }
}

/// Puts one packet on the air and routes the per-receiver deliveries into
/// the decoders and bookkeeping.
fn broadcast(
    lan: &mut WirelessLan,
    now: SimTime,
    packet: &Packet,
    total_sources: u64,
    receivers: &mut [ReceiverState],
    counters: &mut AirCounters,
) {
    let is_payload = packet.kind().is_payload();
    if is_payload {
        counters.source_packets += 1;
        counters.window_sent += 1;
    } else if packet.kind().is_parity() {
        counters.parity_packets += 1;
    }
    let records = lan.broadcast(now, packet.wire_len());
    for (index, record) in records.iter().enumerate() {
        if !record.is_delivered() {
            continue;
        }
        let state = &mut receivers[index];
        if is_payload {
            state.received.insert(packet.seq().value());
            if index == 0 {
                counters.window_delivered += 1;
                counters.window_bytes_delivered += packet.payload_len() as u64;
            }
        }
        feed_decoders(packet, &mut state.decoders, &mut state.emitted, total_sources);
    }
}

/// Feeds one delivered packet into a receiver's per-code FEC decoders and
/// records any reconstructed source payloads in `emitted`.  Shared by the
/// flat engine's broadcast path and the fanout engine's per-lane path so
/// the two can never drift in how deliveries are routed.
///
/// Parity is routed to the decoder of its own code; payload feeds every
/// decoder (whichever has the block open uses it — duplicates are absorbed
/// by the `emitted` set).  Decode errors are tolerated, not dead code:
/// when adaptation re-inserts FEC mid-stream, block boundaries shift, and
/// a reconstruction attempted across the epoch boundary can fail
/// shard-framing validation (`FecError::CorruptPayload`).  The packet
/// still counts through the caller's `received` set, and anything the
/// decoder emitted before the failure is kept — a bad reconstruction can
/// only surface as `lost`, never as a corrupted delivery.
fn feed_decoders(
    packet: &Packet,
    decoders: &mut [((usize, usize), FecDecoderFilter)],
    emitted: &mut HashSet<u64>,
    total_sources: u64,
) {
    let parity_code = match packet.kind() {
        rapidware_packet::PacketKind::Parity { k, n, .. } => {
            Some((usize::from(n), usize::from(k)))
        }
        _ => None,
    };
    let mut decoded: Vec<Packet> = Vec::new();
    for (code, decoder) in decoders {
        if parity_code.is_some_and(|parity| parity != *code) {
            continue;
        }
        let _ = decoder.process(packet.clone(), &mut decoded);
    }
    for out in decoded {
        if !out.kind().is_payload() {
            continue;
        }
        let seq = out.seq().value();
        if seq < total_sources {
            emitted.insert(seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_lossless_run_delivers_everything_without_adapting() {
        let spec = ScenarioSpec {
            name: "unit-lossless".into(),
            receivers: vec![LossRegime::Perfect, LossRegime::Perfect],
            ..ScenarioSpec::steady_wlan().with_packets(200)
        };
        let outcome = ScenarioEngine::new(spec).run_sync();
        assert_eq!(outcome.report.source_packets_sent, 200);
        assert_eq!(outcome.report.parity_packets_sent, 0, "no loss, no FEC");
        assert!(outcome.report.timeline.is_empty());
        for receiver in &outcome.report.receivers {
            assert_eq!(receiver.delivered, 200);
            assert_eq!(receiver.lost, 0);
            assert_eq!(receiver.undelivered, 0);
        }
        assert!(outcome.report.converged());
    }

    #[test]
    fn a_loss_episode_drives_the_full_insert_remove_cycle() {
        let outcome = ScenarioEngine::new(ScenarioSpec::handoff_cliff()).run_sync();
        assert!(outcome.report.fec_inserted_then_removed());
        assert!(outcome.report.parity_packets_sent > 0);
        assert_eq!(outcome.report.undelivered_total(), 0);
        assert!(outcome.report.recovered_total() > 0, "FEC must repair some losses");
        assert!(outcome.report.converged());
        assert_eq!(outcome.trace.replay(), outcome.report);
    }

    /// Conformance for the latency extension on the flat engine: the sync
    /// and pooled appliers report identical packet counts, both surface
    /// end-to-end percentiles, and latency never participates in report
    /// equality (replayed traces carry none).
    #[test]
    fn latency_percentiles_ride_along_without_breaking_report_identity() {
        let spec = ScenarioSpec::handoff_cliff().with_packets(400);
        let engine = ScenarioEngine::new(spec);
        let sync = engine.run_sync();
        let pooled = engine.run_pooled();

        assert_eq!(sync.report, pooled.report);
        assert_eq!(sync.report.receivers, pooled.report.receivers);
        for (label, outcome) in [("sync", &sync), ("pooled", &pooled)] {
            let latency = outcome
                .report
                .latency
                .unwrap_or_else(|| panic!("{label} applier is instrumented"));
            assert!(latency.count > 0, "{label} timed packets");
            assert!(latency.p50_ns <= latency.p99_ns, "{label} percentiles ordered");
        }

        let replayed = sync.trace.replay();
        assert_eq!(replayed.latency, None);
        assert_eq!(replayed, sync.report, "equality ignores the latency field");

        let mut relabelled = sync.report.clone();
        relabelled.latency = None;
        assert_eq!(relabelled, sync.report);
        relabelled.source_packets_sent += 1;
        assert_ne!(relabelled, sync.report);
    }

    #[test]
    fn degenerate_specs_return_typed_errors_instead_of_panicking() {
        let no_receivers = ScenarioSpec {
            receivers: Vec::new(),
            ..ScenarioSpec::steady_wlan()
        };
        assert_eq!(
            ScenarioEngine::new(no_receivers).try_run_sync().unwrap_err(),
            SpecError::NoReceivers {
                scenario: "steady-wlan".into()
            }
        );
        let zero_packets = ScenarioSpec::steady_wlan().with_packets(0);
        assert_eq!(
            ScenarioEngine::new(zero_packets).try_run_sync().unwrap_err(),
            SpecError::ZeroPackets {
                scenario: "steady-wlan".into()
            }
        );
    }

    #[test]
    #[should_panic(expected = "invalid scenario spec")]
    fn run_with_still_panics_on_degenerate_specs() {
        let spec = ScenarioSpec {
            receivers: Vec::new(),
            ..ScenarioSpec::steady_wlan()
        };
        let _ = ScenarioEngine::new(spec).run_sync();
    }

    #[test]
    fn the_spec_accessor_round_trips() {
        let engine = ScenarioEngine::new(ScenarioSpec::steady_wlan());
        assert_eq!(engine.spec().name, "steady-wlan");
    }

    #[test]
    fn health_problems_flag_unhealthy_runs() {
        let spec = ScenarioSpec::handoff_cliff();
        let healthy = ScenarioEngine::new(spec.clone()).run_sync();
        assert_eq!(healthy.health_problems(&spec), Vec::<String>::new());

        // Tamper with the outcome the way real regressions would surface.
        let mut broken = healthy.clone();
        broken.report.receivers[0].undelivered += 3;
        broken.report.receivers[0].delivered -= 3;
        broken.report.final_filters = vec!["fec-encoder(6,4)".to_string()];
        broken.report.timeline.retain(|t| !t.entry.starts_with("action remove"));
        let problems = broken.health_problems(&spec);
        assert!(problems.iter().any(|p| p.contains("undelivered")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("converge")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("insert-then-remove")), "{problems:?}");
        assert!(
            problems.iter().any(|p| p.contains("reproduce the report")),
            "{problems:?}"
        );

        // A quiet-link spec flags the opposite regression: any adaptation.
        let quiet = ScenarioSpec::steady_wlan();
        let mut noisy = ScenarioEngine::new(quiet.clone()).run_sync();
        noisy.report.parity_packets_sent = 7;
        assert!(noisy
            .health_problems(&quiet)
            .iter()
            .any(|p| p.contains("unexpected parity")));
    }
}
