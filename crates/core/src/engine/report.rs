//! Results of a closed-loop scenario run.

use std::fmt;

use rapidware_netsim::SimTime;
use rapidware_proxy::{HistogramSnapshot, TelemetrySnapshot};

/// One timestamped entry of the adaptation timeline (an observer event, an
/// applied action, or the resulting chain configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// When the step happened.
    pub time: SimTime,
    /// Canonical rendering of the step (`event …`, `action …`, `chain …`).
    pub entry: String,
}

impl fmt::Display for TimelineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.time, self.entry)
    }
}

/// Final packet accounting for one receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiverOutcome {
    /// Source packets delivered directly over the network.
    pub delivered: u64,
    /// Source packets lost on the air but reconstructed by FEC.
    pub recovered: u64,
    /// Source packets neither delivered nor recovered.
    pub lost: u64,
    /// Source packets the network delivered but the receiver pipeline never
    /// surfaced.  A healthy run has zero: every non-lost data packet must
    /// reach the application.
    pub undelivered: u64,
}

impl ReceiverOutcome {
    /// Fraction of source packets available to the application (delivered
    /// or recovered), in `[0, 1]`.  Every source packet falls into exactly
    /// one of the four buckets, so undelivered packets count against
    /// availability — a broken receiver pipeline lowers this number rather
    /// than hiding behind it.
    pub fn availability(&self) -> f64 {
        let total = self.delivered + self.recovered + self.lost + self.undelivered;
        if total == 0 {
            1.0
        } else {
            (self.delivered + self.recovered) as f64 / total as f64
        }
    }
}

/// End-to-end latency percentiles observed by an applier's telemetry
/// spans: wall-clock time from chain ingress to chain egress.
///
/// Latency is *observational*: it depends on the host, the scheduler, and
/// the applier's runtime, so — unlike the packet accounting — it is
/// **excluded from report equality**.  Two runs that differ only in
/// latency compare equal, which is what keeps the sync/threaded/pooled
/// byte-identity and trace-replay invariants intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Packets timed end-to-end.
    pub count: u64,
    /// Median ingress-to-egress latency, in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile ingress-to-egress latency, in nanoseconds.
    pub p99_ns: u64,
}

impl LatencySummary {
    /// Summarises one end-to-end histogram; `None` if nothing was timed.
    pub fn from_histogram(histogram: &HistogramSnapshot) -> Option<Self> {
        if histogram.is_empty() {
            return None;
        }
        Some(Self {
            count: histogram.count(),
            p50_ns: histogram.percentile(0.50),
            p99_ns: histogram.percentile(0.99),
        })
    }

    /// Summarises every end-to-end span in a telemetry snapshot (all
    /// histograms named `*.e2e_ns`, merged); `None` if nothing was timed.
    pub fn from_snapshot(snapshot: &TelemetrySnapshot) -> Option<Self> {
        let mut merged = HistogramSnapshot::default();
        for (name, histogram) in &snapshot.histograms {
            if name.ends_with(".e2e_ns") {
                merged.merge(histogram);
            }
        }
        Self::from_histogram(&merged)
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50={}ns p99={}ns over {} packets",
            self.p50_ns, self.p99_ns, self.count
        )
    }
}

/// The outcome of one closed-loop scenario run: delivery accounting plus
/// the adaptation timeline.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Simulator seed of the run.
    pub seed: u64,
    /// Source payload packets transmitted.
    pub source_packets_sent: u64,
    /// Parity packets transmitted.
    pub parity_packets_sent: u64,
    /// Per-receiver accounting, in topology order.
    pub receivers: Vec<ReceiverOutcome>,
    /// Every observer event, applied action, and chain reconfiguration, in
    /// order.
    pub timeline: Vec<TimelineEntry>,
    /// Filters still installed on the sender chain when the run ended.
    pub final_filters: Vec<String>,
    /// End-to-end latency percentiles, when the applier was instrumented
    /// with telemetry spans.  Excluded from `PartialEq`: latency is host-
    /// and scheduler-dependent, while the rest of the report is
    /// deterministic given the seed.
    pub latency: Option<LatencySummary>,
}

impl PartialEq for ScenarioReport {
    fn eq(&self, other: &Self) -> bool {
        // `latency` is deliberately omitted: replayed traces carry no
        // timing, and cross-applier byte-identity must not depend on
        // wall-clock measurements.
        self.scenario == other.scenario
            && self.seed == other.seed
            && self.source_packets_sent == other.source_packets_sent
            && self.parity_packets_sent == other.parity_packets_sent
            && self.receivers == other.receivers
            && self.timeline == other.timeline
            && self.final_filters == other.final_filters
    }
}

impl ScenarioReport {
    /// Total packets the network delivered but receivers failed to surface,
    /// across all receivers.  Must be zero in a healthy run.
    pub fn undelivered_total(&self) -> u64 {
        self.receivers.iter().map(|r| r.undelivered).sum()
    }

    /// Total packets lost beyond recovery, across all receivers.
    pub fn lost_total(&self) -> u64 {
        self.receivers.iter().map(|r| r.lost).sum()
    }

    /// Total packets recovered by FEC, across all receivers.
    pub fn recovered_total(&self) -> u64 {
        self.receivers.iter().map(|r| r.recovered).sum()
    }

    /// `true` if the chain converged back to empty by the end of the run
    /// (the expected end state when the link finishes clean).
    pub fn converged(&self) -> bool {
        self.final_filters.is_empty()
    }

    /// `true` if the timeline shows at least one FEC insertion.
    pub fn fec_was_inserted(&self) -> bool {
        self.timeline
            .iter()
            .any(|t| t.entry.starts_with("action insert") && t.entry.contains("fec-encoder"))
    }

    /// `true` if the timeline shows the FEC encoder being removed again.
    pub fn fec_was_removed(&self) -> bool {
        self.timeline
            .iter()
            .any(|t| t.entry.starts_with("action remove fec-encoder"))
    }

    /// `true` if the first FEC insertion precedes the first removal — i.e.
    /// the loop inserted FEC in response to the spike and took it out after
    /// recovery, in that order.
    pub fn fec_inserted_then_removed(&self) -> bool {
        let insert = self
            .timeline
            .iter()
            .position(|t| t.entry.starts_with("action insert") && t.entry.contains("fec-encoder"));
        let remove = self
            .timeline
            .iter()
            .position(|t| t.entry.starts_with("action remove fec-encoder"));
        matches!((insert, remove), (Some(i), Some(r)) if i < r)
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (seed {}): {} source + {} parity packets, {} adaptation steps",
            self.scenario,
            self.seed,
            self.source_packets_sent,
            self.parity_packets_sent,
            self.timeline.len()
        )?;
        for (index, receiver) in self.receivers.iter().enumerate() {
            writeln!(
                f,
                "  receiver-{index}: delivered={} recovered={} lost={} undelivered={} availability={:.2}%",
                receiver.delivered,
                receiver.recovered,
                receiver.lost,
                receiver.undelivered,
                receiver.availability() * 100.0
            )?;
        }
        write!(
            f,
            "  final chain: {}",
            if self.final_filters.is_empty() {
                "-".to_string()
            } else {
                self.final_filters.join("+")
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ScenarioReport {
        ScenarioReport {
            scenario: "unit".into(),
            seed: 1,
            source_packets_sent: 100,
            parity_packets_sent: 20,
            receivers: vec![
                ReceiverOutcome {
                    delivered: 90,
                    recovered: 8,
                    lost: 2,
                    undelivered: 0,
                },
                ReceiverOutcome {
                    delivered: 100,
                    recovered: 0,
                    lost: 0,
                    undelivered: 0,
                },
            ],
            timeline: vec![
                TimelineEntry {
                    time: SimTime::from_secs(2),
                    entry: "event LossRoseAbove rate=0.100000 threshold=0.020000".into(),
                },
                TimelineEntry {
                    time: SimTime::from_secs(2),
                    entry: "action insert@0 fec-encoder k=4 n=6".into(),
                },
                TimelineEntry {
                    time: SimTime::from_secs(9),
                    entry: "action remove fec-encoder".into(),
                },
            ],
            final_filters: Vec::new(),
            latency: None,
        }
    }

    #[test]
    fn totals_and_flags() {
        let report = report();
        assert_eq!(report.undelivered_total(), 0);
        assert_eq!(report.lost_total(), 2);
        assert_eq!(report.recovered_total(), 8);
        assert!(report.converged());
        assert!(report.fec_was_inserted());
        assert!(report.fec_was_removed());
        assert!(report.fec_inserted_then_removed());
        assert!((report.receivers[0].availability() - 0.98).abs() < 1e-9);
        assert!((report.receivers[1].availability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remove_before_insert_does_not_count_as_the_paper_shape() {
        let mut report = report();
        report.timeline.reverse();
        assert!(report.fec_was_inserted());
        assert!(!report.fec_inserted_then_removed());
    }

    #[test]
    fn display_summarises_the_run() {
        let text = report().to_string();
        assert!(text.contains("unit (seed 1)"));
        assert!(text.contains("receiver-0"));
        assert!(text.contains("final chain: -"));
        let empty = ReceiverOutcome {
            delivered: 0,
            recovered: 0,
            lost: 0,
            undelivered: 0,
        };
        assert!((empty.availability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn undelivered_packets_count_against_availability() {
        // A broken pipeline (90 of 100 packets stuck) must read as 5%
        // availability, not as the 50% a lost-only denominator would claim.
        let broken = ReceiverOutcome {
            delivered: 5,
            recovered: 0,
            lost: 5,
            undelivered: 90,
        };
        assert!((broken.availability() - 0.05).abs() < 1e-9);
    }
}
