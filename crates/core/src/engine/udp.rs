//! Appliers that run a scenario's chain over **real loopback UDP sockets**.
//!
//! Same closed loop, different data plane: where the threaded and pooled
//! appliers move packets over in-process pipes, [`UdpApplier`] and
//! [`UdpFanoutApplier`] encode every packet into a datagram, send it to a
//! proxy whose stream/session endpoints are UDP sockets
//! ([`Proxy::add_stream_udp`] / [`Proxy::add_session_udp`]), and decode
//! what comes back off the application-side sockets:
//!
//! ```text
//!   engine ──encode──▶ UDP ──▶ UdpIngress ─▶ chain ─▶ UdpEgress ──▶ UDP ──decode──▶ engine
//! ```
//!
//! Determinism over a real socket path relies on two facts: loopback UDP
//! from a single socket is FIFO and (with window-bounded in-flight data)
//! lossless, and the appliers quiesce with the same control-marker
//! protocol as their in-process siblings — a [`PacketKind::Control`]
//! marker rides the full socket → chain → socket path, so everything a
//! window produced is collected, in order, before the engine moves on.
//! The scenario-matrix harness holds these appliers to the same standard
//! as the rest: the reports (delivered + recovered totals included) must
//! match the sync applier exactly at fixed seeds.

use std::net::UdpSocket;

use rapidware_packet::{Packet, PacketKind, SeqNo};
use rapidware_proxy::{Proxy, UdpSessionConfig, UdpSessionHandle, UdpStreamConfig, UdpStreamHandle};
use rapidware_raplets::{apply_to_proxy, apply_to_session, AdaptationAction};
use rapidware_streams::DetachableReceiver;
use rapidware_transport::{UdpConfig, UdpIngress};

use super::applier::{marker_stream, ActionApplier};
use super::fanout::{drain_lanes_to_eof, drain_lanes_until_marker, FanoutApplier, FanoutSpec};

/// Encodes `packet` and sends it to `peer` as one datagram.
fn transmit(socket: &UdpSocket, peer: std::net::SocketAddr, packet: &Packet, scratch: &mut Vec<u8>) {
    packet.encode_into(scratch);
    socket
        .send_to(scratch, peer)
        .expect("loopback sends do not fail");
}

fn marker(seq: u64) -> Packet {
    Packet::new(marker_stream(), SeqNo::new(seq), PacketKind::Control, Vec::new())
}

/// The wire applier: one flat stream on a [`Proxy`] whose endpoints are
/// loopback UDP sockets, reconfigured through the ordinary proxy control
/// surface while datagrams flow.
#[derive(Debug)]
pub struct UdpApplier {
    proxy: Proxy,
    stream: String,
    handle: UdpStreamHandle,
    tx: UdpSocket,
    scratch: Vec<u8>,
    rx: UdpIngress,
    next_marker: u64,
    finished: bool,
}

impl UdpApplier {
    /// Spins up a proxy with one UDP-backed stream processing packets in
    /// batches of up to `batch_size`, plus the application-side sockets on
    /// both ends of it.  `window_hint` sizes the pipes so a whole sample
    /// window (plus parity overhead) fits without stalling the pumps.
    ///
    /// # Panics
    ///
    /// Panics if a loopback socket cannot be bound (resource exhaustion).
    pub fn new(batch_size: usize, window_hint: usize) -> Self {
        let capacity = (window_hint.max(32)) * 4;
        let udp_config = UdpConfig::default().with_capacity(capacity);
        let rx = UdpIngress::bind("127.0.0.1:0", &udp_config)
            .expect("binding an ephemeral loopback socket");
        let mut proxy = Proxy::new("scenario-proxy");
        let handle = proxy
            .add_stream_udp(
                "scenario",
                UdpStreamConfig::to_peer(rx.local_addr())
                    .with_capacity(capacity)
                    .with_batch_size(batch_size.max(1)),
            )
            .expect("a fresh proxy accepts its first UDP stream");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("binding the app-side send socket");
        Self {
            proxy,
            stream: "scenario".to_string(),
            handle,
            tx,
            scratch: Vec::new(),
            rx,
            next_marker: 0,
            finished: false,
        }
    }

    fn quiesce(&mut self) -> Vec<Packet> {
        let marker_seq = self.next_marker;
        self.next_marker += 1;
        transmit(&self.tx, self.handle.ingress_addr(), &marker(marker_seq), &mut self.scratch);
        let mut collected = Vec::new();
        loop {
            let packet = self
                .rx
                .recv()
                .expect("the marker is still in flight, so the stream cannot end");
            if packet.kind() == PacketKind::Control && packet.stream() == marker_stream() {
                if packet.seq().value() == marker_seq {
                    return collected;
                }
                continue;
            }
            collected.push(packet);
        }
    }
}

impl ActionApplier for UdpApplier {
    fn label(&self) -> &'static str {
        "udp"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Packet> {
        for packet in &packets {
            transmit(&self.tx, self.handle.ingress_addr(), packet, &mut self.scratch);
        }
        self.quiesce()
    }

    fn apply(&mut self, actions: &[AdaptationAction]) -> Vec<Packet> {
        apply_to_proxy(&self.proxy, &self.stream, actions)
            .expect("responder actions are valid for the live chain");
        self.quiesce()
    }

    fn installed_filters(&self) -> Vec<String> {
        self.proxy
            .filter_names(&self.stream)
            .expect("the scenario stream exists for the applier's lifetime")
    }

    fn finish(&mut self) -> Vec<Packet> {
        self.finished = true;
        // Closing the chain input flushes every filter; the residue rides
        // out the egress followed by the transport FIN, which ends the
        // app-side stream.
        self.handle.close_input();
        let mut residue = Vec::new();
        while let Ok(packet) = self.rx.recv() {
            if packet.kind() == PacketKind::Control && packet.stream() == marker_stream() {
                continue;
            }
            residue.push(packet);
        }
        residue
    }
}

impl Drop for UdpApplier {
    fn drop(&mut self) {
        if !self.finished {
            self.handle.close_input();
        }
        let _ = self.proxy.shutdown();
    }
}

/// The wire fanout applier: a session on a [`Proxy`] with a UDP ingress
/// and one UDP egress per receiver lane, each delivering to its own
/// application-side socket.
pub struct UdpFanoutApplier {
    proxy: Proxy,
    session: String,
    handle: UdpSessionHandle,
    tx: UdpSocket,
    scratch: Vec<u8>,
    /// Application-side sockets, one per lane (kept alive; their pipe
    /// receivers are in `outputs`).
    lane_rx: Vec<UdpIngress>,
    outputs: Vec<DetachableReceiver<Packet>>,
    lane_names: Vec<String>,
    /// Packets collected for a lane outside its own turn; prepended to that
    /// lane's next `process` result so nothing is ever dropped.
    pending: Vec<Vec<Packet>>,
    next_marker: u64,
    finished: bool,
}

impl std::fmt::Debug for UdpFanoutApplier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpFanoutApplier")
            .field("lanes", &self.lane_names)
            .finish()
    }
}

impl UdpFanoutApplier {
    /// Spins up a UDP-backed session for a spec: head filters installed,
    /// one lane (and one application-side socket) per
    /// [`LaneSpec`](super::LaneSpec), pipes sized so a whole sample window
    /// fits without stalling the pumps.
    ///
    /// # Panics
    ///
    /// Panics if a loopback socket cannot be bound (resource exhaustion).
    pub fn for_spec(spec: &FanoutSpec) -> Self {
        let capacity = (spec.sample_interval.max(32) as usize) * 4;
        let udp_config = UdpConfig::default().with_capacity(capacity);
        let mut lane_rx = Vec::with_capacity(spec.lanes.len());
        let mut session_config = UdpSessionConfig::new()
            .with_capacity(capacity)
            .with_batch_size(spec.batch_size.max(1));
        for lane in &spec.lanes {
            let ingress = UdpIngress::bind("127.0.0.1:0", &udp_config)
                .expect("binding an ephemeral loopback socket");
            session_config = session_config.with_lane(&lane.name, ingress.local_addr());
            lane_rx.push(ingress);
        }
        let mut proxy = Proxy::new("scenario-proxy");
        let handle = proxy
            .add_session_udp(spec.name.clone(), session_config)
            .expect("a fresh proxy accepts its first UDP session");
        let session = proxy.session(&spec.name).expect("the session was just created");
        for (position, filter_spec) in spec.head_filters.iter().enumerate() {
            session
                .insert_head_filter(position, filter_spec)
                .expect("head filter specs reference registered kinds");
        }
        let tx = UdpSocket::bind("127.0.0.1:0").expect("binding the app-side send socket");
        let outputs: Vec<DetachableReceiver<Packet>> =
            lane_rx.iter().map(UdpIngress::receiver).collect();
        let lane_names: Vec<String> = spec.lanes.iter().map(|lane| lane.name.clone()).collect();
        let lane_count = lane_names.len();
        Self {
            proxy,
            session: spec.name.clone(),
            handle,
            tx,
            scratch: Vec::new(),
            lane_rx,
            outputs,
            lane_names,
            pending: vec![Vec::new(); lane_count],
            next_marker: 0,
            finished: false,
        }
    }

    /// Sends one control marker into the session's UDP ingress (it fans
    /// out to every lane) and drains all lanes concurrently until each copy
    /// emerges.
    fn quiesce_all(&mut self) -> Vec<Vec<Packet>> {
        let marker_seq = self.next_marker;
        self.next_marker += 1;
        transmit(&self.tx, self.handle.ingress_addr(), &marker(marker_seq), &mut self.scratch);
        drain_lanes_until_marker(&self.outputs, marker_seq)
    }
}

impl FanoutApplier for UdpFanoutApplier {
    fn label(&self) -> &'static str {
        "udp"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Vec<Packet>> {
        for packet in &packets {
            transmit(&self.tx, self.handle.ingress_addr(), packet, &mut self.scratch);
        }
        let mut out = self.quiesce_all();
        for (lane, extra) in out.iter_mut().enumerate() {
            if !self.pending[lane].is_empty() {
                let mut merged = std::mem::take(&mut self.pending[lane]);
                merged.append(extra);
                *extra = merged;
            }
        }
        out
    }

    fn apply(&mut self, lane: usize, actions: &[AdaptationAction]) -> Vec<Packet> {
        let session = self
            .proxy
            .session(&self.session)
            .expect("the scenario session exists for the applier's lifetime");
        apply_to_session(session, &self.lane_names[lane], actions)
            .expect("responder actions are valid for the live lane");
        let mut all = self.quiesce_all();
        let target = std::mem::take(&mut all[lane]);
        for (index, extra) in all.into_iter().enumerate() {
            if !extra.is_empty() {
                self.pending[index].extend(extra);
            }
        }
        target
    }

    fn lane_filters(&self, lane: usize) -> Vec<String> {
        self.proxy
            .session(&self.session)
            .and_then(|session| session.lane_filter_names(&self.lane_names[lane]))
            .expect("spec lanes exist for the applier's lifetime")
    }

    fn head_filters(&self) -> Vec<String> {
        self.proxy
            .session(&self.session)
            .expect("the scenario session exists for the applier's lifetime")
            .head_filter_names()
    }

    fn finish(&mut self) -> Vec<Vec<Packet>> {
        self.finished = true;
        // Closing the session input flushes the head through every lane;
        // each lane's egress sends its residue and a FIN, which closes the
        // matching app-side pipe, so the EOF drain below terminates.
        self.handle.close_input();
        let mut residue: Vec<Vec<Packet>> = std::mem::take(&mut self.pending);
        drain_lanes_to_eof(&self.outputs, &mut residue);
        residue
    }
}

impl Drop for UdpFanoutApplier {
    fn drop(&mut self) {
        if !self.finished {
            self.handle.close_input();
        }
        let _ = self.lane_rx.drain(..);
        let _ = self.proxy.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{FanoutEngine, ScenarioEngine, ScenarioSpec};

    #[test]
    fn the_udp_applier_matches_the_sync_applier_on_a_small_scenario() {
        let spec = ScenarioSpec::handoff_cliff().with_packets(400);
        let engine = ScenarioEngine::new(spec);
        let sync = engine.run_sync();
        let udp = engine.run_udp();
        assert_eq!(sync.report, udp.report, "the wire must not change the outcome");
        assert_eq!(sync.trace.canonical_text(), udp.trace.canonical_text());
    }

    #[test]
    fn the_udp_fanout_applier_matches_the_sync_applier_on_a_small_spec() {
        let spec = super::super::FanoutSpec::all_wired().with_packets(300);
        let engine = FanoutEngine::new(spec);
        let sync = engine.run_sync();
        let udp = engine.run_udp();
        assert_eq!(sync.report, udp.report, "the wire must not change the outcome");
    }
}
