//! Declarative scenario descriptions.
//!
//! A [`ScenarioSpec`] says *what* to simulate — topology, loss regime,
//! media workload, raplet set, batch size — without saying how; the
//! [`ScenarioEngine`](super::ScenarioEngine) turns it into a closed-loop
//! run.  The module ships the built-in scenario matrix the test harness and
//! CI run at fixed seeds: steady WLAN, bursty Gilbert–Elliott, handoff
//! cliff, multicast fan-out with one lossy receiver, congestion ramp, and a
//! flapping link.

use std::fmt;

use rapidware_media::AudioConfig;
use rapidware_netsim::{
    BernoulliLoss, DistanceLossModel, GilbertElliottLoss, LinearWalk, LossModel, PerfectLink,
    ScheduledLoss, SimTime, StrideLoss, WirelessLan,
};

/// A degenerate scenario description, rejected before any simulation state
/// is built.
///
/// The engines used to `assert!` their way past these (or panic deep inside
/// `netsim` — an empty [`LossRegime::Phased`] only blew up when
/// `ScheduledLoss::new` was finally constructed).  Validation turns each
/// degenerate input into a typed, test-able error at the API boundary:
/// [`ScenarioSpec::validate`], [`FanoutSpec::validate`](super::FanoutSpec::validate),
/// and the engines' `try_run_with` entry points all return it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec transmits zero source packets.
    ZeroPackets {
        /// Name of the offending scenario.
        scenario: String,
    },
    /// A flat scenario with no receivers.
    NoReceivers {
        /// Name of the offending scenario.
        scenario: String,
    },
    /// A fanout scenario with no lanes.
    NoLanes {
        /// Name of the offending scenario.
        scenario: String,
    },
    /// A [`LossRegime::Phased`] with an empty phase list.
    EmptyPhases {
        /// Name of the offending scenario.
        scenario: String,
        /// Which receiver or lane carries the empty schedule.
        context: String,
    },
    /// A [`LossRegime::Walking`] nested inside [`LossRegime::Phased`]
    /// (mobility is already a function of time and cannot be phased).
    NestedWalk {
        /// Name of the offending scenario.
        scenario: String,
        /// Which receiver or lane carries the nested walk.
        context: String,
    },
    /// A stride regime with a zero stride.
    ZeroStride {
        /// Name of the offending scenario.
        scenario: String,
        /// Which receiver or lane carries the zero stride.
        context: String,
    },
    /// Two fanout lanes share a name (live sessions key lanes by name).
    DuplicateLane {
        /// Name of the offending scenario.
        scenario: String,
        /// The duplicated lane name.
        lane: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ZeroPackets { scenario } => {
                write!(f, "{scenario}: a scenario must transmit at least one packet")
            }
            SpecError::NoReceivers { scenario } => {
                write!(f, "{scenario}: a scenario needs at least one receiver")
            }
            SpecError::NoLanes { scenario } => {
                write!(f, "{scenario}: a fanout scenario needs at least one lane")
            }
            SpecError::EmptyPhases { scenario, context } => {
                write!(f, "{scenario}: {context} has a phased regime with no phases")
            }
            SpecError::NestedWalk { scenario, context } => {
                write!(f, "{scenario}: {context} nests a walking regime inside phases")
            }
            SpecError::ZeroStride { scenario, context } => {
                write!(f, "{scenario}: {context} has a stride regime with stride 0")
            }
            SpecError::DuplicateLane { scenario, lane } => {
                write!(f, "{scenario}: duplicate lane name {lane:?}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Validates one receiver/lane regime, shared by [`ScenarioSpec::validate`]
/// and [`FanoutSpec::validate`](super::FanoutSpec::validate).
pub(super) fn validate_regime(
    regime: &LossRegime,
    scenario: &str,
    context: &str,
) -> Result<(), SpecError> {
    match regime {
        LossRegime::Stride { every: 0 } => Err(SpecError::ZeroStride {
            scenario: scenario.to_string(),
            context: context.to_string(),
        }),
        LossRegime::Phased(phases) => {
            if phases.is_empty() {
                return Err(SpecError::EmptyPhases {
                    scenario: scenario.to_string(),
                    context: context.to_string(),
                });
            }
            for (_, inner) in phases {
                if matches!(inner, LossRegime::Walking(_)) {
                    return Err(SpecError::NestedWalk {
                        scenario: scenario.to_string(),
                        context: context.to_string(),
                    });
                }
                validate_regime(inner, scenario, context)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// The loss regime of one receiver's wireless channel over the whole run.
///
/// Regimes are *descriptions*: [`attach`](LossRegime::attach) instantiates
/// the corresponding `netsim` machinery on a [`WirelessLan`], so the same
/// spec can be re-run any number of times (and on any applier) with
/// identical behaviour per seed.
#[derive(Debug, Clone, PartialEq)]
pub enum LossRegime {
    /// No loss at all.
    Perfect,
    /// Independent per-packet loss at a fixed rate.
    Bernoulli {
        /// Per-packet loss probability in `[0, 1]`.
        rate: f64,
    },
    /// Distance-dependent loss for a stationary receiver (the WaveLAN
    /// calibration of the paper's testbed).
    AtDistance {
        /// Distance from the access point in meters.
        meters: f64,
    },
    /// Two-state Markov burst loss.
    GilbertElliott {
        /// Probability of entering the bad state, per packet.
        p_good_to_bad: f64,
        /// Probability of leaving the bad state, per packet.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
    /// Deterministic stride loss: every `every`-th transmission dropped.
    /// The generator's sharpest probe of FEC block alignment — a stride
    /// beating against the (n, k) group size produces worst-case
    /// correlated erasures.
    Stride {
        /// Drop every `every`-th packet (must be at least 1).
        every: u64,
    },
    /// A mobile receiver walking the given trace under distance loss.
    Walking(LinearWalk),
    /// Time-phased regime: each `(start, regime)` phase is in effect from
    /// its start time until the next phase begins.  Phases may not nest
    /// [`Walking`](LossRegime::Walking) (mobility is already a function of
    /// time).
    Phased(Vec<(SimTime, LossRegime)>),
}

impl LossRegime {
    /// Builds the loss model for this regime.
    ///
    /// # Panics
    ///
    /// Panics on [`LossRegime::Walking`] (mobile receivers attach through
    /// the LAN's mobility API, not through a bare loss model) — including a
    /// `Walking` nested inside [`LossRegime::Phased`].
    fn to_model(&self) -> Box<dyn LossModel> {
        match self {
            LossRegime::Perfect => Box::new(PerfectLink),
            LossRegime::Bernoulli { rate } => Box::new(BernoulliLoss::new(*rate)),
            LossRegime::AtDistance { meters } => {
                let mut model = DistanceLossModel::wavelan_2mbps();
                model.set_distance(*meters);
                Box::new(model)
            }
            LossRegime::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => Box::new(GilbertElliottLoss::new(
                *p_good_to_bad,
                *p_bad_to_good,
                *loss_good,
                *loss_bad,
            )),
            LossRegime::Stride { every } => Box::new(StrideLoss::new(*every)),
            LossRegime::Phased(phases) => Box::new(ScheduledLoss::new(
                phases
                    .iter()
                    .map(|(start, regime)| (*start, regime.to_model()))
                    .collect(),
            )),
            LossRegime::Walking(_) => {
                panic!("walking receivers attach via mobility, not a bare loss model")
            }
        }
    }

    /// Attaches a receiver with this regime to `lan` under `name`.
    pub fn attach(&self, lan: &mut WirelessLan, name: &str) {
        match self {
            LossRegime::Walking(walk) => {
                lan.add_mobile_receiver(name, DistanceLossModel::wavelan_2mbps(), Box::new(*walk));
            }
            other => {
                lan.add_receiver(name, other.to_model());
            }
        }
    }
}

/// The raplet set installed into the adaptation engine for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RapletSet {
    /// Loss-observer thresholds `(high, low)` as loss fractions.
    pub loss_thresholds: (f64, f64),
    /// Exponential smoothing factor of the loss observer, in `(0, 1]`.
    pub smoothing: f64,
    /// FEC parameters `(n, k)` installed on a moderate loss rise.
    pub fec_moderate: (usize, usize),
    /// FEC parameters `(n, k)` installed when loss is heavy.
    pub fec_strong: (usize, usize),
    /// Smoothed loss rate at which the strong tier is preferred.
    pub strong_threshold: f64,
}

impl RapletSet {
    /// The paper's configuration: insert FEC(6,4) above 2 % loss, upgrade
    /// to FEC(8,4) above 10 %, remove below 0.5 %.
    pub fn paper_default() -> Self {
        Self {
            loss_thresholds: (0.02, 0.005),
            smoothing: 0.5,
            fec_moderate: (6, 4),
            fec_strong: (8, 4),
            strong_threshold: 0.10,
        }
    }
}

/// A complete, declarative description of one closed-loop scenario.
///
/// Everything a run depends on is in the spec: the same spec and seed yield
/// a byte-identical [`ScenarioTrace`](super::ScenarioTrace) on every run,
/// on either applier.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in traces and reports).
    pub name: String,
    /// RNG seed for the network simulator.
    pub seed: u64,
    /// Number of source media packets to transmit.
    pub packets: u64,
    /// The media workload (packet sizes, rates, timestamps).
    pub audio: AudioConfig,
    /// One loss regime per receiver; receiver 0 is the monitored link that
    /// feeds the adaptation engine.
    pub receivers: Vec<LossRegime>,
    /// The raplets driving adaptation.
    pub raplets: RapletSet,
    /// Width of the sampling window, in source packets.
    pub sample_interval: u64,
    /// Per-stage batch size used by the threaded applier (1 = per-packet).
    pub batch_size: usize,
    /// Whether this scenario's loss schedule should provoke at least one
    /// FEC insertion (checked by the scenario-matrix harness).
    pub expect_adaptation: bool,
    /// Whether the link is clean again at the end of the run, so the chain
    /// must have converged back to empty (no FEC installed).
    pub expect_clean_finish: bool,
    /// Whether the run brackets the chain with the AEAD secure-channel
    /// pair: an `encrypt` stage seals every payload and a `decrypt` stage
    /// verifies-then-strips it, with one key rotation spliced in at the
    /// run's midpoint.  The stages are installed before the first window,
    /// so FEC adaptation (which inserts at the head) ends up upstream of
    /// them and parity is sealed too.  Specs with this flag cannot expect
    /// a clean finish (the crypto stages stay installed).
    pub secure: bool,
}

impl ScenarioSpec {
    fn base(name: &str, packets: u64, receivers: Vec<LossRegime>) -> Self {
        Self {
            name: name.to_string(),
            seed: 2001,
            packets,
            audio: AudioConfig::pcm_8khz_stereo_8bit(),
            receivers,
            raplets: RapletSet::paper_default(),
            sample_interval: 50, // one second of audio per sample window
            batch_size: 8,
            expect_adaptation: true,
            expect_clean_finish: true,
            secure: false,
        }
    }

    /// Steady WLAN: one stationary receiver close to the access point.
    /// Loss stays far below the observer's threshold, so the control loop
    /// must stay quiet — the no-false-positive baseline.
    pub fn steady_wlan() -> Self {
        Self {
            expect_adaptation: false,
            ..Self::base(
                "steady-wlan",
                1_500,
                vec![LossRegime::AtDistance { meters: 10.0 }],
            )
        }
    }

    /// Bursty Gilbert–Elliott interference: a clean lead-in, a long bursty
    /// middle, and a clean tail.  FEC must appear during the bursts and
    /// disappear after they end.
    pub fn bursty_gilbert_elliott() -> Self {
        Self::base(
            "bursty-gilbert-elliott",
            2_500,
            vec![LossRegime::Phased(vec![
                (SimTime::ZERO, LossRegime::Perfect),
                (
                    SimTime::from_secs(8),
                    LossRegime::GilbertElliott {
                        p_good_to_bad: 0.05,
                        p_bad_to_good: 0.20,
                        loss_good: 0.001,
                        loss_bad: 0.6,
                    },
                ),
                (SimTime::from_secs(34), LossRegime::Perfect),
            ])],
        )
    }

    /// Handoff cliff: the link is perfect, collapses to 50 % loss during a
    /// simulated access-point handoff, then is perfect again.  The spike is
    /// heavy enough that the responder should go straight to its strong
    /// FEC tier.
    pub fn handoff_cliff() -> Self {
        Self::base(
            "handoff-cliff",
            2_000,
            vec![LossRegime::Phased(vec![
                (SimTime::ZERO, LossRegime::Perfect),
                (SimTime::from_secs(10), LossRegime::Bernoulli { rate: 0.5 }),
                (SimTime::from_secs(18), LossRegime::Perfect),
            ])],
        )
    }

    /// Multicast fan-out with one lossy receiver: five receivers share the
    /// stream; only the monitored one suffers a loss episode.  The sender
    /// inserts FEC for the lossy receiver's sake while the clean receivers
    /// simply absorb the parity overhead — the paper's multicast argument.
    pub fn multicast_fanout_lossy_receiver() -> Self {
        let mut receivers = vec![LossRegime::Phased(vec![
            (SimTime::ZERO, LossRegime::Perfect),
            (SimTime::from_secs(8), LossRegime::Bernoulli { rate: 0.12 }),
            (SimTime::from_secs(26), LossRegime::Perfect),
        ])];
        receivers.extend((0..4).map(|_| LossRegime::AtDistance { meters: 8.0 }));
        Self::base("multicast-fanout-lossy-receiver", 2_200, receivers)
    }

    /// Congestion ramp: loss climbs in steps, peaks, and subsides — the
    /// adaptation should track it up (possibly upgrading the code) and back
    /// down to an empty chain.
    pub fn congestion_ramp() -> Self {
        Self::base(
            "congestion-ramp",
            2_800,
            vec![LossRegime::Phased(vec![
                (SimTime::ZERO, LossRegime::Perfect),
                (SimTime::from_secs(8), LossRegime::Bernoulli { rate: 0.04 }),
                (SimTime::from_secs(16), LossRegime::Bernoulli { rate: 0.10 }),
                (SimTime::from_secs(24), LossRegime::Bernoulli { rate: 0.18 }),
                (SimTime::from_secs(32), LossRegime::Bernoulli { rate: 0.06 }),
                (SimTime::from_secs(40), LossRegime::Perfect),
            ])],
        )
    }

    /// Flapping link: the channel alternates between clean and badly lossy
    /// several times.  Hysteresis keeps the responses to one insert per bad
    /// episode and one removal per recovery — the event-storm regression
    /// scenario.
    pub fn flapping_link() -> Self {
        let mut phases = vec![(SimTime::ZERO, LossRegime::Perfect)];
        for flap in 0..3u64 {
            let start = 8 + flap * 12;
            phases.push((SimTime::from_secs(start), LossRegime::Bernoulli { rate: 0.30 }));
            phases.push((SimTime::from_secs(start + 5), LossRegime::Perfect));
        }
        Self::base("flapping-link", 2_600, vec![LossRegime::Phased(phases)])
    }

    /// The whole built-in scenario matrix, in a stable order.
    pub fn builtin_matrix() -> Vec<Self> {
        vec![
            Self::steady_wlan(),
            Self::bursty_gilbert_elliott(),
            Self::handoff_cliff(),
            Self::multicast_fanout_lossy_receiver(),
            Self::congestion_ramp(),
            Self::flapping_link(),
        ]
    }

    /// Checks the spec for degenerate inputs that would otherwise panic
    /// deep inside the engine or the simulator: zero packets, no
    /// receivers, empty phase lists, nested walks, zero strides.
    ///
    /// The engines call this from `try_run_with`; callers constructing
    /// specs programmatically (the scenario generator does) can call it
    /// directly to reject a sample before running anything.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.packets == 0 {
            return Err(SpecError::ZeroPackets {
                scenario: self.name.clone(),
            });
        }
        if self.receivers.is_empty() {
            return Err(SpecError::NoReceivers {
                scenario: self.name.clone(),
            });
        }
        for (index, regime) in self.receivers.iter().enumerate() {
            validate_regime(regime, &self.name, &format!("receiver {index}"))?;
        }
        Ok(())
    }

    /// Overrides the simulator seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the threaded applier's per-stage batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Overrides the number of source packets.
    #[must_use]
    pub fn with_packets(mut self, packets: u64) -> Self {
        self.packets = packets;
        self
    }

    /// Enables the AEAD secure-channel bracket (see
    /// [`secure`](Self::secure)).  Clears `expect_clean_finish`: the crypto
    /// stages are meant to outlive the run.
    #[must_use]
    pub fn with_secure(mut self) -> Self {
        self.secure = true;
        self.expect_clean_finish = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_matrix_is_complete_and_named() {
        let matrix = ScenarioSpec::builtin_matrix();
        assert_eq!(matrix.len(), 6);
        let names: Vec<&str> = matrix.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "steady-wlan",
                "bursty-gilbert-elliott",
                "handoff-cliff",
                "multicast-fanout-lossy-receiver",
                "congestion-ramp",
                "flapping-link",
            ]
        );
        for spec in &matrix {
            assert!(!spec.receivers.is_empty(), "{} has no receivers", spec.name);
            assert!(spec.packets > 0);
            assert!(spec.sample_interval > 0);
        }
    }

    #[test]
    fn regimes_attach_to_a_lan() {
        let mut lan = WirelessLan::wavelan_2mbps(1);
        LossRegime::Perfect.attach(&mut lan, "perfect");
        LossRegime::Bernoulli { rate: 0.1 }.attach(&mut lan, "bernoulli");
        LossRegime::AtDistance { meters: 25.0 }.attach(&mut lan, "stationary");
        LossRegime::Walking(LinearWalk::office_to_conference_room()).attach(&mut lan, "walker");
        LossRegime::Phased(vec![
            (SimTime::ZERO, LossRegime::Perfect),
            (SimTime::from_secs(5), LossRegime::Bernoulli { rate: 0.5 }),
        ])
        .attach(&mut lan, "phased");
        assert_eq!(lan.receiver_count(), 5);
    }

    #[test]
    #[should_panic(expected = "mobility")]
    fn walking_inside_phases_is_rejected() {
        let mut lan = WirelessLan::wavelan_2mbps(1);
        LossRegime::Phased(vec![(
            SimTime::ZERO,
            LossRegime::Walking(LinearWalk::office_to_conference_room()),
        )])
        .attach(&mut lan, "bad");
    }

    #[test]
    fn every_builtin_spec_validates() {
        for spec in ScenarioSpec::builtin_matrix() {
            assert_eq!(spec.validate(), Ok(()), "{} must validate", spec.name);
        }
    }

    #[test]
    fn zero_packets_are_rejected_with_a_typed_error() {
        let spec = ScenarioSpec::steady_wlan().with_packets(0);
        assert_eq!(
            spec.validate(),
            Err(SpecError::ZeroPackets {
                scenario: "steady-wlan".into()
            })
        );
    }

    #[test]
    fn a_spec_without_receivers_is_rejected_with_a_typed_error() {
        let mut spec = ScenarioSpec::steady_wlan();
        spec.receivers.clear();
        assert_eq!(
            spec.validate(),
            Err(SpecError::NoReceivers {
                scenario: "steady-wlan".into()
            })
        );
    }

    #[test]
    fn an_empty_phase_list_is_rejected_with_a_typed_error() {
        let mut spec = ScenarioSpec::steady_wlan();
        spec.receivers = vec![LossRegime::Perfect, LossRegime::Phased(Vec::new())];
        let err = spec.validate().unwrap_err();
        assert_eq!(
            err,
            SpecError::EmptyPhases {
                scenario: "steady-wlan".into(),
                context: "receiver 1".into()
            }
        );
        assert!(err.to_string().contains("no phases"), "{err}");
    }

    #[test]
    fn a_walk_nested_inside_phases_is_rejected_with_a_typed_error() {
        let mut spec = ScenarioSpec::steady_wlan();
        spec.receivers = vec![LossRegime::Phased(vec![(
            SimTime::ZERO,
            LossRegime::Walking(LinearWalk::office_to_conference_room()),
        )])];
        assert!(matches!(spec.validate(), Err(SpecError::NestedWalk { .. })));
    }

    #[test]
    fn a_zero_stride_is_rejected_with_a_typed_error() {
        let mut spec = ScenarioSpec::steady_wlan();
        spec.receivers = vec![LossRegime::Phased(vec![(
            SimTime::ZERO,
            LossRegime::Stride { every: 0 },
        )])];
        assert!(matches!(spec.validate(), Err(SpecError::ZeroStride { .. })));
        spec.receivers = vec![LossRegime::Stride { every: 3 }];
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn stride_regimes_attach_and_drop_deterministically() {
        let mut lan = WirelessLan::wavelan_2mbps(9);
        LossRegime::Stride { every: 2 }.attach(&mut lan, "stride");
        assert_eq!(lan.receiver_count(), 1);
    }

    #[test]
    fn builders_override_fields() {
        let spec = ScenarioSpec::steady_wlan()
            .with_seed(99)
            .with_batch_size(0)
            .with_packets(10);
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.batch_size, 1, "batch size is clamped to at least 1");
        assert_eq!(spec.packets, 10);
    }
}
