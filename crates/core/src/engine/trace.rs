//! Replayable scenario traces.
//!
//! Every step of a closed-loop run — link samples, observer events, applied
//! actions, chain reconfigurations, final accounting — is appended to a
//! [`ScenarioTrace`] stamped in [`SimTime`].  Traces serve three purposes:
//!
//! 1. **Determinism evidence**: [`canonical_text`](ScenarioTrace::canonical_text)
//!    renders the trace into a stable byte representation, so two runs of
//!    the same spec and seed can be compared byte-for-byte.
//! 2. **Replay**: [`replay`](ScenarioTrace::replay) folds a recorded trace
//!    back into the [`ScenarioReport`] the live run produced, without
//!    re-simulating anything.
//! 3. **Debugging**: the text form is a readable timeline of what the
//!    control loop saw and did.

use std::fmt;

use rapidware_netsim::SimTime;
use rapidware_raplets::{AdaptationAction, AdaptationEvent};

use super::report::{ReceiverOutcome, ScenarioReport, TimelineEntry};

/// Renders an observer event in the trace's canonical form.
///
/// Rates are formatted with fixed precision: the values are deterministic
/// per seed, so fixed formatting makes the rendering deterministic too.
pub fn describe_event(event: &AdaptationEvent) -> String {
    match event {
        AdaptationEvent::LossRoseAbove { rate, threshold } => {
            format!("LossRoseAbove rate={rate:.6} threshold={threshold:.6}")
        }
        AdaptationEvent::LossFellBelow { rate, threshold } => {
            format!("LossFellBelow rate={rate:.6} threshold={threshold:.6}")
        }
        AdaptationEvent::ThroughputDropped {
            bits_per_second,
            floor_bps,
        } => format!("ThroughputDropped bps={bits_per_second} floor={floor_bps}"),
        AdaptationEvent::ThroughputRecovered {
            bits_per_second,
            floor_bps,
        } => format!("ThroughputRecovered bps={bits_per_second} floor={floor_bps}"),
    }
}

/// Renders an adaptation action in the trace's canonical form.
pub fn describe_action(action: &AdaptationAction) -> String {
    match action {
        AdaptationAction::Insert { position, spec } => format!("insert@{position} {spec}"),
        AdaptationAction::RemoveKind { kind } => format!("remove {kind}"),
        AdaptationAction::ReplaceKind { kind, spec } => format!("replace {kind} -> {spec}"),
    }
}

/// One recorded step of a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A link sample was taken on the monitored receiver.
    Sample {
        /// End of the sample window.
        time: SimTime,
        /// Payload packets put on the air during the window.
        sent: u64,
        /// Payload packets the monitored receiver got.
        delivered: u64,
        /// The window's raw loss rate.
        loss_rate: f64,
    },
    /// An observer raised an adaptation event.
    Observed {
        /// When the triggering sample was observed.
        time: SimTime,
        /// Canonical event rendering (see [`describe_event`]).
        event: String,
    },
    /// An action was applied to the chain.
    ActionApplied {
        /// When the action was applied.
        time: SimTime,
        /// Canonical action rendering (see [`describe_action`]).
        action: String,
    },
    /// The chain's installed filters after applying a batch of actions.
    ChainReconfigured {
        /// When the reconfiguration completed.
        time: SimTime,
        /// Installed filter names, in stream order.
        filters: Vec<String>,
    },
    /// Final per-receiver accounting, recorded once at the end of the run.
    ReceiverTotals {
        /// Receiver index in the spec's topology.
        receiver: usize,
        /// Payload packets delivered directly over the network.
        delivered: u64,
        /// Payload packets reconstructed by FEC.
        recovered: u64,
        /// Payload packets neither delivered nor recovered.
        lost: u64,
        /// Payload packets the network delivered but the receiver pipeline
        /// failed to surface (must be zero in a healthy run).
        undelivered: u64,
    },
    /// Run-level totals, recorded once at the end of the run.
    RunSummary {
        /// Source payload packets transmitted.
        source_packets: u64,
        /// Parity packets transmitted.
        parity_packets: u64,
        /// Filters still installed when the run ended.
        final_filters: Vec<String>,
    },
    /// A link sample was taken on one receiver lane of a fanout run.
    LaneSample {
        /// Lane index in the fanout spec.
        lane: usize,
        /// End of the sample window.
        time: SimTime,
        /// Payload packets this lane put on the air during the window.
        sent: u64,
        /// Payload packets this lane's receiver got during the window.
        delivered: u64,
        /// The window's raw loss rate on this lane.
        loss_rate: f64,
    },
    /// A lane's observer raised an adaptation event.
    LaneObserved {
        /// Lane index in the fanout spec.
        lane: usize,
        /// When the triggering sample was observed.
        time: SimTime,
        /// Canonical event rendering (see [`describe_event`]).
        event: String,
    },
    /// An action was applied to one lane's tail chain.
    LaneActionApplied {
        /// Lane index in the fanout spec.
        lane: usize,
        /// When the action was applied.
        time: SimTime,
        /// Canonical action rendering (see [`describe_action`]).
        action: String,
    },
    /// One lane's tail chain after applying a batch of actions.
    LaneChainReconfigured {
        /// Lane index in the fanout spec.
        lane: usize,
        /// When the reconfiguration completed.
        time: SimTime,
        /// Installed tail filter names, in stream order.
        filters: Vec<String>,
    },
    /// Final accounting for one receiver lane of a fanout run.
    LaneTotals {
        /// Lane index in the fanout spec.
        lane: usize,
        /// Lane name (from the spec).
        name: String,
        /// Payload packets delivered directly over this lane's link.
        delivered: u64,
        /// Payload packets reconstructed by this lane's FEC decoders.
        recovered: u64,
        /// Payload packets neither delivered nor recovered on this lane.
        lost: u64,
        /// Payload packets the link delivered but the lane pipeline failed
        /// to surface (must be zero in a healthy run).
        undelivered: u64,
        /// Parity packets this lane transmitted.
        parity_sent: u64,
        /// Tail filters still installed on this lane when the run ended.
        final_filters: Vec<String>,
    },
    /// Run-level totals of a fanout run, recorded once at the end.
    FanoutSummary {
        /// Source payload packets generated upstream of the head chain.
        source_packets: u64,
        /// Filters installed on the shared head chain when the run ended.
        head_filters: Vec<String>,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Sample {
                time,
                sent,
                delivered,
                loss_rate,
            } => write!(f, "[{time}] sample sent={sent} delivered={delivered} loss={loss_rate:.6}"),
            TraceEvent::Observed { time, event } => write!(f, "[{time}] event {event}"),
            TraceEvent::ActionApplied { time, action } => write!(f, "[{time}] action {action}"),
            TraceEvent::ChainReconfigured { time, filters } => {
                write!(f, "[{time}] chain {}", render_filters(filters))
            }
            TraceEvent::ReceiverTotals {
                receiver,
                delivered,
                recovered,
                lost,
                undelivered,
            } => write!(
                f,
                "receiver={receiver} delivered={delivered} recovered={recovered} lost={lost} undelivered={undelivered}"
            ),
            TraceEvent::RunSummary {
                source_packets,
                parity_packets,
                final_filters,
            } => write!(
                f,
                "summary sources={source_packets} parity={parity_packets} final={}",
                render_filters(final_filters)
            ),
            TraceEvent::LaneSample {
                lane,
                time,
                sent,
                delivered,
                loss_rate,
            } => write!(
                f,
                "[{time}] lane={lane} sample sent={sent} delivered={delivered} loss={loss_rate:.6}"
            ),
            TraceEvent::LaneObserved { lane, time, event } => {
                write!(f, "[{time}] lane={lane} event {event}")
            }
            TraceEvent::LaneActionApplied { lane, time, action } => {
                write!(f, "[{time}] lane={lane} action {action}")
            }
            TraceEvent::LaneChainReconfigured { lane, time, filters } => {
                write!(f, "[{time}] lane={lane} chain {}", render_filters(filters))
            }
            TraceEvent::LaneTotals {
                lane,
                name,
                delivered,
                recovered,
                lost,
                undelivered,
                parity_sent,
                final_filters,
            } => write!(
                f,
                "lane={lane} name={name} delivered={delivered} recovered={recovered} lost={lost} undelivered={undelivered} parity={parity_sent} final={}",
                render_filters(final_filters)
            ),
            TraceEvent::FanoutSummary {
                source_packets,
                head_filters,
            } => write!(
                f,
                "fanout-summary sources={source_packets} head={}",
                render_filters(head_filters)
            ),
        }
    }
}

fn render_filters(filters: &[String]) -> String {
    if filters.is_empty() {
        "-".to_string()
    } else {
        filters.join("+")
    }
}

/// The full, replayable record of one closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTrace {
    scenario: String,
    seed: u64,
    events: Vec<TraceEvent>,
}

impl ScenarioTrace {
    /// Creates an empty trace for the named scenario and seed.
    pub fn new(scenario: impl Into<String>, seed: u64) -> Self {
        Self {
            scenario: scenario.into(),
            seed,
            events: Vec::new(),
        }
    }

    /// The scenario this trace records.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// The simulator seed of the recorded run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Appends one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The canonical text rendering: one header line followed by one line
    /// per event.  Two runs are *identical* exactly when these bytes are.
    pub fn canonical_text(&self) -> String {
        let mut text = format!("scenario={} seed={}\n", self.scenario, self.seed);
        for event in &self.events {
            text.push_str(&event.to_string());
            text.push('\n');
        }
        text
    }

    /// A stable 64-bit digest of the canonical text (FNV-1a over its
    /// bytes).  Two traces digest equally exactly when
    /// [`canonical_text`](Self::canonical_text) matches byte for byte, so
    /// harnesses that compare many runs (the generated-conformance suite,
    /// the seed corpus) can log and diff compact hex digests instead of
    /// whole traces.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in self.canonical_text().as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }

    /// The adaptation timeline: every observer event, applied action, and
    /// chain reconfiguration, in order, with timestamps.  This is the
    /// subsequence that must match between the sync and threaded appliers.
    pub fn adaptation_timeline(&self) -> Vec<TimelineEntry> {
        self.events
            .iter()
            .filter_map(|event| match event {
                TraceEvent::Observed { time, event } => Some(TimelineEntry {
                    time: *time,
                    entry: format!("event {event}"),
                }),
                TraceEvent::ActionApplied { time, action } => Some(TimelineEntry {
                    time: *time,
                    entry: format!("action {action}"),
                }),
                TraceEvent::ChainReconfigured { time, filters } => Some(TimelineEntry {
                    time: *time,
                    entry: format!("chain {}", render_filters(filters)),
                }),
                _ => None,
            })
            .collect()
    }

    /// Folds the recorded trace back into the report of the run that
    /// produced it, without re-simulating: per-receiver totals come from
    /// the [`TraceEvent::ReceiverTotals`] records, run totals and the final
    /// chain from [`TraceEvent::RunSummary`], and the timeline from the
    /// observer/action/chain events.  Replaying a live run's trace yields a
    /// report equal to the live report.
    pub fn replay(&self) -> ScenarioReport {
        let mut report = ScenarioReport {
            scenario: self.scenario.clone(),
            seed: self.seed,
            source_packets_sent: 0,
            parity_packets_sent: 0,
            receivers: Vec::new(),
            timeline: self.adaptation_timeline(),
            final_filters: Vec::new(),
            // Traces record packet accounting, not wall-clock timing, so a
            // replayed report never carries latency (and equality with the
            // live report ignores the field).
            latency: None,
        };
        for event in &self.events {
            match event {
                TraceEvent::ReceiverTotals {
                    delivered,
                    recovered,
                    lost,
                    undelivered,
                    ..
                } => report.receivers.push(ReceiverOutcome {
                    delivered: *delivered,
                    recovered: *recovered,
                    lost: *lost,
                    undelivered: *undelivered,
                }),
                TraceEvent::RunSummary {
                    source_packets,
                    parity_packets,
                    final_filters,
                } => {
                    report.source_packets_sent = *source_packets;
                    report.parity_packets_sent = *parity_packets;
                    report.final_filters = final_filters.clone();
                }
                _ => {}
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_proxy::FilterSpec;

    fn sample_trace() -> ScenarioTrace {
        let mut trace = ScenarioTrace::new("unit", 7);
        trace.push(TraceEvent::Sample {
            time: SimTime::from_secs(1),
            sent: 50,
            delivered: 40,
            loss_rate: 0.2,
        });
        trace.push(TraceEvent::Observed {
            time: SimTime::from_secs(1),
            event: describe_event(&AdaptationEvent::LossRoseAbove {
                rate: 0.2,
                threshold: 0.02,
            }),
        });
        trace.push(TraceEvent::ActionApplied {
            time: SimTime::from_secs(1),
            action: describe_action(&AdaptationAction::Insert {
                position: 0,
                spec: FilterSpec::new("fec-encoder").with_param("n", "6").with_param("k", "4"),
            }),
        });
        trace.push(TraceEvent::ChainReconfigured {
            time: SimTime::from_secs(1),
            filters: vec!["fec-encoder(6,4)".to_string()],
        });
        trace.push(TraceEvent::ReceiverTotals {
            receiver: 0,
            delivered: 40,
            recovered: 9,
            lost: 1,
            undelivered: 0,
        });
        trace.push(TraceEvent::RunSummary {
            source_packets: 50,
            parity_packets: 10,
            final_filters: Vec::new(),
        });
        trace
    }

    #[test]
    fn canonical_text_is_stable_and_readable() {
        let text = sample_trace().canonical_text();
        assert!(text.starts_with("scenario=unit seed=7\n"));
        assert!(text.contains("[1.000000s] sample sent=50 delivered=40 loss=0.200000"));
        assert!(text.contains("event LossRoseAbove rate=0.200000 threshold=0.020000"));
        assert!(text.contains("action insert@0 fec-encoder k=4 n=6"));
        assert!(text.contains("chain fec-encoder(6,4)"));
        assert!(text.contains("summary sources=50 parity=10 final=-"));
        assert_eq!(text, sample_trace().canonical_text(), "rendering is deterministic");
    }

    #[test]
    fn replay_reconstructs_the_report() {
        let trace = sample_trace();
        let report = trace.replay();
        assert_eq!(report.scenario, "unit");
        assert_eq!(report.seed, 7);
        assert_eq!(report.source_packets_sent, 50);
        assert_eq!(report.parity_packets_sent, 10);
        assert_eq!(report.receivers.len(), 1);
        assert_eq!(report.receivers[0].recovered, 9);
        assert_eq!(report.timeline.len(), 3, "sample and totals are not timeline entries");
        assert!(report.final_filters.is_empty());
        assert_eq!(trace.replay(), report, "replay is deterministic");
    }

    #[test]
    fn digest_tracks_canonical_text_byte_identity() {
        let trace = sample_trace();
        assert_eq!(trace.digest(), sample_trace().digest(), "digest is deterministic");
        let mut other = sample_trace();
        other.push(TraceEvent::Observed {
            time: SimTime::from_secs(2),
            event: "extra".into(),
        });
        assert_ne!(trace.digest(), other.digest(), "any extra byte changes the digest");
        // Known-answer check so the digest can never silently change
        // algorithm: FNV-1a of the empty trace header.
        let empty = ScenarioTrace::new("d", 0);
        let mut expected = 0xcbf2_9ce4_8422_2325u64;
        for byte in empty.canonical_text().as_bytes() {
            expected ^= u64::from(*byte);
            expected = expected.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(empty.digest(), expected);
    }

    #[test]
    fn action_descriptions_cover_every_variant() {
        assert_eq!(
            describe_action(&AdaptationAction::RemoveKind {
                kind: "fec-encoder".into()
            }),
            "remove fec-encoder"
        );
        assert!(describe_action(&AdaptationAction::ReplaceKind {
            kind: "fec-encoder".into(),
            spec: FilterSpec::new("fec-encoder").with_param("n", "8"),
        })
        .starts_with("replace fec-encoder -> fec-encoder"));
        assert!(describe_event(&AdaptationEvent::ThroughputDropped {
            bits_per_second: 1,
            floor_bps: 2
        })
        .contains("ThroughputDropped"));
        assert!(describe_event(&AdaptationEvent::ThroughputRecovered {
            bits_per_second: 3,
            floor_bps: 2
        })
        .contains("ThroughputRecovered"));
        assert!(describe_event(&AdaptationEvent::LossFellBelow {
            rate: 0.0,
            threshold: 0.005
        })
        .contains("LossFellBelow"));
    }
}
