//! Appliers: where adaptation actions land.
//!
//! The [`AdaptationEngine`](rapidware_raplets::AdaptationEngine) emits
//! [`AdaptationAction`]s without touching any chain; an [`ActionApplier`]
//! owns a concrete chain implementation and applies them.  Two appliers are
//! provided, and a scenario must behave identically on both:
//!
//! * [`SyncChainApplier`] — the deterministic, synchronous
//!   [`FilterChain`] used by simulations and benchmarks.
//! * [`ThreadedProxyApplier`] — a live [`Proxy`] stream whose filters run
//!   on their own threads, reconfigured through the proxy's control
//!   surface (the paper's splice protocol).
//!
//! The threaded applier stays deterministic by quiescing the pipeline at
//! every step: after pushing a window of packets (or applying actions that
//! flush residue), it sends a [`PacketKind::Control`] marker and drains the
//! chain output until the marker emerges.  Every built-in filter passes
//! control packets through untouched and each stage is FIFO, so everything
//! the window produced is collected, in order, before the engine moves on.

use std::sync::Arc;

use rapidware_filters::{ChainSpans, FilterChain};
use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware_proxy::{FilterRegistry, Proxy, Registry, RuntimeConfig};
use rapidware_raplets::{apply_to_proxy, AdaptationAction};
use rapidware_streams::{DetachableReceiver, DetachableSender};

use super::report::LatencySummary;

/// Stream id reserved for quiescence markers so they can never collide with
/// media traffic.
pub(super) fn marker_stream() -> StreamId {
    StreamId::new(u32::MAX)
}

/// A chain implementation that adaptation actions can be applied to.
///
/// `process` and `apply` both return the packets the chain emitted so the
/// scenario engine can put them on the air; implementations must preserve
/// packet order and must be deterministic for a given input sequence.
pub trait ActionApplier {
    /// Short label for reports (`"sync"` / `"threaded"`).
    fn label(&self) -> &'static str;

    /// Pushes one window of source packets through the chain and returns
    /// everything the chain emitted for them, in order.
    fn process(&mut self, packets: Vec<Packet>) -> Vec<Packet>;

    /// Applies adaptation actions, returning any residue flushed out of
    /// removed or replaced filters (the caller must transmit it).
    fn apply(&mut self, actions: &[AdaptationAction]) -> Vec<Packet>;

    /// Names of the currently installed filters, in stream order.
    fn installed_filters(&self) -> Vec<String>;

    /// Ends the stream: flushes every filter and returns the tail residue
    /// (e.g. parity for a partial FEC block).  The applier must not be used
    /// afterwards.
    fn finish(&mut self) -> Vec<Packet>;

    /// End-to-end latency percentiles observed by the applier's telemetry
    /// spans, or `None` for appliers without instrumentation.  Purely
    /// observational — latency never participates in report equality.
    fn latency(&self) -> Option<LatencySummary> {
        None
    }
}

/// Applies adaptation actions to a synchronous [`FilterChain`], returning
/// any packets flushed out of removed filters (the caller must forward
/// them).
///
/// `RemoveKind`/`ReplaceKind` resolve positions by matching the kind prefix
/// of installed filter names (names are `kind(parameters)` by convention);
/// a remove of a kind that is not installed is a no-op and a replace of a
/// missing kind falls back to an insert at the head.
///
/// # Panics
///
/// Panics if an action names a filter kind the registry cannot instantiate
/// (responder specs are expected to reference registered kinds).
pub fn apply_actions_to_chain(
    chain: &mut FilterChain,
    registry: &FilterRegistry,
    actions: &[AdaptationAction],
) -> Vec<Packet> {
    let mut flushed = Vec::new();
    for action in actions {
        match action {
            AdaptationAction::Insert { position, spec } => {
                let filter = registry
                    .instantiate(spec)
                    .expect("responder specs reference registered kinds");
                let position = (*position).min(chain.len());
                chain
                    .insert(position, filter)
                    .expect("position clamped to the chain length");
            }
            AdaptationAction::RemoveKind { kind } => {
                if let Some(position) = position_of_kind(chain, kind) {
                    let (_, residue) = chain.remove(position).expect("position from names()");
                    flushed.extend(residue);
                }
            }
            AdaptationAction::ReplaceKind { kind, spec } => {
                let filter = registry
                    .instantiate(spec)
                    .expect("responder specs reference registered kinds");
                match position_of_kind(chain, kind) {
                    Some(position) => {
                        let (_, residue) =
                            chain.replace(position, filter).expect("position from names()");
                        flushed.extend(residue);
                    }
                    None => chain
                        .insert(0, filter)
                        .expect("inserting at the head never fails"),
                }
            }
        }
    }
    flushed
}

fn position_of_kind(chain: &FilterChain, kind: &str) -> Option<usize> {
    chain.names().iter().position(|name| name.starts_with(kind))
}

/// The synchronous applier: a [`FilterChain`] plus the registry used to
/// instantiate filters named by actions.
#[derive(Debug)]
pub struct SyncChainApplier {
    chain: FilterChain,
    registry: FilterRegistry,
    telemetry: Arc<Registry>,
}

impl SyncChainApplier {
    /// Creates an applier around an empty chain and the built-in registry.
    /// The chain carries egress telemetry spans so the run's report can
    /// surface end-to-end latency percentiles.
    pub fn new() -> Self {
        let telemetry = Registry::new();
        let mut chain = FilterChain::new();
        chain.set_spans(ChainSpans::egress(&telemetry, "stream.scenario"));
        Self {
            chain,
            registry: FilterRegistry::with_builtins(),
            telemetry,
        }
    }
}

impl Default for SyncChainApplier {
    fn default() -> Self {
        Self::new()
    }
}

impl ActionApplier for SyncChainApplier {
    fn label(&self) -> &'static str {
        "sync"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Packet> {
        let mut out = Vec::with_capacity(packets.len());
        for packet in packets {
            out.extend(self.chain.process(packet).expect("scenario filters do not fail"));
        }
        out
    }

    fn apply(&mut self, actions: &[AdaptationAction]) -> Vec<Packet> {
        apply_actions_to_chain(&mut self.chain, &self.registry, actions)
    }

    fn installed_filters(&self) -> Vec<String> {
        self.chain.names()
    }

    fn finish(&mut self) -> Vec<Packet> {
        self.chain.flush().expect("scenario filters do not fail")
    }

    fn latency(&self) -> Option<LatencySummary> {
        LatencySummary::from_snapshot(&self.telemetry.snapshot())
    }
}

/// The live applier: one stream on a thread-per-filter [`Proxy`],
/// reconfigured through the proxy control surface while packets flow.
#[derive(Debug)]
pub struct ThreadedProxyApplier {
    proxy: Proxy,
    stream: String,
    telemetry: Arc<Registry>,
    input: DetachableSender<Packet>,
    output: DetachableReceiver<Packet>,
    next_marker: u64,
    finished: bool,
}

impl ThreadedProxyApplier {
    /// Spins up a proxy with a single stream whose filter workers process
    /// packets in batches of up to `batch_size`.
    ///
    /// `window_hint` sizes the inter-stage pipes so a whole sample window
    /// (plus its parity overhead) fits without blocking the driver.
    ///
    /// # Panics
    ///
    /// Panics if the proxy cannot create the stream (it is freshly built,
    /// so the only failure is resource exhaustion).
    pub fn new(batch_size: usize, window_hint: usize) -> Self {
        let mut proxy = Proxy::new("scenario-proxy");
        // Telemetry goes on before the stream exists so its chain picks up
        // lifecycle spans at creation (spans reach threaded filter workers
        // when they spawn).
        let telemetry = proxy.enable_telemetry();
        let capacity = (window_hint.max(32)) * 4;
        let (input, output) = proxy
            .add_stream_batched("scenario", capacity, batch_size.max(1))
            .expect("fresh proxy accepts its first stream");
        Self {
            proxy,
            stream: "scenario".to_string(),
            telemetry,
            input,
            output,
            next_marker: 0,
            finished: false,
        }
    }

    /// Sends a control marker and drains the chain output until it comes
    /// back, returning everything that emerged before it.
    fn quiesce(&mut self) -> Vec<Packet> {
        let marker_seq = self.next_marker;
        self.next_marker += 1;
        quiesce_stream(&self.input, &self.output, marker_seq)
    }
}

/// Sends control marker `marker_seq` into `input` and drains `output` until
/// it comes back, returning everything that emerged before it.  Shared by
/// the threaded and pooled appliers so the quiescence protocol cannot
/// drift between the two runtimes.
fn quiesce_stream(
    input: &DetachableSender<Packet>,
    output: &DetachableReceiver<Packet>,
    marker_seq: u64,
) -> Vec<Packet> {
    let marker =
        Packet::new(marker_stream(), SeqNo::new(marker_seq), PacketKind::Control, Vec::new());
    input.send(marker).expect("scenario chain input stays open");
    let mut collected = Vec::new();
    loop {
        let packet = output
            .recv()
            .expect("marker is still in flight, so the stream cannot end");
        if packet.kind() == PacketKind::Control && packet.stream() == marker_stream() {
            if packet.seq().value() == marker_seq {
                return collected;
            }
            // A stale marker from an earlier window (only possible if a
            // caller ignored a drain's result); skip it.
            continue;
        }
        collected.push(packet);
    }
}

impl ActionApplier for ThreadedProxyApplier {
    fn label(&self) -> &'static str {
        "threaded"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Packet> {
        for packet in packets {
            self.input.send(packet).expect("scenario chain input stays open");
        }
        self.quiesce()
    }

    fn apply(&mut self, actions: &[AdaptationAction]) -> Vec<Packet> {
        apply_to_proxy(&self.proxy, &self.stream, actions)
            .expect("responder actions are valid for the live chain");
        // Removal/replacement flushes the outgoing filter's residue into the
        // downstream pipe; quiescing picks it up in order.
        self.quiesce()
    }

    fn installed_filters(&self) -> Vec<String> {
        self.proxy
            .filter_names(&self.stream)
            .expect("the scenario stream exists for the applier's lifetime")
    }

    fn finish(&mut self) -> Vec<Packet> {
        self.finished = true;
        self.input.close();
        let mut residue = Vec::new();
        while let Ok(packet) = self.output.recv() {
            if packet.kind() == PacketKind::Control && packet.stream() == marker_stream() {
                continue;
            }
            residue.push(packet);
        }
        residue
    }

    fn latency(&self) -> Option<LatencySummary> {
        LatencySummary::from_snapshot(&self.telemetry.snapshot())
    }
}

impl Drop for ThreadedProxyApplier {
    fn drop(&mut self) {
        if !self.finished {
            self.input.close();
        }
        let _ = self.proxy.shutdown();
    }
}

/// The pooled applier: one stream on a [`Proxy`] running the sharded
/// worker-pool runtime — the whole chain executes as a cooperative task on
/// a fixed set of workers instead of thread-per-filter.
///
/// Determinism uses the same control-marker quiescence protocol as the
/// threaded applier: markers ride the FIFO task path, so draining to the
/// marker collects exactly the window's output, in order, regardless of
/// shard count or batch size.
#[derive(Debug)]
pub struct RuntimeApplier {
    proxy: Proxy,
    stream: String,
    telemetry: Arc<Registry>,
    input: DetachableSender<Packet>,
    output: DetachableReceiver<Packet>,
    next_marker: u64,
    finished: bool,
}

impl RuntimeApplier {
    /// Spins up a proxy with a sharded runtime of `shards` workers and a
    /// single pooled stream processing packets in batches of up to
    /// `batch_size`.
    ///
    /// `window_hint` sizes the stream's pipes so a whole sample window
    /// (plus parity overhead) fits without blocking the driver.
    ///
    /// # Panics
    ///
    /// Panics if the proxy cannot create the stream (it is freshly built,
    /// so the only failure is resource exhaustion).
    pub fn new(shards: usize, batch_size: usize, window_hint: usize) -> Self {
        let capacity = (window_hint.max(32)) * 4;
        let config = RuntimeConfig::new(shards, batch_size).with_pipe_capacity(capacity);
        let mut proxy = Proxy::with_runtime("scenario-proxy", config);
        // Spans plus runtime profiling (poll / queue-wait histograms) go on
        // before the stream exists, mirroring the threaded applier.
        let telemetry = proxy.enable_telemetry();
        let (input, output) = proxy
            .add_stream_pooled("scenario")
            .expect("fresh proxy with a runtime accepts its first pooled stream");
        Self {
            proxy,
            stream: "scenario".to_string(),
            telemetry,
            input,
            output,
            next_marker: 0,
            finished: false,
        }
    }

    fn quiesce(&mut self) -> Vec<Packet> {
        let marker_seq = self.next_marker;
        self.next_marker += 1;
        quiesce_stream(&self.input, &self.output, marker_seq)
    }
}

impl ActionApplier for RuntimeApplier {
    fn label(&self) -> &'static str {
        "pooled"
    }

    fn process(&mut self, packets: Vec<Packet>) -> Vec<Packet> {
        for packet in packets {
            self.input.send(packet).expect("scenario chain input stays open");
        }
        self.quiesce()
    }

    fn apply(&mut self, actions: &[AdaptationAction]) -> Vec<Packet> {
        apply_to_proxy(&self.proxy, &self.stream, actions)
            .expect("responder actions are valid for the pooled chain");
        // Residue flushed out of removed/replaced filters lands in the
        // task's pending buffer; quiescing picks it up in order.
        self.quiesce()
    }

    fn installed_filters(&self) -> Vec<String> {
        self.proxy
            .filter_names(&self.stream)
            .expect("the scenario stream exists for the applier's lifetime")
    }

    fn finish(&mut self) -> Vec<Packet> {
        self.finished = true;
        self.input.close();
        let mut residue = Vec::new();
        while let Ok(packet) = self.output.recv() {
            if packet.kind() == PacketKind::Control && packet.stream() == marker_stream() {
                continue;
            }
            residue.push(packet);
        }
        residue
    }

    fn latency(&self) -> Option<LatencySummary> {
        LatencySummary::from_snapshot(&self.telemetry.snapshot())
    }
}

impl Drop for RuntimeApplier {
    fn drop(&mut self) {
        if !self.finished {
            self.input.close();
        }
        let _ = self.proxy.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_proxy::FilterSpec;

    fn audio(seq: u64) -> Packet {
        Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![seq as u8; 32])
    }

    fn insert_fec() -> AdaptationAction {
        AdaptationAction::Insert {
            position: 0,
            spec: FilterSpec::new("fec-encoder")
                .with_param("n", "6")
                .with_param("k", "4"),
        }
    }

    fn remove_fec() -> AdaptationAction {
        AdaptationAction::RemoveKind {
            kind: "fec-encoder".to_string(),
        }
    }

    /// Drives the same script through an applier: plain window, insert FEC,
    /// encoded window, remove FEC, final window, finish.
    fn run_script(applier: &mut dyn ActionApplier) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        out.extend(applier.process((0..4).map(audio).collect()));
        assert!(applier.installed_filters().is_empty());
        out.extend(applier.apply(&[insert_fec()]));
        assert_eq!(applier.installed_filters(), vec!["fec-encoder(6,4)"]);
        out.extend(applier.process((4..10).map(audio).collect()));
        out.extend(applier.apply(&[remove_fec()]));
        assert!(applier.installed_filters().is_empty());
        out.extend(applier.process((10..12).map(audio).collect()));
        out.extend(applier.finish());
        out.iter()
            .map(|p| (p.seq().value(), p.kind().is_parity()))
            .collect()
    }

    #[test]
    fn sync_threaded_and_pooled_appliers_emit_identical_streams() {
        let sync = run_script(&mut SyncChainApplier::new());
        let threaded = run_script(&mut ThreadedProxyApplier::new(4, 16));
        assert_eq!(sync, threaded);
        let pooled = run_script(&mut RuntimeApplier::new(4, 4, 16));
        assert_eq!(sync, pooled);
        // 12 payloads; seqs 4..8 form one full FEC block (2 parities) and
        // 8..10 a partial block flushed on removal (2 more parities).
        assert_eq!(sync.iter().filter(|(_, parity)| !parity).count(), 12);
        assert_eq!(sync.iter().filter(|(_, parity)| *parity).count(), 4);
    }

    #[test]
    fn labels_distinguish_appliers() {
        assert_eq!(SyncChainApplier::new().label(), "sync");
        assert_eq!(ThreadedProxyApplier::new(1, 8).label(), "threaded");
        assert_eq!(RuntimeApplier::new(2, 1, 8).label(), "pooled");
    }

    #[test]
    fn threaded_applier_is_reusable_across_many_windows() {
        let mut applier = ThreadedProxyApplier::new(2, 8);
        applier.apply(&[insert_fec()]);
        let mut total = 0;
        for window in 0..10u64 {
            let packets: Vec<Packet> = (window * 8..(window + 1) * 8).map(audio).collect();
            total += applier.process(packets).len();
        }
        // 80 payloads in full blocks of 4 → 20 blocks → 40 parities.
        assert_eq!(total, 120);
        assert!(applier.finish().is_empty());
    }
}
