//! Property-based scenario generation.
//!
//! The built-in matrices cover six hand-written flat scenarios and three
//! fanout scenarios — a vanishingly small slice of the regime × topology ×
//! runtime space the engines support.  This module turns the deterministic
//! trace/replay machinery into a *factory* for reproducible regression
//! tests: [`GeneratedSpec::sample`] derives a complete scenario — loss
//! phases with arbitrary boundaries, chain/head shapes, fanout topology,
//! lane-churn schedule, and runtime placement — from a single `u64` seed,
//! and everything downstream is a pure function of that seed.
//!
//! Three properties make generated specs usable as regression artifacts:
//!
//! 1. **Replayability** — [`to_line`](GeneratedSpec::to_line) serializes a
//!    spec to one corpus line (`seed=… [shrink overrides…]`) and
//!    [`from_line`](GeneratedSpec::from_line) rebuilds it byte-identically:
//!    the line stores only the seed and the shrink state, never the derived
//!    scenario, so the corpus can never drift from the sampler.
//! 2. **Conformance** — [`conformance_problems`](GeneratedSpec::conformance_problems)
//!    runs the derived scenario on every applier (sync, threaded/session,
//!    pooled, plus the sampled placement) and checks the universal
//!    invariants no random regime can break: byte-identical canonical
//!    traces, equal reports, full per-receiver accounting
//!    (`delivered + recovered + lost + undelivered == packets`), zero
//!    undelivered, and trace-replay fidelity.
//! 3. **Shrinking** — on failure, [`shrink_to_minimal`](GeneratedSpec::shrink_to_minimal)
//!    greedily applies packet-halving, phase-truncation, lane/receiver
//!    dropping, and head-clearing overrides while the failure reproduces,
//!    yielding a minimal spec whose serialized line is the checked-in
//!    regression case.
//!
//! ```
//! use rapidware::engine::GeneratedSpec;
//!
//! let spec = GeneratedSpec::sample(7);
//! let line = spec.to_line();
//! let replayed = GeneratedSpec::from_line(&line).unwrap();
//! assert_eq!(spec, replayed);
//! assert_eq!(spec.reference_digest(), replayed.reference_digest());
//! ```

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapidware_netsim::{sample_phase_boundaries, SimTime};
use rapidware_proxy::FilterSpec;

use super::fanout::{FanoutEngine, FanoutSpec, LaneSpec};
use super::spec::{LossRegime, ScenarioSpec};
use super::{RuntimeApplier, ScenarioEngine, POOLED_APPLIER_SHARDS};

/// Which applier family a generated run is placed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// The synchronous in-process applier.
    Sync,
    /// The thread-per-stage applier (threaded chain / threaded session).
    Threaded,
    /// The sharded worker-pool applier.
    Pooled,
}

impl fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementKind::Sync => write!(f, "sync"),
            PlacementKind::Threaded => write!(f, "threaded"),
            PlacementKind::Pooled => write!(f, "pooled"),
        }
    }
}

/// The sampled runtime placement of a generated run: applier family, shard
/// count (pooled only), and per-stage batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementSpec {
    /// The applier family the spec nominates as its primary runtime.
    pub kind: PlacementKind,
    /// Worker-shard count for pooled placements.
    pub shards: usize,
    /// Per-stage batch size (also folded into the derived scenario spec).
    pub batch_size: usize,
}

/// One sampled lane-churn event: a short-lived extra lane that joins and
/// leaves mid-run.  Conformance runs ignore churn (the conformance appliers
/// run a fixed topology); the chaos and soak suites drive these against a
/// live pooled session and assert per-lane conservation on the way out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Source-packet index at which the churn lane joins.
    pub join_at: u64,
    /// Source-packet index at which it leaves (always after `join_at`).
    pub leave_at: u64,
    /// Whether the churn lane carries a deterministic drop filter.
    pub lossy: bool,
}

/// The derived scenario of a generated spec: flat (one shared sender chain)
/// or fanout (per-lane tail chains).
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratedShape {
    /// A flat scenario for the [`ScenarioEngine`].
    Flat(ScenarioSpec),
    /// A fanout scenario for the [`FanoutEngine`].
    Fanout(FanoutSpec),
}

/// Shrink overrides: post-sampling restrictions applied to the derived
/// scenario.  Kept separate from the sample so a shrunk spec still
/// serializes as `seed + overrides` and replays byte-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Shrink {
    packets: Option<u64>,
    max_phases: Option<usize>,
    max_lanes: Option<usize>,
    max_receivers: Option<usize>,
    drop_head: bool,
    /// Not a shrink: opts the spec into the shared-socket wire check
    /// (`run_udp_shared` vs sync).  Lives here so it serializes with the
    /// corpus line and survives shrinking like the true overrides —
    /// a shrunk reproduction of a shared-socket divergence must still
    /// exercise the shared-socket path.
    shared_udp: bool,
    /// Brackets the derived scenario with the AEAD secure-channel pair
    /// (flat: `ScenarioSpec::secure`, with a midpoint key rotation; fanout:
    /// encrypt/decrypt appended to the head filters) and widens conformance
    /// with the UDP and shared-UDP appliers.  Unlike `shared_udp` this
    /// token is *shrinkable*: dropping it is the first candidate tried, so
    /// a failure that reproduces without crypto minimizes to a plaintext
    /// line.
    secure: bool,
}

/// A fully derived, serializable, shrinkable generated scenario.
///
/// Equality compares the generative state (seed + shrink overrides); the
/// derived shape, placement, and churn schedule are pure functions of it.
#[derive(Debug, Clone)]
pub struct GeneratedSpec {
    seed: u64,
    shrink: Shrink,
    shape: GeneratedShape,
    placement: PlacementSpec,
    churn: Vec<ChurnEvent>,
}

impl PartialEq for GeneratedSpec {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed && self.shrink == other.shrink
    }
}

impl Eq for GeneratedSpec {}

const BATCH_CHOICES: [usize; 4] = [1, 4, 8, 32];
const MIN_PACKETS: u64 = 50;

impl GeneratedSpec {
    /// Derives a complete generated scenario from a seed.
    pub fn sample(seed: u64) -> Self {
        Self::build(seed, Shrink::default())
    }

    /// The seed this spec derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The derived flat or fanout scenario.
    pub fn shape(&self) -> &GeneratedShape {
        &self.shape
    }

    /// The sampled runtime placement.
    pub fn placement(&self) -> PlacementSpec {
        self.placement
    }

    /// The sampled lane-churn schedule (fanout shapes only; always empty
    /// for flat shapes).
    pub fn churn(&self) -> &[ChurnEvent] {
        &self.churn
    }

    /// `true` if this spec's corpus line carries the `shared_udp` token:
    /// conformance additionally runs the scenario over a shared-socket
    /// carrier ([`ScenarioEngine::run_udp_shared`] /
    /// [`FanoutEngine::run_udp_shared`]) and holds it to the sync
    /// applier's bytes.
    pub fn shared_udp(&self) -> bool {
        self.shrink.shared_udp
    }

    /// Returns a copy of this spec with the shared-socket wire check
    /// enabled (see [`shared_udp`](Self::shared_udp)).  The derived
    /// scenario is unchanged — the flag only widens conformance.
    #[must_use]
    pub fn with_shared_udp(&self) -> Self {
        Self::build(
            self.seed,
            Shrink {
                shared_udp: true,
                ..self.shrink
            },
        )
    }

    /// `true` if this spec's corpus line carries the `secure` token: the
    /// derived scenario runs under the AEAD secure-channel pair (sealed
    /// payloads, a midpoint key rotation on flat shapes) and conformance
    /// additionally runs the UDP and shared-UDP appliers.
    pub fn secure(&self) -> bool {
        self.shrink.secure
    }

    /// Returns a copy of this spec with the secure channel enabled (see
    /// [`secure`](Self::secure)).
    #[must_use]
    pub fn with_secure(&self) -> Self {
        Self::build(
            self.seed,
            Shrink {
                secure: true,
                ..self.shrink
            },
        )
    }

    /// Rebuilds the spec from seed + overrides.  Every field below the
    /// shrink state is derived here and nowhere else, so `sample`,
    /// `from_line`, and `shrink_candidates` can never disagree about what a
    /// seed means.
    fn build(seed: u64, shrink: Shrink) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);

        // Fixed draw order: every sample consumes the same sequence of
        // draws regardless of overrides, which are applied afterwards as
        // pure edits of the derived spec.
        let flat = rng.gen_bool(0.5);
        let mut packets = rng.gen_range(4u64..=16) * MIN_PACKETS;
        let batch_size = BATCH_CHOICES[rng.gen_range(0usize..BATCH_CHOICES.len())];
        let kind = match rng.gen_range(0u32..3) {
            0 => PlacementKind::Sync,
            1 => PlacementKind::Threaded,
            _ => PlacementKind::Pooled,
        };
        let shards = rng.gen_range(1usize..=8);
        if let Some(limit) = shrink.packets {
            packets = limit.max(MIN_PACKETS);
        }
        // 20 ms of simulated time per source packet (the PCM workload's
        // packet interval); boundaries land anywhere inside the run.
        let horizon = SimTime::from_micros(
            packets * rapidware_media::AudioConfig::pcm_8khz_stereo_8bit().packet_interval_us(),
        );

        let (shape, churn) = if flat {
            let receiver_count = rng.gen_range(1usize..=3);
            let mut receivers = vec![sample_phased_regime(&mut rng, horizon)];
            for _ in 1..receiver_count {
                receivers.push(sample_secondary_regime(&mut rng));
            }
            if let Some(max) = shrink.max_receivers {
                receivers.truncate(max.max(1));
            }
            if let Some(max) = shrink.max_phases {
                for regime in &mut receivers {
                    truncate_phases(regime, max.max(1));
                }
            }
            let spec = ScenarioSpec {
                name: format!("gen-flat-{seed}"),
                seed,
                packets,
                receivers,
                batch_size,
                // Random regimes can promise neither adaptation nor a
                // clean finish; the conformance harness checks universal
                // invariants instead of these expectation flags.
                expect_adaptation: false,
                expect_clean_finish: false,
                secure: shrink.secure,
                ..ScenarioSpec::steady_wlan()
            };
            (GeneratedShape::Flat(spec), Vec::new())
        } else {
            let lane_count = rng.gen_range(1usize..=4);
            let head_set = rng.gen_range(0u32..4);
            let mut lanes = Vec::with_capacity(lane_count);
            for index in 0..lane_count {
                lanes.push(LaneSpec {
                    name: format!("lane-{index}"),
                    regime: sample_phased_regime(&mut rng, horizon),
                    adaptive: true,
                    expect_adaptation: false,
                });
            }
            let churn_count = rng.gen_range(0usize..=2);
            let mut churn = Vec::with_capacity(churn_count);
            for _ in 0..churn_count {
                let a = rng.gen_range(0.0f64..0.9);
                let span = rng.gen_range(0.05f64..0.5);
                let lossy = rng.gen_bool(0.5);
                let join_at = (a * packets as f64) as u64;
                let leave_at = (((a + span).min(1.0)) * packets as f64) as u64;
                churn.push(ChurnEvent {
                    join_at,
                    leave_at: leave_at.max(join_at + 1),
                    lossy,
                });
            }
            churn.sort_by_key(|event| event.join_at);
            if let Some(max) = shrink.max_lanes {
                lanes.truncate(max.max(1));
            }
            if let Some(max) = shrink.max_phases {
                for lane in &mut lanes {
                    truncate_phases(&mut lane.regime, max.max(1));
                }
            }
            let head_filters = if shrink.drop_head { 0 } else { head_set };
            let mut head_filters = head_filter_set(head_filters);
            if shrink.secure {
                // The secure pair is an identity-preserving head stage
                // (seal then verify-and-strip), so every lane's accounting
                // is untouched while all five fanout appliers exercise it.
                head_filters.push(secure_filter_spec("encrypt"));
                head_filters.push(secure_filter_spec("decrypt"));
            }
            let spec = FanoutSpec {
                name: format!("gen-fanout-{seed}"),
                seed,
                packets,
                head_filters,
                lanes,
                batch_size,
                expect_clean_finish: false,
                ..FanoutSpec::all_wired()
            };
            (GeneratedShape::Fanout(spec), churn)
        };

        Self {
            seed,
            shrink,
            shape,
            placement: PlacementSpec {
                kind,
                shards,
                batch_size,
            },
            churn,
        }
    }

    /// A one-line human summary for failure messages.
    pub fn describe(&self) -> String {
        match &self.shape {
            GeneratedShape::Flat(spec) => format!(
                "{} [flat, {} packets, {} receivers, batch {}, placement {}x{}]",
                spec.name,
                spec.packets,
                spec.receivers.len(),
                spec.batch_size,
                self.placement.kind,
                self.placement.shards,
            ),
            GeneratedShape::Fanout(spec) => format!(
                "{} [fanout, {} packets, {} lanes, {} head filters, {} churn events, batch {}, \
                 placement {}]",
                spec.name,
                spec.packets,
                spec.lanes.len(),
                spec.head_filters.len(),
                self.churn.len(),
                spec.batch_size,
                self.placement.kind,
            ),
        }
    }

    /// Serializes the generative state to one corpus line.
    pub fn to_line(&self) -> String {
        let mut line = format!("seed={}", self.seed);
        if let Some(packets) = self.shrink.packets {
            line.push_str(&format!(" packets={packets}"));
        }
        if let Some(phases) = self.shrink.max_phases {
            line.push_str(&format!(" max_phases={phases}"));
        }
        if let Some(lanes) = self.shrink.max_lanes {
            line.push_str(&format!(" max_lanes={lanes}"));
        }
        if let Some(receivers) = self.shrink.max_receivers {
            line.push_str(&format!(" max_receivers={receivers}"));
        }
        if self.shrink.drop_head {
            line.push_str(" drop_head");
        }
        if self.shrink.shared_udp {
            line.push_str(" shared_udp");
        }
        if self.shrink.secure {
            line.push_str(" secure");
        }
        line
    }

    /// Rebuilds a spec from a corpus line, byte-identically: the line holds
    /// only the seed and shrink overrides, and the whole scenario is
    /// re-derived through the same sampler.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let mut seed = None;
        let mut shrink = Shrink::default();
        for token in line.split_whitespace() {
            if token == "drop_head" {
                shrink.drop_head = true;
                continue;
            }
            if token == "shared_udp" {
                shrink.shared_udp = true;
                continue;
            }
            if token == "secure" {
                shrink.secure = true;
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed token {token:?} in {line:?}"))?;
            let parse = |value: &str| {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("non-numeric value in token {token:?}"))
            };
            match key {
                "seed" => seed = Some(parse(value)?),
                "packets" => shrink.packets = Some(parse(value)?),
                "max_phases" => shrink.max_phases = Some(parse(value)? as usize),
                "max_lanes" => shrink.max_lanes = Some(parse(value)? as usize),
                "max_receivers" => shrink.max_receivers = Some(parse(value)? as usize),
                other => return Err(format!("unknown key {other:?} in {line:?}")),
            }
        }
        let seed = seed.ok_or_else(|| format!("missing seed in {line:?}"))?;
        Ok(Self::build(seed, shrink))
    }

    /// Parses a whole corpus file: one spec per line, `#` comments and
    /// blank lines skipped.
    pub fn parse_corpus(text: &str) -> Result<Vec<Self>, String> {
        text.lines()
            .map(str::trim)
            .filter(|line| !line.is_empty() && !line.starts_with('#'))
            .map(Self::from_line)
            .collect()
    }

    /// The digest of the reference (sync) run's canonical trace: the
    /// compact identity a corpus entry or failure report can quote, and the
    /// value a replay from [`from_line`](Self::from_line) must reproduce exactly.
    pub fn reference_digest(&self) -> u64 {
        match &self.shape {
            GeneratedShape::Flat(spec) => {
                ScenarioEngine::new(spec.clone()).run_sync().trace.digest()
            }
            GeneratedShape::Fanout(spec) => {
                FanoutEngine::new(spec.clone()).run_sync().trace.digest()
            }
        }
    }

    /// Runs the derived scenario on every applier and returns one line per
    /// violated invariant (empty = conformant).
    ///
    /// Checked invariants, none of which depend on what the random regime
    /// happened to do:
    ///
    /// * the sync run is deterministic (two runs, identical bytes);
    /// * threaded/session and pooled appliers produce byte-identical
    ///   canonical traces and equal reports;
    /// * a pooled run at the sampled placement shard count agrees too
    ///   (scheduler shape must be invisible);
    /// * every receiver/lane accounts for every packet
    ///   (`delivered + recovered + lost + undelivered == packets`);
    /// * nothing delivered by the link fails to surface (`undelivered == 0`);
    /// * replaying the recorded trace reproduces the report;
    /// * with the `shared_udp` token, a run over a shared-socket carrier
    ///   (reactor-demuxed, zero pump threads) matches the sync applier
    ///   byte for byte too.
    pub fn conformance_problems(&self) -> Vec<String> {
        match &self.shape {
            GeneratedShape::Flat(spec) => self.flat_conformance(spec),
            GeneratedShape::Fanout(spec) => self.fanout_conformance(spec),
        }
    }

    fn flat_conformance(&self, spec: &ScenarioSpec) -> Vec<String> {
        let mut problems = Vec::new();
        let engine = ScenarioEngine::new(spec.clone());
        let reference = match engine.try_run_sync() {
            Ok(outcome) => outcome,
            Err(err) => return vec![format!("sampled spec rejected: {err}")],
        };
        let again = engine.run_sync();
        if again.trace.canonical_text() != reference.trace.canonical_text() {
            problems.push("sync applier is not deterministic per seed".to_string());
        }
        let mut runs = vec![
            ("threaded", engine.run_threaded()),
            ("pooled", engine.run_pooled()),
        ];
        if self.shrink.secure {
            runs.push(("udp", engine.run_udp()));
        }
        if self.shrink.shared_udp || self.shrink.secure {
            runs.push(("shared-udp", engine.run_udp_shared()));
        }
        for (label, outcome) in runs {
            if outcome.trace.canonical_text() != reference.trace.canonical_text() {
                problems.push(format!("{label} trace diverges from sync"));
            }
            if outcome.report != reference.report {
                problems.push(format!("{label} report diverges from sync"));
            }
        }
        if self.placement.kind == PlacementKind::Pooled
            && self.placement.shards != POOLED_APPLIER_SHARDS
        {
            let window = spec.sample_interval as usize;
            let placed = engine.run_with(&mut RuntimeApplier::new(
                self.placement.shards,
                spec.batch_size,
                window,
            ));
            if placed.trace.canonical_text() != reference.trace.canonical_text() {
                problems.push(format!(
                    "pooled trace at {} shards diverges from sync",
                    self.placement.shards
                ));
            }
        }
        let report = &reference.report;
        if report.source_packets_sent != spec.packets {
            problems.push(format!(
                "transmitted {} source packets, spec says {}",
                report.source_packets_sent, spec.packets
            ));
        }
        for (index, receiver) in report.receivers.iter().enumerate() {
            let accounted =
                receiver.delivered + receiver.recovered + receiver.lost + receiver.undelivered;
            if accounted != spec.packets {
                problems.push(format!(
                    "receiver {index} accounts for {accounted} of {} packets",
                    spec.packets
                ));
            }
            if receiver.undelivered != 0 {
                problems.push(format!(
                    "receiver {index}: {} delivered packets never surfaced",
                    receiver.undelivered
                ));
            }
        }
        if reference.trace.replay() != reference.report {
            problems.push("replaying the trace does not reproduce the report".to_string());
        }
        problems
    }

    fn fanout_conformance(&self, spec: &FanoutSpec) -> Vec<String> {
        let mut problems = Vec::new();
        let engine = FanoutEngine::new(spec.clone());
        let reference = match engine.try_run_sync() {
            Ok(outcome) => outcome,
            Err(err) => return vec![format!("sampled spec rejected: {err}")],
        };
        let again = engine.run_sync();
        if again.trace.canonical_text() != reference.trace.canonical_text() {
            problems.push("sync fanout applier is not deterministic per seed".to_string());
        }
        let mut runs = vec![
            ("session", engine.run_session()),
            ("pooled", engine.run_pooled()),
        ];
        if self.shrink.secure {
            runs.push(("udp", engine.run_udp()));
        }
        if self.shrink.shared_udp || self.shrink.secure {
            runs.push(("shared-udp", engine.run_udp_shared()));
        }
        for (label, outcome) in runs {
            if outcome.trace.canonical_text() != reference.trace.canonical_text() {
                problems.push(format!("{label} trace diverges from sync"));
            }
            if outcome.report != reference.report {
                problems.push(format!("{label} report diverges from sync"));
            }
        }
        let report = &reference.report;
        if report.source_packets_sent != spec.packets {
            problems.push(format!(
                "transmitted {} source packets, spec says {}",
                report.source_packets_sent, spec.packets
            ));
        }
        for lane in &report.lanes {
            let outcome = &lane.outcome;
            let accounted =
                outcome.delivered + outcome.recovered + outcome.lost + outcome.undelivered;
            if accounted != spec.packets {
                problems.push(format!(
                    "lane {} accounts for {accounted} of {} packets",
                    lane.name, spec.packets
                ));
            }
            if outcome.undelivered != 0 {
                problems.push(format!(
                    "lane {}: {} delivered packets never surfaced",
                    lane.name, outcome.undelivered
                ));
            }
        }
        if super::FanoutReport::replay(&reference.trace) != reference.report {
            problems.push("replaying the trace does not reproduce the report".to_string());
        }
        problems
    }

    /// Strictly smaller variants of this spec, most aggressive first.  Each
    /// candidate adds one more shrink override on top of the current state;
    /// the derived scenario shrinks while seed and sampler stay fixed.
    pub fn shrink_candidates(&self) -> Vec<Self> {
        let mut candidates = Vec::new();
        // Dropping the secure token comes first: if the failure reproduces
        // on plaintext, the minimal repro should not drag crypto along.
        if self.shrink.secure {
            candidates.push(Self::build(
                self.seed,
                Shrink {
                    secure: false,
                    ..self.shrink
                },
            ));
        }
        let (packets, phases, lanes, receivers, head) = match &self.shape {
            GeneratedShape::Flat(spec) => (
                spec.packets,
                spec.receivers.iter().map(phase_count).max().unwrap_or(1),
                1,
                spec.receivers.len(),
                0,
            ),
            GeneratedShape::Fanout(spec) => (
                spec.packets,
                spec.lanes.iter().map(|l| phase_count(&l.regime)).max().unwrap_or(1),
                spec.lanes.len(),
                1,
                spec.head_filters.len(),
            ),
        };
        if packets > MIN_PACKETS {
            let halved = (packets / 2).max(MIN_PACKETS) / MIN_PACKETS * MIN_PACKETS;
            candidates.push(Self::build(
                self.seed,
                Shrink {
                    packets: Some(halved.max(MIN_PACKETS)),
                    ..self.shrink
                },
            ));
        }
        if lanes > 1 {
            candidates.push(Self::build(
                self.seed,
                Shrink {
                    max_lanes: Some(1),
                    ..self.shrink
                },
            ));
        }
        if receivers > 1 {
            candidates.push(Self::build(
                self.seed,
                Shrink {
                    max_receivers: Some(1),
                    ..self.shrink
                },
            ));
        }
        if phases > 1 {
            candidates.push(Self::build(
                self.seed,
                Shrink {
                    max_phases: Some(1),
                    ..self.shrink
                },
            ));
        }
        if head > 0 && !self.shrink.drop_head {
            candidates.push(Self::build(
                self.seed,
                Shrink {
                    drop_head: true,
                    ..self.shrink
                },
            ));
        }
        candidates
    }

    /// Greedy shrink loop: while any candidate still fails `fails`, adopt
    /// it and try to shrink further.  Returns the smallest failing spec —
    /// the one whose [`to_line`](Self::to_line) output belongs in the
    /// regression corpus.
    pub fn shrink_to_minimal(spec: Self, fails: &dyn Fn(&Self) -> bool) -> Self {
        let mut current = spec;
        'outer: loop {
            for candidate in current.shrink_candidates() {
                if fails(&candidate) {
                    current = candidate;
                    continue 'outer;
                }
            }
            return current;
        }
    }
}

/// Counts the phases of a regime (non-phased regimes count as one).
fn phase_count(regime: &LossRegime) -> usize {
    match regime {
        LossRegime::Phased(phases) => phases.len().max(1),
        _ => 1,
    }
}

/// Truncates a phased regime to its first `max` phases (no-op otherwise).
fn truncate_phases(regime: &mut LossRegime, max: usize) {
    if let LossRegime::Phased(phases) = regime {
        phases.truncate(max.max(1));
    }
}

/// Samples one time-phased regime with arbitrary boundaries inside
/// `horizon`: 1–4 phases, each independently drawn from the atomic regime
/// pool (perfect / Bernoulli / Gilbert–Elliott burst / stride).
fn sample_phased_regime(rng: &mut StdRng, horizon: SimTime) -> LossRegime {
    let phase_total = rng.gen_range(1usize..=4);
    let boundaries = sample_phase_boundaries(rng, phase_total - 1, horizon);
    let mut phases = vec![(SimTime::ZERO, sample_atomic_regime(rng))];
    for boundary in boundaries {
        phases.push((boundary, sample_atomic_regime(rng)));
    }
    LossRegime::Phased(phases)
}

/// Samples one phase's regime.
fn sample_atomic_regime(rng: &mut StdRng) -> LossRegime {
    match rng.gen_range(0u32..4) {
        0 => LossRegime::Perfect,
        1 => LossRegime::Bernoulli {
            rate: rng.gen_range(0.02f64..0.45),
        },
        2 => LossRegime::GilbertElliott {
            p_good_to_bad: rng.gen_range(0.01f64..0.10),
            p_bad_to_good: rng.gen_range(0.20f64..0.50),
            loss_good: rng.gen_range(0.0f64..0.01),
            loss_bad: rng.gen_range(0.40f64..0.90),
        },
        _ => LossRegime::Stride {
            every: rng.gen_range(2u64..=8),
        },
    }
}

/// A secondary (non-monitored) receiver's regime: quiet links that absorb
/// whatever the monitored link's adaptation produces.
fn sample_secondary_regime(rng: &mut StdRng) -> LossRegime {
    match rng.gen_range(0u32..3) {
        0 => LossRegime::Perfect,
        1 => LossRegime::AtDistance {
            meters: rng.gen_range(5.0f64..35.0),
        },
        _ => LossRegime::Bernoulli {
            rate: rng.gen_range(0.0f64..0.10),
        },
    }
}

/// The identity-preserving head-filter sets generated fanout specs draw
/// from.  Head filters run upstream of every lane's accounting, so they
/// must neither drop payloads nor emit parity — that is what the per-lane
/// tails are for; these sets exercise head-chain plumbing (pass-through,
/// observation, transform-and-restore) without perturbing delivery.
fn head_filter_set(index: u32) -> Vec<FilterSpec> {
    match index {
        0 => Vec::new(),
        1 => vec![FilterSpec::new("tap").with_param("name", "gen-head-tap")],
        2 => vec![FilterSpec::new("null")],
        _ => vec![FilterSpec::new("scrambler"), FilterSpec::new("descrambler")],
    }
}

/// One half of the secure-channel pair, keyed like the flat engine's
/// bracket ([`super::SECURE_SCENARIO_KEY`]) so filter names agree across
/// every generated shape.
fn secure_filter_spec(kind: &str) -> FilterSpec {
    FilterSpec::new(kind).with_param("key", super::SECURE_SCENARIO_KEY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        for seed in [0u64, 1, 42, 2001, u64::MAX] {
            let a = GeneratedSpec::sample(seed);
            let b = GeneratedSpec::sample(seed);
            assert_eq!(a, b);
            assert_eq!(a.shape(), b.shape(), "derived shapes match at seed {seed}");
            assert_eq!(a.placement(), b.placement());
            assert_eq!(a.churn(), b.churn());
        }
    }

    #[test]
    fn sampled_specs_always_validate() {
        for seed in 0..200u64 {
            let spec = GeneratedSpec::sample(seed);
            match spec.shape() {
                GeneratedShape::Flat(flat) => {
                    assert_eq!(flat.validate(), Ok(()), "{}", spec.describe())
                }
                GeneratedShape::Fanout(fanout) => {
                    assert_eq!(fanout.validate(), Ok(()), "{}", spec.describe())
                }
            }
            for event in spec.churn() {
                assert!(event.join_at < event.leave_at, "{}", spec.describe());
            }
        }
    }

    #[test]
    fn sampling_covers_the_whole_space() {
        let mut flat = 0usize;
        let mut fanout = 0usize;
        let mut placements = std::collections::HashSet::new();
        let mut batches = std::collections::HashSet::new();
        let mut multi_phase = 0usize;
        let mut churned = 0usize;
        for seed in 0..200u64 {
            let spec = GeneratedSpec::sample(seed);
            placements.insert(format!("{}", spec.placement().kind));
            batches.insert(spec.placement().batch_size);
            match spec.shape() {
                GeneratedShape::Flat(inner) => {
                    flat += 1;
                    if inner.receivers.iter().any(|r| phase_count(r) > 1) {
                        multi_phase += 1;
                    }
                }
                GeneratedShape::Fanout(inner) => {
                    fanout += 1;
                    if inner.lanes.iter().any(|l| phase_count(&l.regime) > 1) {
                        multi_phase += 1;
                    }
                    if !spec.churn().is_empty() {
                        churned += 1;
                    }
                }
            }
        }
        assert!(flat > 50 && fanout > 50, "both shapes sampled ({flat}/{fanout})");
        assert_eq!(placements.len(), 3, "all three placements sampled");
        assert_eq!(batches.len(), BATCH_CHOICES.len(), "all batch sizes sampled");
        assert!(multi_phase > 50, "multi-phase regimes are common ({multi_phase})");
        assert!(churned > 10, "churn schedules are sampled ({churned})");
    }

    #[test]
    fn lines_round_trip_byte_identically() {
        for seed in [3u64, 77, 2001] {
            let spec = GeneratedSpec::sample(seed);
            let replayed = GeneratedSpec::from_line(&spec.to_line()).unwrap();
            assert_eq!(spec, replayed);
            assert_eq!(spec.shape(), replayed.shape());
        }
        // Shrunk specs round-trip too, overrides included.
        let spec = GeneratedSpec::build(
            9,
            Shrink {
                packets: Some(100),
                max_phases: Some(1),
                max_lanes: Some(1),
                max_receivers: Some(1),
                drop_head: true,
                shared_udp: true,
                secure: true,
            },
        );
        let line = spec.to_line();
        assert!(line.contains("packets=100") && line.contains("drop_head"), "{line}");
        assert!(line.contains("shared_udp"), "{line}");
        assert!(line.contains(" secure"), "{line}");
        let replayed = GeneratedSpec::from_line(&line).unwrap();
        assert_eq!(spec, replayed);
        assert_eq!(spec.shape(), replayed.shape());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(GeneratedSpec::from_line("").is_err(), "missing seed");
        assert!(GeneratedSpec::from_line("packets=10").is_err(), "missing seed");
        assert!(GeneratedSpec::from_line("seed=x").is_err(), "non-numeric");
        assert!(GeneratedSpec::from_line("seed=1 bogus=2").is_err(), "unknown key");
        assert!(GeneratedSpec::from_line("seed=1 lanes").is_err(), "flagless token");
    }

    #[test]
    fn corpus_parsing_skips_comments_and_blanks() {
        let corpus = "# regression corpus\n\nseed=1\n  seed=2 max_phases=1  \n# tail\n";
        let specs = GeneratedSpec::parse_corpus(corpus).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].seed(), 1);
        assert_eq!(specs[1].seed(), 2);
        assert!(GeneratedSpec::parse_corpus("seed=1\ngarbage\n").is_err());
    }

    #[test]
    fn shrinking_produces_a_minimal_replayable_spec() {
        // Find a fanout sample with multiple lanes and phases so every
        // shrink dimension is exercised.
        let seed = (0..200u64)
            .find(|&seed| {
                matches!(
                    GeneratedSpec::sample(seed).shape(),
                    GeneratedShape::Fanout(f)
                        if f.lanes.len() > 1
                            && f.packets > 2 * MIN_PACKETS
                            && !f.head_filters.is_empty()
                )
            })
            .expect("the sampler covers multi-lane fanouts");
        let spec = GeneratedSpec::sample(seed);
        // A predicate that keeps failing all the way down: every spec
        // "fails", so the shrinker must bottom out at the global minimum.
        let minimal = GeneratedSpec::shrink_to_minimal(spec, &|_| true);
        let GeneratedShape::Fanout(inner) = minimal.shape() else {
            panic!("shrinking never changes the shape family");
        };
        assert_eq!(inner.packets, MIN_PACKETS);
        assert_eq!(inner.lanes.len(), 1);
        assert!(inner.head_filters.is_empty());
        assert!(inner.lanes.iter().all(|l| phase_count(&l.regime) == 1));
        // The minimal spec replays byte-identically from its line.
        let replayed = GeneratedSpec::from_line(&minimal.to_line()).unwrap();
        assert_eq!(minimal.shape(), replayed.shape());

        // A predicate that stops failing once packets shrink must leave
        // everything else untouched.
        let spec = GeneratedSpec::sample(seed);
        let original_lanes = match spec.shape() {
            GeneratedShape::Fanout(f) => f.lanes.len(),
            GeneratedShape::Flat(_) => unreachable!(),
        };
        let picky = GeneratedSpec::shrink_to_minimal(spec, &|candidate| {
            match candidate.shape() {
                GeneratedShape::Fanout(f) => f.lanes.len() > 1,
                GeneratedShape::Flat(_) => false,
            }
        });
        let GeneratedShape::Fanout(inner) = picky.shape() else {
            panic!("shape family is stable under shrinking");
        };
        assert_eq!(inner.lanes.len(), 2, "shrunk to the smallest still-failing lane count");
        assert!(original_lanes > 2 || inner.lanes.len() <= original_lanes);
    }

    #[test]
    fn a_sampled_flat_spec_passes_conformance() {
        // One cheap end-to-end conformance run as a unit test; the full
        // ≥64-spec sweep lives in the generated_scenarios integration
        // suite.
        let seed = (0..50u64)
            .find(|&seed| {
                matches!(GeneratedSpec::sample(seed).shape(), GeneratedShape::Flat(f)
                    if f.packets <= 300 && f.receivers.len() == 1)
            })
            .expect("small flat samples exist");
        let spec = GeneratedSpec::sample(seed);
        assert_eq!(spec.conformance_problems(), Vec::<String>::new(), "{}", spec.describe());
    }

    #[test]
    fn the_shared_udp_token_survives_shrinking_and_widens_conformance() {
        let spec = GeneratedSpec::from_line("seed=4 shared_udp").unwrap();
        assert!(spec.shared_udp());
        assert_eq!(spec.shape(), GeneratedSpec::sample(4).shape(), "flag leaves the shape alone");
        // Shrinking keeps the flag: a minimized shared-socket failure still
        // reproduces over the shared socket.
        let minimal = GeneratedSpec::shrink_to_minimal(spec, &|_| true);
        assert!(minimal.shared_udp());
        assert!(minimal.to_line().contains("shared_udp"), "{}", minimal.to_line());

        // One cheap end-to-end shared-socket conformance run as a unit
        // test; the corpus sweep lives in the generated_scenarios suite.
        let seed = (0..50u64)
            .find(|&seed| {
                matches!(GeneratedSpec::sample(seed).shape(), GeneratedShape::Flat(f)
                    if f.packets <= 300 && f.receivers.len() == 1)
            })
            .expect("small flat samples exist");
        let spec = GeneratedSpec::sample(seed).with_shared_udp();
        assert_eq!(spec.conformance_problems(), Vec::<String>::new(), "{}", spec.describe());
    }

    #[test]
    fn the_secure_token_installs_the_channel_and_shrinks_away() {
        let spec = GeneratedSpec::from_line("seed=4 secure").unwrap();
        assert!(spec.secure());
        match spec.shape() {
            GeneratedShape::Flat(flat) => assert!(flat.secure),
            GeneratedShape::Fanout(fanout) => assert!(fanout
                .head_filters
                .iter()
                .any(|f| f.kind == "encrypt")),
        }

        // Unlike shared_udp, the token is itself a shrink dimension — and
        // the first one tried, so a crypto-independent failure minimizes
        // to a plaintext line.
        let first = spec.shrink_candidates().into_iter().next().unwrap();
        assert!(!first.secure());
        let minimal = GeneratedSpec::shrink_to_minimal(spec, &|_| true);
        assert!(!minimal.secure());
        assert!(!minimal.to_line().contains("secure"), "{}", minimal.to_line());

        // But a failure that needs the crypto keeps it: shrinking under a
        // predicate that only fails while secure is set preserves the
        // token.
        let secure_only = GeneratedSpec::shrink_to_minimal(
            GeneratedSpec::from_line("seed=4 secure").unwrap(),
            &|candidate| candidate.secure(),
        );
        assert!(secure_only.secure());
        assert!(secure_only.to_line().contains("secure"));

        // One cheap end-to-end secure conformance run as a unit test; the
        // corpus sweep lives in the generated_scenarios suite.
        let seed = (0..50u64)
            .find(|&seed| {
                matches!(GeneratedSpec::sample(seed).shape(), GeneratedShape::Flat(f)
                    if f.packets <= 300 && f.receivers.len() == 1)
            })
            .expect("small flat samples exist");
        let spec = GeneratedSpec::sample(seed).with_secure();
        assert_eq!(spec.conformance_problems(), Vec::<String>::new(), "{}", spec.describe());
    }

    #[test]
    fn reference_digest_is_stable_and_seed_sensitive() {
        let spec = GeneratedSpec::sample(5);
        assert_eq!(spec.reference_digest(), spec.reference_digest());
        assert_ne!(
            GeneratedSpec::sample(5).reference_digest(),
            GeneratedSpec::sample(6).reference_digest(),
            "different seeds explore different scenarios"
        );
    }
}
