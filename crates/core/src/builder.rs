//! A convenience builder for adaptive proxies.

use rapidware_proxy::{FilterSpec, Proxy, ProxyError};
use rapidware_raplets::{AdaptationEngine, FecResponder, LossRateObserver, Observer, Responder};

/// The input/output endpoint pair of one proxy stream, in declaration
/// order, as returned by [`AdaptiveProxyBuilder::build`].
pub type StreamEndpoints = (
    rapidware_streams::DetachableSender<rapidware_packet::Packet>,
    rapidware_streams::DetachableReceiver<rapidware_packet::Packet>,
);

/// Assembles a live [`Proxy`] plus the [`AdaptationEngine`] that adapts it.
///
/// The builder covers the common case exercised by the paper: one or more
/// named streams, an initial filter configuration per stream, and the
/// loss-driven FEC adaptation raplets.
///
/// ```
/// use rapidware::AdaptiveProxyBuilder;
/// use rapidware_proxy::FilterSpec;
///
/// # fn main() -> Result<(), rapidware_proxy::ProxyError> {
/// let (mut proxy, engine, endpoints) = AdaptiveProxyBuilder::new("edge-proxy")
///     .stream("audio")
///     .initial_filter("audio", FilterSpec::new("tap").with_param("name", "uplink"))
///     .with_loss_adaptive_fec()
///     .build()?;
/// assert_eq!(endpoints.len(), 1);
/// assert_eq!(proxy.filter_names("audio")?, vec!["uplink"]);
/// assert_eq!(engine.responder_names().len(), 1);
/// proxy.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct AdaptiveProxyBuilder {
    name: String,
    streams: Vec<String>,
    initial_filters: Vec<(String, FilterSpec)>,
    observers: Vec<Box<dyn Observer>>,
    responders: Vec<Box<dyn Responder>>,
}

impl AdaptiveProxyBuilder {
    /// Starts building a proxy with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a stream.
    #[must_use]
    pub fn stream(mut self, name: impl Into<String>) -> Self {
        self.streams.push(name.into());
        self
    }

    /// Installs a filter on a stream as soon as the proxy is built (appended
    /// after previously declared filters on the same stream).
    #[must_use]
    pub fn initial_filter(mut self, stream: impl Into<String>, spec: FilterSpec) -> Self {
        self.initial_filters.push((stream.into(), spec));
        self
    }

    /// Adds the paper's loss-driven FEC adaptation: a loss-rate observer
    /// with hysteresis plus a demand-driven FEC responder.
    #[must_use]
    pub fn with_loss_adaptive_fec(mut self) -> Self {
        self.observers
            .push(Box::new(LossRateObserver::paper_default()));
        self.responders.push(Box::new(FecResponder::paper_default()));
        self
    }

    /// Adds a custom observer raplet.
    #[must_use]
    pub fn observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Adds a custom responder raplet.
    #[must_use]
    pub fn responder(mut self, responder: Box<dyn Responder>) -> Self {
        self.responders.push(responder);
        self
    }

    /// Builds the proxy, its adaptation engine, and the per-stream
    /// endpoints, in the order the streams were declared.
    ///
    /// # Errors
    ///
    /// Returns any error raised while creating streams or instantiating the
    /// initial filters.
    pub fn build(
        self,
    ) -> Result<(Proxy, AdaptationEngine, Vec<StreamEndpoints>), ProxyError> {
        let mut proxy = Proxy::new(self.name);
        let mut endpoints = Vec::new();
        for stream in &self.streams {
            endpoints.push(proxy.add_stream(stream.clone())?);
        }
        for (stream, spec) in &self.initial_filters {
            let position = proxy.filter_names(stream)?.len();
            proxy.insert_filter(stream, position, spec)?;
        }
        let mut engine = AdaptationEngine::new();
        for observer in self.observers {
            engine.add_observer(observer);
        }
        for responder in self.responders {
            engine.add_responder(responder);
        }
        Ok((proxy, engine, endpoints))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_netsim::SimTime;
    use rapidware_raplets::{apply_to_proxy, LinkSample};

    #[test]
    fn builds_streams_and_initial_filters_in_order() {
        let (mut proxy, _engine, endpoints) = AdaptiveProxyBuilder::new("p")
            .stream("audio")
            .stream("video")
            .initial_filter("audio", FilterSpec::new("fec-encoder"))
            .initial_filter("audio", FilterSpec::new("tap"))
            .initial_filter("video", FilterSpec::new("rate-limiter"))
            .build()
            .unwrap();
        assert_eq!(endpoints.len(), 2);
        assert_eq!(
            proxy.filter_names("audio").unwrap(),
            vec!["fec-encoder(6,4)", "tap"]
        );
        assert_eq!(proxy.filter_names("video").unwrap().len(), 1);
        proxy.shutdown().unwrap();
    }

    #[test]
    fn adaptive_fec_raplets_drive_the_built_proxy() {
        let (mut proxy, mut engine, _endpoints) = AdaptiveProxyBuilder::new("p")
            .stream("audio")
            .with_loss_adaptive_fec()
            .build()
            .unwrap();
        // Several moderately lossy windows (3%) push the smoothed estimate
        // over the 2% threshold; apply the resulting actions to the proxy.
        for second in 1..=5 {
            let actions = engine.ingest(&LinkSample::new(SimTime::from_secs(second), 1000, 970));
            apply_to_proxy(&proxy, "audio", &actions).unwrap();
        }
        assert_eq!(proxy.filter_names("audio").unwrap(), vec!["fec-encoder(6,4)"]);
        proxy.shutdown().unwrap();
    }

    #[test]
    fn unknown_stream_in_initial_filter_is_an_error() {
        let result = AdaptiveProxyBuilder::new("p")
            .initial_filter("ghost", FilterSpec::new("null"))
            .build();
        assert!(result.is_err());
    }
}
