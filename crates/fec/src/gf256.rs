//! Arithmetic in GF(2⁸), the Galois field with 256 elements.
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11D), the same field used by Rizzo's erasure
//! code implementation.  Multiplication and division are table-driven
//! (exp/log tables built at compile time), so the per-byte cost of encoding
//! is one table lookup and one addition.
//!
//! # Bulk kernels
//!
//! The slice routines ([`addmul_slice`], [`mul_slice_into`], [`xor_slice`])
//! are the encoder's and decoder's inner loops, and they dispatch once per
//! call to the fastest kernel the CPU supports:
//!
//! * **AVX2** / **SSSE3** (x86-64) — splat-table nibble-split kernels
//!   (`vpshufb`/`pshufb`): each coefficient's multiplication map is two
//!   16-entry tables (low and high nibble), so 32 (or 16) products cost two
//!   shuffles and one XOR.  Selected at runtime via
//!   `is_x86_feature_detected!`, never assumed at compile time.
//! * **Scalar** — the portable table loop, always compiled, always the
//!   reference: the `*_scalar` variants are public so equivalence can be
//!   property-tested against the SIMD paths on any machine.
//!
//! Setting `RAPIDWARE_FORCE_SCALAR=1` in the environment pins the process
//! to the scalar kernels (read once, at first use).  [`active_kernel`]
//! reports which kernel won.

/// The primitive polynomial used to construct the field (without the x⁸ term).
const PRIMITIVE_POLY: u16 = 0x11D;

/// Size of the multiplicative group of GF(2⁸).
const GROUP_ORDER: usize = 255;

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

const fn build_tables() -> Tables {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the table so exp[(log a + log b)] never needs a modulo.
    let mut j = GROUP_ORDER;
    while j < 512 {
        exp[j] = exp[j - GROUP_ORDER];
        j += 1;
    }
    Tables { exp, log }
}

static TABLES: Tables = build_tables();

/// The full 256 × 256 multiplication table, built at compile time.
///
/// Row `c` is the map `b ↦ c · b`, so the bulk slice routines pay **one**
/// table lookup per byte instead of the two log lookups plus branch of the
/// scalar [`mul`] — the classic optimisation from Rizzo's `fec` library,
/// where the encoder's inner loop is a single `gf_mul_table` indexing.
static MUL_TABLE: [[u8; 256]; 256] = build_mul_table();

const fn build_mul_table() -> [[u8; 256]; 256] {
    let tables = build_tables();
    let mut table = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let log_a = tables.log[a] as usize;
        let mut b = 1usize;
        while b < 256 {
            table[a][b] = tables.exp[log_a + tables.log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    table
}

/// The multiplication-by-`c` lookup table: `mul_row(c)[b] == mul(c, b)`.
///
/// Exposed so callers that apply the same coefficient to many bytes (the
/// encoder's parity rows, Gaussian elimination) can hoist the row lookup out
/// of their inner loops.
#[inline]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    &MUL_TABLE[c as usize]
}

/// The two 16-entry shuffle tables describing multiplication by one
/// coefficient, in the layout `pshufb` consumes.
///
/// `mul(c, b) == lo[b & 0xF] ^ hi[b >> 4]` because multiplication is linear
/// over the field's XOR addition: `b = (b & 0xF) ⊕ (b & 0xF0)`.
#[derive(Debug)]
pub(crate) struct NibblePair {
    /// `lo[x] = mul(c, x)` for `x` in `0..16`.
    pub(crate) lo: [u8; 16],
    /// `hi[x] = mul(c, x << 4)` for `x` in `0..16`.
    pub(crate) hi: [u8; 16],
}

/// Per-coefficient nibble shuffle tables (8 KiB), built at compile time.
static NIBBLE_TABLES: [NibblePair; 256] = build_nibble_tables();

const fn build_nibble_tables() -> [NibblePair; 256] {
    let mul = build_mul_table();
    let mut tables = [const { NibblePair { lo: [0; 16], hi: [0; 16] } }; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            tables[c].lo[x] = mul[c][x];
            tables[c].hi[x] = mul[c][x << 4];
            x += 1;
        }
        c += 1;
    }
    tables
}

/// Which bulk-slice kernel the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// 32-byte `vpshufb` nibble-split kernel (x86-64 with AVX2).
    Avx2,
    /// 16-byte `pshufb` nibble-split kernel (x86-64 with SSSE3).
    Ssse3,
    /// The portable table-driven loop (always available).
    Scalar,
}

impl Kernel {
    /// A short stable name, suitable for bench-report metadata.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Avx2 => "avx2",
            Kernel::Ssse3 => "ssse3",
            Kernel::Scalar => "scalar",
        }
    }
}

static ACTIVE_KERNEL: std::sync::OnceLock<Kernel> = std::sync::OnceLock::new();

/// The kernel the bulk slice routines dispatch to, detected once per
/// process.
///
/// Honors `RAPIDWARE_FORCE_SCALAR` (any value other than empty or `0`
/// pins the scalar path); otherwise picks the widest instruction set
/// `is_x86_feature_detected!` confirms.  Non-x86-64 targets always run
/// scalar.
pub fn active_kernel() -> Kernel {
    *ACTIVE_KERNEL.get_or_init(detect_kernel)
}

fn detect_kernel() -> Kernel {
    let forced = std::env::var_os("RAPIDWARE_FORCE_SCALAR")
        .is_some_and(|v| !v.is_empty() && v != "0");
    if forced {
        return Kernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return Kernel::Ssse3;
        }
    }
    Kernel::Scalar
}

/// Adds two field elements (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts two field elements (identical to addition in GF(2⁸)).
#[inline]
pub fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        let idx = TABLES.log[a as usize] as usize + TABLES.log[b as usize] as usize;
        TABLES.exp[idx]
    }
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b` is zero (division by zero has no meaning in the field).
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        let idx =
            TABLES.log[a as usize] as usize + GROUP_ORDER - TABLES.log[b as usize] as usize;
        TABLES.exp[idx]
    }
}

/// Multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a` is zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    TABLES.exp[GROUP_ORDER - TABLES.log[a as usize] as usize]
}

/// Raises `a` to the power `e`.
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let log_a = TABLES.log[a as usize] as u64;
    let idx = (log_a * u64::from(e)) % GROUP_ORDER as u64;
    TABLES.exp[idx as usize]
}

/// Computes `dst[i] ^= src[i]` for every byte (bulk field addition).
///
/// Dispatches to the AVX2 kernel when available (32 bytes per step);
/// otherwise the portable loop works on eight bytes at a time through
/// `u64` words, which the compiler further vectorises.  This is the
/// `c == 1` fast path of the encoder and the whole story for XOR-based
/// parity.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if dst.len() >= 32 && active_kernel() == Kernel::Avx2 {
        // SAFETY: AVX2 confirmed by `active_kernel`, lengths equal (asserted).
        #[allow(unsafe_code)]
        unsafe {
            crate::gf256_simd::xor_avx2(dst, src);
        }
        return;
    }
    xor_slice_scalar(dst, src);
}

/// The portable word-at-a-time body of [`xor_slice`]; public so the SIMD
/// path can be property-tested against it.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn xor_slice_scalar(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    let mut dst_words = dst.chunks_exact_mut(8);
    let mut src_words = src.chunks_exact(8);
    for (d, s) in dst_words.by_ref().zip(src_words.by_ref()) {
        let word = u64::from_ne_bytes(d.try_into().expect("chunk of 8"))
            ^ u64::from_ne_bytes(s.try_into().expect("chunk of 8"));
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in dst_words
        .into_remainder()
        .iter_mut()
        .zip(src_words.remainder())
    {
        *d ^= *s;
    }
}

/// Computes `dst[i] ^= c * src[i]` for every byte — the inner loop of the
/// encoder and of Gaussian elimination on data rows.
///
/// Dispatches to the nibble-split SIMD kernel when the CPU has one (two
/// shuffles and one XOR per 16/32 bytes); otherwise one lookup in the
/// precomputed `c` row per byte, with wide XOR for `c == 1`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn addmul_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "addmul_slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(dst, src);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let nibbles = &NIBBLE_TABLES[c as usize];
        match active_kernel() {
            // SAFETY: the kernel's feature was confirmed by
            // `is_x86_feature_detected!` inside `active_kernel`, and the
            // slices have equal length (asserted above).
            #[allow(unsafe_code)]
            Kernel::Avx2 if dst.len() >= 32 => {
                return unsafe { crate::gf256_simd::addmul_avx2(dst, src, nibbles, mul_row(c)) };
            }
            #[allow(unsafe_code)]
            Kernel::Ssse3 if dst.len() >= 16 => {
                return unsafe { crate::gf256_simd::addmul_ssse3(dst, src, nibbles, mul_row(c)) };
            }
            _ => {}
        }
    }
    let row = mul_row(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

/// The portable table-driven body of [`addmul_slice`]; public so the SIMD
/// path can be property-tested (and benchmarked) against it.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn addmul_slice_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "addmul_slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice_scalar(dst, src);
        return;
    }
    let row = mul_row(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

/// Computes `dst[i] = c * src[i]` for every byte.
///
/// This is the "first column" of a parity row: writing the scaled source
/// directly saves the zero-fill plus XOR that `addmul` into a fresh buffer
/// would cost.  Dispatches like [`addmul_slice`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_slice_into(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "mul_slice_into length mismatch");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let nibbles = &NIBBLE_TABLES[c as usize];
        match active_kernel() {
            // SAFETY: feature confirmed by `active_kernel`, lengths equal.
            #[allow(unsafe_code)]
            Kernel::Avx2 if dst.len() >= 32 => {
                return unsafe { crate::gf256_simd::mul_into_avx2(dst, src, nibbles, mul_row(c)) };
            }
            #[allow(unsafe_code)]
            Kernel::Ssse3 if dst.len() >= 16 => {
                return unsafe { crate::gf256_simd::mul_into_ssse3(dst, src, nibbles, mul_row(c)) };
            }
            _ => {}
        }
    }
    let row = mul_row(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d = row[*s as usize];
    }
}

/// The portable table-driven body of [`mul_slice_into`]; public so the
/// SIMD path can be property-tested against it.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_slice_into_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "mul_slice_into length mismatch");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let row = mul_row(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d = row[*s as usize];
    }
}

/// Computes `dst[i] = c * dst[i]` for every byte.
pub fn mul_slice(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let row = mul_row(c);
    for d in dst.iter_mut() {
        *d = row[*d as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(add(0b1010, 0b0110), 0b1100);
        assert_eq!(sub(0b1010, 0b0110), 0b1100);
    }

    #[test]
    fn multiplication_identities() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn known_products() {
        // 2 * 2 = 4, and a product that wraps through the polynomial:
        assert_eq!(mul(2, 2), 4);
        assert_eq!(mul(0x80, 2), 0x1D); // x^8 ≡ x^4+x^3+x^2+1
    }

    #[test]
    fn inverse_round_trip() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(div(a, a), 1);
            assert_eq!(div(mul(a, 7), 7), a);
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        // Spot-check associativity/commutativity on a grid (full proptest in
        // tests/proptest_gf256.rs).
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 7, 29, 190, 255] {
            let mut acc = 1u8;
            for e in 0..10u32 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = div(5, 0);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inverse_of_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    fn addmul_slice_matches_scalar_ops() {
        let src: Vec<u8> = (0..64).map(|i| (i * 7 + 3) as u8).collect();
        let mut dst: Vec<u8> = (0..64).map(|i| (i * 13 + 1) as u8).collect();
        let expected: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(d, s)| add(*d, mul(29, *s)))
            .collect();
        addmul_slice(&mut dst, &src, 29);
        assert_eq!(dst, expected);
    }

    #[test]
    fn addmul_slice_with_zero_and_one() {
        let src = vec![5u8; 8];
        let mut dst = vec![3u8; 8];
        addmul_slice(&mut dst, &src, 0);
        assert_eq!(dst, vec![3u8; 8]);
        addmul_slice(&mut dst, &src, 1);
        assert_eq!(dst, vec![6u8; 8]); // 3 ^ 5
    }

    #[test]
    fn mul_row_matches_scalar_mul() {
        for a in (0..=255u8).step_by(7) {
            let row = mul_row(a);
            for b in 0..=255u8 {
                assert_eq!(row[b as usize], mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn xor_slice_matches_scalar_xor_all_lengths() {
        // Cover the word loop and every remainder length.
        for len in 0..=33usize {
            let src: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let mut dst: Vec<u8> = (0..len).map(|i| (i * 13 + 1) as u8).collect();
            let expected: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
            xor_slice(&mut dst, &src);
            assert_eq!(dst, expected, "len {len}");
        }
    }

    #[test]
    fn mul_slice_into_matches_scalar_ops() {
        let src: Vec<u8> = (0..64).map(|i| (i * 5 + 2) as u8).collect();
        for c in [0u8, 1, 2, 29, 255] {
            let mut dst = vec![0xAAu8; 64];
            mul_slice_into(&mut dst, &src, c);
            let expected: Vec<u8> = src.iter().map(|s| mul(c, *s)).collect();
            assert_eq!(dst, expected, "c = {c}");
        }
    }

    #[test]
    fn nibble_tables_recompose_the_full_product() {
        for c in 0..=255u8 {
            let pair = &NIBBLE_TABLES[c as usize];
            for b in 0..=255u8 {
                let product = pair.lo[(b & 0x0F) as usize] ^ pair.hi[(b >> 4) as usize];
                assert_eq!(product, mul(c, b), "c={c} b={b}");
            }
        }
    }

    #[test]
    fn dispatched_kernels_match_scalar_across_lengths_and_coefficients() {
        // Exercises whatever kernel this machine dispatches to (the proptest
        // suite covers the same ground with random data and offsets).
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 1024] {
            let src: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let base: Vec<u8> = (0..len).map(|i| (i * 13 + 1) as u8).collect();
            for c in [0u8, 1, 2, 29, 128, 255] {
                let mut simd = base.clone();
                let mut scalar = base.clone();
                addmul_slice(&mut simd, &src, c);
                addmul_slice_scalar(&mut scalar, &src, c);
                assert_eq!(simd, scalar, "addmul len={len} c={c}");

                let mut simd = base.clone();
                let mut scalar = base.clone();
                mul_slice_into(&mut simd, &src, c);
                mul_slice_into_scalar(&mut scalar, &src, c);
                assert_eq!(simd, scalar, "mul_into len={len} c={c}");
            }
            let mut simd = base.clone();
            let mut scalar = base;
            xor_slice(&mut simd, &src);
            xor_slice_scalar(&mut scalar, &src);
            assert_eq!(simd, scalar, "xor len={len}");
        }
    }

    #[test]
    fn kernel_name_is_stable() {
        let kernel = active_kernel();
        assert!(matches!(kernel.name(), "avx2" | "ssse3" | "scalar"));
        // Detection is cached: repeated calls agree.
        assert_eq!(active_kernel(), kernel);
    }

    #[test]
    fn mul_slice_scales_in_place() {
        let mut data = vec![1u8, 2, 3, 0, 255];
        let expected: Vec<u8> = data.iter().map(|v| mul(*v, 7)).collect();
        mul_slice(&mut data, 7);
        assert_eq!(data, expected);
        mul_slice(&mut data, 0);
        assert_eq!(data, vec![0; 5]);
    }
}
