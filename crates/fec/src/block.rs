//! Packet-level block framing for the erasure codec.
//!
//! The codec in [`crate::FecCodec`] works on equal-length shards, but real
//! media packets have variable sizes.  The paper's FEC encoder component
//! "collects the data packets into FEC data blocks of size k" and, when a
//! group is full, "encoding routines are invoked to produce n − k parity
//! packets".  [`BlockAssembler`] performs that grouping on the sender side
//! and [`BlockReconstructor`] undoes it on the receiver side.
//!
//! Framing: each source payload is placed in a shard as
//! `[length: u16 big-endian][payload][zero padding]`, where the shard length
//! is two bytes more than the largest payload in the block.  Parity shards
//! produced by the codec therefore carry enough information for the receiver
//! to recover both the bytes *and* the original length of a lost payload.

use crate::codec::FecCodec;
use crate::error::FecError;

/// Maximum payload size representable by the two-byte length prefix.
pub const MAX_PAYLOAD_LEN: usize = u16::MAX as usize;

/// The output of assembling one complete FEC block on the sender side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedBlock {
    /// Number of source payloads in the block (`k`).
    pub k: usize,
    /// Total number of encoded shards (`n`).
    pub n: usize,
    /// Common shard length used for this block.
    pub shard_len: usize,
    /// The `n − k` parity shards, in index order (`k`, `k + 1`, …, `n − 1`).
    pub parities: Vec<Vec<u8>>,
    /// Number of payloads that were real data (the rest were flush padding).
    pub occupied: usize,
}

/// A payload recovered by the FEC decoder, tagged with its slot inside the
/// block (0-based position among the `k` source packets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredPayload {
    /// Position of the payload within its block (`0..k`).
    pub slot: usize,
    /// The recovered payload bytes, with framing removed.
    pub data: Vec<u8>,
}

/// Reusable decode-side shard buffers for
/// [`BlockReconstructor::recover_with`].
///
/// One scratch serves any number of reconstructors sequentially; in
/// steady state (block after block of similar shard lengths) recovery
/// performs no shard-buffer allocations at all.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Received source payloads re-framed to the block's shard length.
    framed: Vec<Vec<u8>>,
    /// Output buffers handed to [`FecCodec::decode_into`].
    decoded: Vec<Vec<u8>>,
}

impl DecodeScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Groups source payloads into blocks of `k` and emits parity shards.
#[derive(Debug)]
pub struct BlockAssembler {
    codec: FecCodec,
    /// Payload slots for the block being filled.  Only the first
    /// `pending_len` entries are live; the rest are retained allocations
    /// that later blocks overwrite in place.
    pending: Vec<Vec<u8>>,
    pending_len: usize,
    /// Framed-shard scratch, reused across blocks.
    framed: Vec<Vec<u8>>,
    blocks_emitted: u64,
}

impl BlockAssembler {
    /// Creates an assembler for the given codec.
    pub fn new(codec: FecCodec) -> Self {
        Self {
            codec,
            pending: Vec::new(),
            pending_len: 0,
            framed: Vec::new(),
            blocks_emitted: 0,
        }
    }

    /// The codec used by this assembler.
    pub fn codec(&self) -> &FecCodec {
        &self.codec
    }

    /// Number of payloads waiting for the current block to fill.
    pub fn pending(&self) -> usize {
        self.pending_len
    }

    /// Number of complete blocks emitted so far.
    pub fn blocks_emitted(&self) -> u64 {
        self.blocks_emitted
    }

    /// Adds a source payload.  Returns a completed [`EncodedBlock`] when this
    /// payload fills the current group of `k`.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::CorruptPayload`] if the payload is larger than
    /// [`MAX_PAYLOAD_LEN`].
    pub fn push(&mut self, payload: &[u8]) -> Result<Option<EncodedBlock>, FecError> {
        if payload.len() > MAX_PAYLOAD_LEN {
            return Err(FecError::CorruptPayload);
        }
        if let Some(slot) = self.pending.get_mut(self.pending_len) {
            slot.clear();
            slot.extend_from_slice(payload);
        } else {
            self.pending.push(payload.to_vec());
        }
        self.pending_len += 1;
        if self.pending_len == self.codec.k() {
            Ok(Some(self.emit(self.codec.k())?))
        } else {
            Ok(None)
        }
    }

    /// Completes the current block by padding it with empty payloads, if any
    /// payloads are pending.  Used at end of stream so the tail of the stream
    /// is still protected.
    ///
    /// # Errors
    ///
    /// Propagates codec errors (which cannot occur for well-formed state).
    pub fn flush(&mut self) -> Result<Option<EncodedBlock>, FecError> {
        if self.pending_len == 0 {
            return Ok(None);
        }
        let occupied = self.pending_len;
        while self.pending_len < self.codec.k() {
            if let Some(slot) = self.pending.get_mut(self.pending_len) {
                slot.clear();
            } else {
                self.pending.push(Vec::new());
            }
            self.pending_len += 1;
        }
        Ok(Some(self.emit(occupied)?))
    }

    fn emit(&mut self, occupied: usize) -> Result<EncodedBlock, FecError> {
        let live = &self.pending[..self.pending_len];
        let shard_len = shard_len_for(live);
        self.framed.resize_with(live.len(), Vec::new);
        for (payload, shard) in live.iter().zip(self.framed.iter_mut()) {
            frame_payload_into(payload, shard_len, shard);
        }
        let shard_refs: Vec<&[u8]> = self.framed.iter().map(|s| s.as_slice()).collect();
        let parities = self.codec.encode(&shard_refs)?;
        // Keep the payload and framing buffers for the next block; only the
        // logical length resets.
        self.pending_len = 0;
        self.blocks_emitted += 1;
        Ok(EncodedBlock {
            k: self.codec.k(),
            n: self.codec.n(),
            shard_len,
            parities,
            occupied,
        })
    }
}

/// Rebuilds missing source payloads of one block on the receiver side.
#[derive(Debug)]
pub struct BlockReconstructor {
    codec: FecCodec,
    sources: Vec<Option<Vec<u8>>>,
    parities: Vec<Option<Vec<u8>>>,
    shard_len: Option<usize>,
}

impl BlockReconstructor {
    /// Creates a reconstructor for one block encoded with `codec`.
    pub fn new(codec: FecCodec) -> Self {
        let k = codec.k();
        let parity_count = codec.parity_count();
        Self {
            codec,
            sources: vec![None; k],
            parities: vec![None; parity_count],
            shard_len: None,
        }
    }

    /// Records a received source payload occupying `slot` (`0..k`).
    ///
    /// # Errors
    ///
    /// Returns [`FecError::InvalidShardIndex`] if the slot is out of range.
    /// Duplicate deliveries of the same slot are ignored.
    pub fn add_source(&mut self, slot: usize, payload: &[u8]) -> Result<(), FecError> {
        if slot >= self.codec.k() {
            return Err(FecError::InvalidShardIndex(slot));
        }
        if self.sources[slot].is_none() {
            self.sources[slot] = Some(payload.to_vec());
        }
        Ok(())
    }

    /// Records a received parity shard with encoded index `k + parity_index`.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::InvalidShardIndex`] if the parity index is out of
    /// range, or [`FecError::UnequalShardLengths`] if its length contradicts
    /// a previously received parity shard.
    pub fn add_parity(&mut self, parity_index: usize, shard: &[u8]) -> Result<(), FecError> {
        if parity_index >= self.codec.parity_count() {
            return Err(FecError::InvalidShardIndex(self.codec.k() + parity_index));
        }
        match self.shard_len {
            Some(len) if len != shard.len() => return Err(FecError::UnequalShardLengths),
            _ => self.shard_len = Some(shard.len()),
        }
        if self.parities[parity_index].is_none() {
            self.parities[parity_index] = Some(shard.to_vec());
        }
        Ok(())
    }

    /// Slots (`0..k`) whose source payload has not been received.
    pub fn missing_slots(&self) -> Vec<usize> {
        self.sources
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect()
    }

    /// Number of distinct shards (sources + parities) received so far.
    pub fn shards_available(&self) -> usize {
        self.sources.iter().flatten().count() + self.parities.iter().flatten().count()
    }

    /// Returns `true` if enough shards have arrived to recover every missing
    /// source payload.
    pub fn is_decodable(&self) -> bool {
        self.missing_slots().is_empty()
            || (self.shards_available() >= self.codec.k() && self.shard_len.is_some())
    }

    /// Attempts to recover the missing source payloads.
    ///
    /// Returns one [`RecoveredPayload`] per previously missing slot.  Slots
    /// that were received directly are not returned (the caller already has
    /// them).  Returns an empty vector if nothing was missing.
    ///
    /// # Errors
    ///
    /// * [`FecError::NotEnoughShards`] if fewer than `k` shards are present;
    /// * [`FecError::CorruptPayload`] if a recovered shard's framing is
    ///   inconsistent (e.g. its length prefix exceeds the shard size).
    pub fn recover(&self) -> Result<Vec<RecoveredPayload>, FecError> {
        let mut scratch = DecodeScratch::new();
        self.recover_with(&mut scratch)
    }

    /// Like [`recover`](Self::recover), but reuses the shard buffers in
    /// `scratch` instead of allocating fresh ones per block — the form the
    /// FEC decoder filter uses so steady-state recovery is allocation-free.
    ///
    /// # Errors
    ///
    /// Same conditions as [`recover`](Self::recover).
    pub fn recover_with(
        &self,
        scratch: &mut DecodeScratch,
    ) -> Result<Vec<RecoveredPayload>, FecError> {
        let missing = self.missing_slots();
        if missing.is_empty() {
            return Ok(Vec::new());
        }
        let shard_len = self.shard_len.ok_or(FecError::NotEnoughShards {
            needed: self.codec.k(),
            available: self.shards_available(),
        })?;

        // Frame the received sources to the block's shard length (into the
        // reused scratch slots) and collect everything we have, indexed the
        // way the codec expects.
        scratch.framed.resize_with(self.codec.k(), Vec::new);
        for (slot, source) in self.sources.iter().enumerate() {
            if let Some(payload) = source {
                frame_payload_into(payload, shard_len, &mut scratch.framed[slot]);
            }
        }
        let mut available: Vec<(usize, &[u8])> = Vec::new();
        for (slot, source) in self.sources.iter().enumerate() {
            if source.is_some() {
                let framed = &scratch.framed[slot];
                if framed.len() != shard_len {
                    return Err(FecError::CorruptPayload);
                }
                available.push((slot, framed.as_slice()));
            }
        }
        for (i, parity) in self.parities.iter().enumerate() {
            if let Some(parity) = parity {
                available.push((self.codec.k() + i, parity.as_slice()));
            }
        }

        self.codec.decode_into(&available, shard_len, &mut scratch.decoded)?;
        let mut recovered = Vec::with_capacity(missing.len());
        for slot in missing {
            let data = unframe_payload(&scratch.decoded[slot])?;
            recovered.push(RecoveredPayload { slot, data });
        }
        Ok(recovered)
    }
}

fn shard_len_for(payloads: &[Vec<u8>]) -> usize {
    2 + payloads.iter().map(Vec::len).max().unwrap_or(0)
}

#[cfg(test)]
fn frame_payload(payload: &[u8], shard_len: usize) -> Vec<u8> {
    let mut shard = Vec::new();
    frame_payload_into(payload, shard_len, &mut shard);
    shard
}

fn frame_payload_into(payload: &[u8], shard_len: usize, shard: &mut Vec<u8>) {
    shard.clear();
    shard.resize(shard_len.max(payload.len() + 2), 0);
    shard[..2].copy_from_slice(&(payload.len() as u16).to_be_bytes());
    shard[2..2 + payload.len()].copy_from_slice(payload);
    shard.truncate(shard_len);
}

fn unframe_payload(shard: &[u8]) -> Result<Vec<u8>, FecError> {
    if shard.len() < 2 {
        return Err(FecError::CorruptPayload);
    }
    let len = u16::from_be_bytes([shard[0], shard[1]]) as usize;
    if len > shard.len() - 2 {
        return Err(FecError::CorruptPayload);
    }
    Ok(shard[2..2 + len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec_6_4() -> FecCodec {
        FecCodec::new(6, 4).unwrap()
    }

    fn payloads(lens: &[usize]) -> Vec<Vec<u8>> {
        lens.iter()
            .enumerate()
            .map(|(i, &len)| (0..len).map(|j| ((i * 31 + j * 7 + 1) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn assembler_emits_block_every_k_payloads() {
        let mut assembler = BlockAssembler::new(codec_6_4());
        let data = payloads(&[100, 120, 80, 100, 60]);
        assert!(assembler.push(&data[0]).unwrap().is_none());
        assert!(assembler.push(&data[1]).unwrap().is_none());
        assert!(assembler.push(&data[2]).unwrap().is_none());
        let block = assembler.push(&data[3]).unwrap().expect("block complete");
        assert_eq!(block.k, 4);
        assert_eq!(block.n, 6);
        assert_eq!(block.parities.len(), 2);
        assert_eq!(block.shard_len, 122); // max payload 120 + 2-byte prefix
        assert_eq!(block.occupied, 4);
        assert_eq!(assembler.blocks_emitted(), 1);
        // Fifth payload starts a new block.
        assert!(assembler.push(&data[4]).unwrap().is_none());
        assert_eq!(assembler.pending(), 1);
    }

    #[test]
    fn flush_pads_partial_block() {
        let mut assembler = BlockAssembler::new(codec_6_4());
        let data = payloads(&[50, 60]);
        assembler.push(&data[0]).unwrap();
        assembler.push(&data[1]).unwrap();
        let block = assembler.flush().unwrap().expect("partial block flushed");
        assert_eq!(block.occupied, 2);
        assert_eq!(block.parities.len(), 2);
        assert!(assembler.flush().unwrap().is_none());
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut assembler = BlockAssembler::new(codec_6_4());
        let huge = vec![0u8; MAX_PAYLOAD_LEN + 1];
        assert_eq!(
            assembler.push(&huge).unwrap_err(),
            FecError::CorruptPayload
        );
    }

    #[test]
    fn reconstructor_recovers_single_loss_from_one_parity() {
        let data = payloads(&[200, 37, 158, 90]);
        let mut assembler = BlockAssembler::new(codec_6_4());
        let mut block = None;
        for payload in &data {
            if let Some(b) = assembler.push(payload).unwrap() {
                block = Some(b);
            }
        }
        let block = block.unwrap();

        // Packet in slot 2 is lost; one parity arrives.
        let mut reconstructor = BlockReconstructor::new(codec_6_4());
        reconstructor.add_source(0, &data[0]).unwrap();
        reconstructor.add_source(1, &data[1]).unwrap();
        reconstructor.add_source(3, &data[3]).unwrap();
        reconstructor.add_parity(0, &block.parities[0]).unwrap();
        assert_eq!(reconstructor.missing_slots(), vec![2]);
        assert!(reconstructor.is_decodable());
        let recovered = reconstructor.recover().unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].slot, 2);
        assert_eq!(recovered[0].data, data[2]);
    }

    #[test]
    fn reconstructor_recovers_two_losses_from_two_parities() {
        let data = payloads(&[64, 64, 64, 64]);
        let mut assembler = BlockAssembler::new(codec_6_4());
        let mut block = None;
        for payload in &data {
            if let Some(b) = assembler.push(payload).unwrap() {
                block = Some(b);
            }
        }
        let block = block.unwrap();

        let mut reconstructor = BlockReconstructor::new(codec_6_4());
        reconstructor.add_source(1, &data[1]).unwrap();
        reconstructor.add_source(2, &data[2]).unwrap();
        reconstructor.add_parity(0, &block.parities[0]).unwrap();
        reconstructor.add_parity(1, &block.parities[1]).unwrap();
        let mut recovered = reconstructor.recover().unwrap();
        recovered.sort_by_key(|r| r.slot);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].slot, 0);
        assert_eq!(recovered[0].data, data[0]);
        assert_eq!(recovered[1].slot, 3);
        assert_eq!(recovered[1].data, data[3]);
    }

    #[test]
    fn too_many_losses_cannot_be_recovered() {
        let data = payloads(&[32, 32, 32, 32]);
        let mut assembler = BlockAssembler::new(codec_6_4());
        let mut block = None;
        for payload in &data {
            if let Some(b) = assembler.push(payload).unwrap() {
                block = Some(b);
            }
        }
        let block = block.unwrap();

        // Three sources lost, only one source + two parities = 3 < k.
        let mut reconstructor = BlockReconstructor::new(codec_6_4());
        reconstructor.add_source(0, &data[0]).unwrap();
        reconstructor.add_parity(0, &block.parities[0]).unwrap();
        reconstructor.add_parity(1, &block.parities[1]).unwrap();
        assert!(!reconstructor.is_decodable());
        assert!(matches!(
            reconstructor.recover().unwrap_err(),
            FecError::NotEnoughShards { .. }
        ));
    }

    #[test]
    fn nothing_missing_returns_empty() {
        let data = payloads(&[10, 20, 30, 40]);
        let mut reconstructor = BlockReconstructor::new(codec_6_4());
        for (slot, payload) in data.iter().enumerate() {
            reconstructor.add_source(slot, payload).unwrap();
        }
        assert!(reconstructor.is_decodable());
        assert!(reconstructor.recover().unwrap().is_empty());
    }

    #[test]
    fn invalid_indices_rejected() {
        let mut reconstructor = BlockReconstructor::new(codec_6_4());
        assert_eq!(
            reconstructor.add_source(4, &[1]).unwrap_err(),
            FecError::InvalidShardIndex(4)
        );
        assert_eq!(
            reconstructor.add_parity(2, &[1]).unwrap_err(),
            FecError::InvalidShardIndex(6)
        );
    }

    #[test]
    fn conflicting_parity_lengths_rejected() {
        let mut reconstructor = BlockReconstructor::new(codec_6_4());
        reconstructor.add_parity(0, &[0u8; 10]).unwrap();
        assert_eq!(
            reconstructor.add_parity(1, &[0u8; 12]).unwrap_err(),
            FecError::UnequalShardLengths
        );
    }

    #[test]
    fn duplicate_deliveries_are_ignored() {
        let data = payloads(&[16, 16, 16, 16]);
        let mut reconstructor = BlockReconstructor::new(codec_6_4());
        reconstructor.add_source(0, &data[0]).unwrap();
        reconstructor.add_source(0, &data[1]).unwrap(); // ignored duplicate
        assert_eq!(reconstructor.shards_available(), 1);
    }

    #[test]
    fn empty_payloads_survive_the_round_trip() {
        let data = vec![vec![], vec![1, 2, 3], vec![], vec![9]];
        let mut assembler = BlockAssembler::new(codec_6_4());
        let mut block = None;
        for payload in &data {
            if let Some(b) = assembler.push(payload).unwrap() {
                block = Some(b);
            }
        }
        let block = block.unwrap();
        let mut reconstructor = BlockReconstructor::new(codec_6_4());
        reconstructor.add_source(1, &data[1]).unwrap();
        reconstructor.add_source(3, &data[3]).unwrap();
        reconstructor.add_parity(0, &block.parities[0]).unwrap();
        reconstructor.add_parity(1, &block.parities[1]).unwrap();
        let mut recovered = reconstructor.recover().unwrap();
        recovered.sort_by_key(|r| r.slot);
        assert_eq!(recovered[0].data, data[0]);
        assert_eq!(recovered[1].data, data[2]);
    }

    #[test]
    fn recover_with_reused_dirty_scratch_matches_recover() {
        // Byte-parity regression for the scratch-arena path: a scratch left
        // dirty by a previous block (different shard length, stale bytes)
        // must produce exactly the same recovery as the allocating path.
        let mut scratch = DecodeScratch::new();
        for (block_index, lens) in [[300usize, 7, 41, 128], [9, 9, 9, 9], [1, 500, 0, 33]]
            .iter()
            .enumerate()
        {
            let data = payloads(lens);
            let mut assembler = BlockAssembler::new(codec_6_4());
            let mut block = None;
            for payload in &data {
                if let Some(b) = assembler.push(payload).unwrap() {
                    block = Some(b);
                }
            }
            let block = block.unwrap();

            let mut reconstructor = BlockReconstructor::new(codec_6_4());
            reconstructor.add_source(0, &data[0]).unwrap();
            reconstructor.add_source(2, &data[2]).unwrap();
            reconstructor.add_parity(0, &block.parities[0]).unwrap();
            reconstructor.add_parity(1, &block.parities[1]).unwrap();

            let fresh = reconstructor.recover().unwrap();
            let reused = reconstructor.recover_with(&mut scratch).unwrap();
            assert_eq!(fresh, reused, "block {block_index}");
            assert_eq!(reused.len(), 2);
            assert_eq!(reused[0].data, data[1]);
            assert_eq!(reused[1].data, data[3]);
        }
    }

    #[test]
    fn assembler_reuses_slots_across_blocks_without_cross_talk() {
        // Two consecutive blocks through one assembler: the second block's
        // payloads are shorter than the first's, so reused slots must not
        // leak stale bytes from the longer previous payloads.
        let mut assembler = BlockAssembler::new(codec_6_4());
        let first = payloads(&[90, 100, 80, 70]);
        let second = payloads(&[5, 3, 8, 2]);
        for payload in &first {
            assembler.push(payload).unwrap();
        }
        let mut block = None;
        for payload in &second {
            if let Some(b) = assembler.push(payload).unwrap() {
                block = Some(b);
            }
        }
        let block = block.unwrap();
        assert_eq!(block.shard_len, 10); // max payload 8 + 2-byte prefix

        // Compare against a fresh assembler fed only the second batch.
        let mut reference = BlockAssembler::new(codec_6_4());
        let mut expected = None;
        for payload in &second {
            if let Some(b) = reference.push(payload).unwrap() {
                expected = Some(b);
            }
        }
        assert_eq!(block.parities, expected.unwrap().parities);
    }

    #[test]
    fn frame_and_unframe_round_trip() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let shard = frame_payload(&payload, 12);
        assert_eq!(shard.len(), 12);
        assert_eq!(unframe_payload(&shard).unwrap(), payload);
    }

    #[test]
    fn unframe_rejects_bad_length_prefix() {
        let mut shard = frame_payload(&[1, 2, 3], 8);
        shard[0] = 0xFF;
        shard[1] = 0xFF;
        assert_eq!(unframe_payload(&shard).unwrap_err(), FecError::CorruptPayload);
        assert_eq!(unframe_payload(&[1]).unwrap_err(), FecError::CorruptPayload);
    }
}
