//! Error type for FEC operations.

use std::error::Error;
use std::fmt;

/// Errors reported by the FEC codec and block framing layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FecError {
    /// The requested (n, k) parameters are invalid (k = 0, n < k, or
    /// n > 255, the maximum the GF(2⁸) construction supports).
    InvalidParameters {
        /// Requested total number of encoded shards.
        n: usize,
        /// Requested number of source shards.
        k: usize,
    },
    /// The number of shards handed to the encoder does not equal `k`.
    WrongShardCount {
        /// Number of shards expected.
        expected: usize,
        /// Number of shards provided.
        actual: usize,
    },
    /// The shards handed to the encoder or decoder do not all have the same
    /// length.
    UnequalShardLengths,
    /// Fewer than `k` distinct shards are available, so the block cannot be
    /// reconstructed.
    NotEnoughShards {
        /// Shards required (`k`).
        needed: usize,
        /// Distinct shards available.
        available: usize,
    },
    /// A shard index is out of range (`>= n`) or duplicated.
    InvalidShardIndex(usize),
    /// The decode matrix turned out to be singular.  With distinct shard
    /// indices this cannot happen for a Vandermonde-derived code; reported
    /// rather than panicking for defence in depth.
    SingularMatrix,
    /// A recovered payload was shorter than its declared length, indicating
    /// corruption upstream of the decoder.
    CorruptPayload,
}

impl fmt::Display for FecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FecError::InvalidParameters { n, k } => {
                write!(f, "invalid fec parameters (n = {n}, k = {k})")
            }
            FecError::WrongShardCount { expected, actual } => {
                write!(f, "expected {expected} source shards, got {actual}")
            }
            FecError::UnequalShardLengths => write!(f, "shards must all have the same length"),
            FecError::NotEnoughShards { needed, available } => {
                write!(f, "need {needed} shards to decode, only {available} available")
            }
            FecError::InvalidShardIndex(index) => {
                write!(f, "shard index {index} out of range or duplicated")
            }
            FecError::SingularMatrix => write!(f, "decode matrix is singular"),
            FecError::CorruptPayload => write!(f, "recovered payload is corrupt"),
        }
    }
}

impl Error for FecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        assert!(FecError::InvalidParameters { n: 3, k: 5 }
            .to_string()
            .contains("n = 3"));
        assert!(FecError::NotEnoughShards {
            needed: 4,
            available: 2
        }
        .to_string()
        .contains("need 4"));
        assert!(FecError::InvalidShardIndex(9).to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FecError>();
    }
}
