//! x86-64 SIMD kernels for the GF(2⁸) bulk slice routines.
//!
//! Every kernel is the PSHUFB nibble-split form of the scalar table loop in
//! [`crate::gf256`]: a product `c · b` is split as
//! `c · (b_lo ⊕ (b_hi << 4)) = (c · b_lo) ⊕ (c · (b_hi << 4))`, and each
//! half is a 16-entry table lookup — exactly the shape `pshufb` /
//! `vpshufb` evaluates for 16 (SSSE3) or 32 (AVX2) bytes per instruction.
//! The two 16-byte tables per coefficient live in
//! [`NibblePair`](crate::gf256::NibblePair), built at compile time next to
//! the full 256 × 256 multiplication table.
//!
//! # Safety
//!
//! This is the only module in the crate that uses `unsafe`, and it uses it
//! for exactly two things:
//!
//! * **`#[target_feature]` calls** — every kernel is compiled for an
//!   instruction-set extension the build target may not guarantee, so
//!   callers must prove at runtime that the CPU supports it.  The single
//!   dispatcher in `gf256.rs` is the only caller, and it only selects a
//!   kernel after `is_x86_feature_detected!` has confirmed the feature
//!   (cached once per process, see `gf256::active_kernel`).
//! * **unaligned vector loads/stores** — `_mm*_loadu_*`/`_mm*_storeu_*`
//!   through raw pointers derived from the argument slices.  Every pointer
//!   offset is bounded by the `while i + LANES <= len` loop condition, and
//!   the dispatcher asserts `dst.len() == src.len()` before calling.
//!
//! The scalar routines in `gf256.rs` remain the always-compiled,
//! always-correct baseline: these kernels are a pure drop-in with
//! byte-identical output (property-tested in `tests/proptest_kernels.rs`
//! over lengths, alignments, and all 256 coefficients).
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
    _mm256_set1_epi8, _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256,
    _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8,
    _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
};

use crate::gf256::NibblePair;

/// `dst[i] ^= c * src[i]`, 32 bytes per step.
///
/// # Safety
///
/// Requires AVX2 (caller must have verified via feature detection) and
/// `dst.len() == src.len()`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn addmul_avx2(dst: &mut [u8], src: &[u8], nibbles: &NibblePair, row: &[u8; 256]) {
    let lo_table = _mm256_broadcastsi128_si256(_mm_loadu_si128(nibbles.lo.as_ptr().cast()));
    let hi_table = _mm256_broadcastsi128_si256(_mm_loadu_si128(nibbles.hi.as_ptr().cast()));
    let mask = _mm256_set1_epi8(0x0F);
    let len = dst.len();
    let mut i = 0usize;
    while i + 32 <= len {
        let s = _mm256_loadu_si256(src.as_ptr().add(i).cast::<__m256i>());
        let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast::<__m256i>());
        let prod = mul_bytes_avx2(s, lo_table, hi_table, mask);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast::<__m256i>(), _mm256_xor_si256(d, prod));
        i += 32;
    }
    for j in i..len {
        dst[j] ^= row[src[j] as usize];
    }
}

/// `dst[i] = c * src[i]`, 32 bytes per step.
///
/// # Safety
///
/// Requires AVX2 and `dst.len() == src.len()`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn mul_into_avx2(dst: &mut [u8], src: &[u8], nibbles: &NibblePair, row: &[u8; 256]) {
    let lo_table = _mm256_broadcastsi128_si256(_mm_loadu_si128(nibbles.lo.as_ptr().cast()));
    let hi_table = _mm256_broadcastsi128_si256(_mm_loadu_si128(nibbles.hi.as_ptr().cast()));
    let mask = _mm256_set1_epi8(0x0F);
    let len = dst.len();
    let mut i = 0usize;
    while i + 32 <= len {
        let s = _mm256_loadu_si256(src.as_ptr().add(i).cast::<__m256i>());
        let prod = mul_bytes_avx2(s, lo_table, hi_table, mask);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast::<__m256i>(), prod);
        i += 32;
    }
    for j in i..len {
        dst[j] = row[src[j] as usize];
    }
}

/// `dst[i] ^= src[i]`, 32 bytes per step.
///
/// # Safety
///
/// Requires AVX2 and `dst.len() == src.len()`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn xor_avx2(dst: &mut [u8], src: &[u8]) {
    let len = dst.len();
    let mut i = 0usize;
    while i + 32 <= len {
        let s = _mm256_loadu_si256(src.as_ptr().add(i).cast::<__m256i>());
        let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast::<__m256i>());
        _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast::<__m256i>(), _mm256_xor_si256(d, s));
        i += 32;
    }
    for j in i..len {
        dst[j] ^= src[j];
    }
}

/// Multiplies 32 bytes by the broadcast coefficient tables: two in-lane
/// shuffles and one XOR.  `vpshufb` indexes within each 128-bit lane, which
/// is exactly right because both lanes hold the same broadcast 16-entry
/// table.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn mul_bytes_avx2(s: __m256i, lo_table: __m256i, hi_table: __m256i, mask: __m256i) -> __m256i {
    let lo_idx = _mm256_and_si256(s, mask);
    // The 64-bit shift drags bits across byte boundaries, but the mask
    // keeps only each byte's own high nibble.
    let hi_idx = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
    _mm256_xor_si256(
        _mm256_shuffle_epi8(lo_table, lo_idx),
        _mm256_shuffle_epi8(hi_table, hi_idx),
    )
}

/// `dst[i] ^= c * src[i]`, 16 bytes per step.
///
/// # Safety
///
/// Requires SSSE3 and `dst.len() == src.len()`.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn addmul_ssse3(dst: &mut [u8], src: &[u8], nibbles: &NibblePair, row: &[u8; 256]) {
    let lo_table = _mm_loadu_si128(nibbles.lo.as_ptr().cast());
    let hi_table = _mm_loadu_si128(nibbles.hi.as_ptr().cast());
    let mask = _mm_set1_epi8(0x0F);
    let len = dst.len();
    let mut i = 0usize;
    while i + 16 <= len {
        let s = _mm_loadu_si128(src.as_ptr().add(i).cast::<__m128i>());
        let d = _mm_loadu_si128(dst.as_ptr().add(i).cast::<__m128i>());
        let prod = mul_bytes_ssse3(s, lo_table, hi_table, mask);
        _mm_storeu_si128(dst.as_mut_ptr().add(i).cast::<__m128i>(), _mm_xor_si128(d, prod));
        i += 16;
    }
    for j in i..len {
        dst[j] ^= row[src[j] as usize];
    }
}

/// `dst[i] = c * src[i]`, 16 bytes per step.
///
/// # Safety
///
/// Requires SSSE3 and `dst.len() == src.len()`.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn mul_into_ssse3(dst: &mut [u8], src: &[u8], nibbles: &NibblePair, row: &[u8; 256]) {
    let lo_table = _mm_loadu_si128(nibbles.lo.as_ptr().cast());
    let hi_table = _mm_loadu_si128(nibbles.hi.as_ptr().cast());
    let mask = _mm_set1_epi8(0x0F);
    let len = dst.len();
    let mut i = 0usize;
    while i + 16 <= len {
        let s = _mm_loadu_si128(src.as_ptr().add(i).cast::<__m128i>());
        let prod = mul_bytes_ssse3(s, lo_table, hi_table, mask);
        _mm_storeu_si128(dst.as_mut_ptr().add(i).cast::<__m128i>(), prod);
        i += 16;
    }
    for j in i..len {
        dst[j] = row[src[j] as usize];
    }
}

/// Multiplies 16 bytes by the broadcast coefficient tables.
#[target_feature(enable = "ssse3")]
#[inline]
unsafe fn mul_bytes_ssse3(s: __m128i, lo_table: __m128i, hi_table: __m128i, mask: __m128i) -> __m128i {
    let lo_idx = _mm_and_si128(s, mask);
    let hi_idx = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
    _mm_xor_si128(
        _mm_shuffle_epi8(lo_table, lo_idx),
        _mm_shuffle_epi8(hi_table, hi_idx),
    )
}
