//! # rapidware-fec — (n, k) block erasure codes
//!
//! The paper's demand-driven FEC proxy filter uses *(n, k)* block erasure
//! codes (Rizzo, "Effective erasure codes for reliable computer communication
//! protocols", CCR 1997): `k` source packets are expanded into `n` encoded
//! packets such that **any** `k` of the `n` suffice to reconstruct the
//! original `k`.  A single parity packet can therefore repair independent
//! single-packet losses at different multicast receivers, which is why the
//! paper uses these codes for audio multicast on wireless LANs.
//!
//! This crate implements that construction from scratch:
//!
//! * [`gf256`] — arithmetic in the Galois field GF(2⁸);
//! * [`Matrix`] — dense matrices over GF(2⁸) with Vandermonde construction
//!   and Gaussian-elimination inversion;
//! * [`FecCodec`] — a *systematic* encoder/decoder: the first `k` encoded
//!   shards are the source shards themselves, followed by `n − k` parity
//!   shards;
//! * [`BlockAssembler`] / [`BlockReconstructor`] — packet-level framing that
//!   groups variable-size payloads into fixed groups of `k`, pads them to a
//!   common length, and recovers missing payloads at the receiver.
//!
//! ## Example
//!
//! ```
//! use rapidware_fec::FecCodec;
//!
//! # fn main() -> Result<(), rapidware_fec::FecError> {
//! // The paper's FEC(6,4): 4 source packets, 2 parities.
//! let codec = FecCodec::new(6, 4)?;
//! let sources: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
//! let shards: Vec<&[u8]> = sources.iter().map(|s| s.as_slice()).collect();
//! let parities = codec.encode(&shards)?;
//!
//! // Lose source shards 1 and 3; recover them from shards {0, 2} + parities.
//! let available = vec![
//!     (0usize, sources[0].as_slice()),
//!     (2, sources[2].as_slice()),
//!     (4, parities[0].as_slice()),
//!     (5, parities[1].as_slice()),
//! ];
//! let recovered = codec.decode(&available, 16)?;
//! assert_eq!(recovered[1], sources[1]);
//! assert_eq!(recovered[3], sources[3]);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the SIMD kernel module (`gf256_simd`) opts
// back in with a scoped `#[allow]` — it is the only unsafe code in the
// crate, and its safety contract is documented at the module head.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod codec;
mod error;
pub mod gf256;
#[cfg(target_arch = "x86_64")]
mod gf256_simd;
mod matrix;

pub use block::{
    BlockAssembler, BlockReconstructor, DecodeScratch, EncodedBlock, RecoveredPayload,
    MAX_PAYLOAD_LEN,
};
pub use codec::FecCodec;
pub use error::FecError;
pub use matrix::Matrix;
