//! The systematic (n, k) erasure codec.

use crate::error::FecError;
use crate::gf256;
use crate::matrix::Matrix;

/// A systematic (n, k) block erasure codec over GF(2⁸).
///
/// Encoding maps `k` equal-length source shards to `n` encoded shards where
/// the first `k` encoded shards are the sources themselves and the remaining
/// `n − k` are parity shards.  **Any** `k` of the `n` encoded shards suffice
/// to reconstruct all `k` sources.
///
/// The generator matrix is derived from a Vandermonde matrix `V` (size
/// `n × k`) as `G = V · V₀⁻¹`, where `V₀` is the top `k × k` block of `V`.
/// This makes the top of `G` the identity (hence *systematic*) while
/// preserving the Vandermonde property that any `k` rows are invertible —
/// the construction used by Rizzo's `fec` library that the paper builds on.
#[derive(Debug, Clone)]
pub struct FecCodec {
    n: usize,
    k: usize,
    /// Full n × k generator matrix (top k rows are the identity).
    generator: Matrix,
}

impl FecCodec {
    /// Creates a codec for the given parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::InvalidParameters`] unless `0 < k ≤ n ≤ 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, FecError> {
        if k == 0 || n < k || n > 255 {
            return Err(FecError::InvalidParameters { n, k });
        }
        let vandermonde = Matrix::vandermonde(n, k);
        let top = vandermonde.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inverse = top
            .inverted()
            .expect("top block of a Vandermonde matrix is always invertible");
        let generator = vandermonde.multiply(&top_inverse);
        Ok(Self { n, k, generator })
    }

    /// Total number of encoded shards per block.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of source shards per block.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity shards per block (`n − k`).
    pub fn parity_count(&self) -> usize {
        self.n - self.k
    }

    /// Redundancy overhead of the code, `(n − k) / k`.
    pub fn overhead(&self) -> f64 {
        self.parity_count() as f64 / self.k as f64
    }

    /// The generator matrix (mainly useful for tests and diagnostics).
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Encodes `k` equal-length source shards into `n − k` parity shards.
    ///
    /// The source shards themselves are *not* returned (they are transmitted
    /// unchanged — the code is systematic).
    ///
    /// # Errors
    ///
    /// Returns [`FecError::WrongShardCount`] if `sources.len() != k` and
    /// [`FecError::UnequalShardLengths`] if the shards differ in length.
    pub fn encode(&self, sources: &[&[u8]]) -> Result<Vec<Vec<u8>>, FecError> {
        let mut parities = Vec::with_capacity(self.parity_count());
        self.encode_into(sources, &mut parities)?;
        Ok(parities)
    }

    /// Encodes a whole block into caller-owned parity buffers.
    ///
    /// `parities` is resized to `n − k` shards of the common source length;
    /// existing buffer allocations are reused, so a steady-state encoder
    /// (one block after another of the same shard length) allocates nothing.
    /// Each parity row is produced with the bulk slice routines: the first
    /// source is *written* through [`gf256::mul_slice_into`] and the rest
    /// are accumulated with [`gf256::addmul_slice`], so the cost per byte is
    /// one table lookup and one XOR.
    ///
    /// # Errors
    ///
    /// Same conditions as [`encode`](Self::encode).
    pub fn encode_into(
        &self,
        sources: &[&[u8]],
        parities: &mut Vec<Vec<u8>>,
    ) -> Result<(), FecError> {
        if sources.len() != self.k {
            return Err(FecError::WrongShardCount {
                expected: self.k,
                actual: sources.len(),
            });
        }
        let shard_len = sources.first().map_or(0, |s| s.len());
        if sources.iter().any(|s| s.len() != shard_len) {
            return Err(FecError::UnequalShardLengths);
        }
        parities.resize_with(self.parity_count(), Vec::new);
        for (index, parity) in parities.iter_mut().enumerate() {
            let row = self.k + index;
            parity.resize(shard_len, 0);
            let first_coeff = self.generator.get(row, 0);
            gf256::mul_slice_into(parity, sources[0], first_coeff);
            for (col, source) in sources.iter().enumerate().skip(1) {
                let coeff = self.generator.get(row, col);
                gf256::addmul_slice(parity, source, coeff);
            }
        }
        Ok(())
    }

    /// Reconstructs all `k` source shards from any `k` of the `n` encoded
    /// shards.
    ///
    /// `available` holds `(shard_index, shard_data)` pairs where indices
    /// `0..k` denote source shards and `k..n` denote parity shards (parity
    /// `i` produced by [`encode`](Self::encode) has index `k + i`).
    /// `shard_len` is the common shard length; shards whose length differs
    /// are rejected.
    ///
    /// # Errors
    ///
    /// * [`FecError::NotEnoughShards`] if fewer than `k` distinct shards are
    ///   available;
    /// * [`FecError::InvalidShardIndex`] for out-of-range or duplicate
    ///   indices;
    /// * [`FecError::UnequalShardLengths`] if a shard has the wrong length.
    pub fn decode(
        &self,
        available: &[(usize, &[u8])],
        shard_len: usize,
    ) -> Result<Vec<Vec<u8>>, FecError> {
        let mut sources = Vec::new();
        self.decode_into(available, shard_len, &mut sources)?;
        Ok(sources)
    }

    /// Reconstructs all `k` source shards into caller-owned buffers.
    ///
    /// `sources` is resized to `k` shards of `shard_len` bytes each, and
    /// existing buffer allocations are **reused** — a steady-state decoder
    /// (one block after another of the same shard length) allocates
    /// nothing, where [`decode`](Self::decode) used to clone every shard
    /// into a fresh `Vec<Vec<u8>>` per call.  On error the contents of
    /// `sources` are unspecified (but always safe to reuse for the next
    /// call).
    ///
    /// # Errors
    ///
    /// Same conditions as [`decode`](Self::decode).
    pub fn decode_into(
        &self,
        available: &[(usize, &[u8])],
        shard_len: usize,
        sources: &mut Vec<Vec<u8>>,
    ) -> Result<(), FecError> {
        // Collect up to k distinct shards, preferring source shards (cheaper:
        // they need no matrix work), then parities.
        let mut seen = [false; 256];
        let mut chosen: Vec<(usize, &[u8])> = Vec::with_capacity(self.k);
        for &(index, data) in available {
            if index >= self.n {
                return Err(FecError::InvalidShardIndex(index));
            }
            if seen[index] {
                return Err(FecError::InvalidShardIndex(index));
            }
            if data.len() != shard_len {
                return Err(FecError::UnequalShardLengths);
            }
            seen[index] = true;
            if chosen.len() < self.k {
                chosen.push((index, data));
            }
        }
        if chosen.len() < self.k {
            return Err(FecError::NotEnoughShards {
                needed: self.k,
                available: chosen.len(),
            });
        }

        sources.resize_with(self.k, Vec::new);

        // Fast path: all k source shards are present — copy each into its
        // reused buffer, no matrix work.
        if chosen.iter().all(|(i, _)| *i < self.k) {
            for &(i, data) in &chosen {
                let buf = &mut sources[i];
                buf.clear();
                buf.extend_from_slice(data);
            }
            return Ok(());
        }

        // General path: invert the k × k submatrix of the generator formed by
        // the chosen shard rows, then multiply it into the shard data.
        let rows: Vec<usize> = chosen.iter().map(|(i, _)| *i).collect();
        let submatrix = self.generator.select_rows(&rows);
        let inverse = submatrix.inverted()?;

        for (source_index, source) in sources.iter_mut().enumerate() {
            // First shard is written (not accumulated), the rest are XORed
            // in — whole-row bulk operations, no per-byte zero tests, and
            // `mul_slice_into` overwrites every byte so stale buffer
            // contents never leak through.
            source.resize(shard_len, 0);
            gf256::mul_slice_into(source, chosen[0].1, inverse.get(source_index, 0));
            for (chosen_pos, &(_, data)) in chosen.iter().enumerate().skip(1) {
                let coeff = inverse.get(source_index, chosen_pos);
                gf256::addmul_slice(source, data, coeff);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sources(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 37 + j * 11 + 5) % 256) as u8).collect())
            .collect()
    }

    fn refs(sources: &[Vec<u8>]) -> Vec<&[u8]> {
        sources.iter().map(|s| s.as_slice()).collect()
    }

    #[test]
    fn decode_into_dirty_buffers_match_decode() {
        // Byte-parity regression: reusing a scratch left dirty by a previous
        // decode (longer shards, stale bytes, wrong shard count) must yield
        // exactly what the allocating `decode` produces — on both the
        // all-sources fast path and the matrix-inversion general path.
        let codec = FecCodec::new(6, 4).unwrap();
        let mut scratch: Vec<Vec<u8>> = vec![vec![0xAB; 512]; 7];
        for len in [1usize, 31, 32, 64, 100] {
            let sources = sample_sources(4, len);
            let parities = codec.encode(&refs(&sources)).unwrap();

            // General path: two sources lost.
            let available = vec![
                (0usize, sources[0].as_slice()),
                (2, sources[2].as_slice()),
                (4, parities[0].as_slice()),
                (5, parities[1].as_slice()),
            ];
            let fresh = codec.decode(&available, len).unwrap();
            codec.decode_into(&available, len, &mut scratch).unwrap();
            assert_eq!(fresh, scratch, "general path, len {len}");

            // Fast path: all sources present.
            let all: Vec<(usize, &[u8])> = sources
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.as_slice()))
                .collect();
            let fresh = codec.decode(&all, len).unwrap();
            codec.decode_into(&all, len, &mut scratch).unwrap();
            assert_eq!(fresh, scratch, "fast path, len {len}");
        }
    }

    #[test]
    fn parameters_are_validated() {
        assert!(FecCodec::new(6, 4).is_ok());
        assert!(FecCodec::new(4, 4).is_ok());
        assert!(matches!(
            FecCodec::new(3, 4),
            Err(FecError::InvalidParameters { .. })
        ));
        assert!(matches!(
            FecCodec::new(5, 0),
            Err(FecError::InvalidParameters { .. })
        ));
        assert!(matches!(
            FecCodec::new(256, 4),
            Err(FecError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn generator_is_systematic() {
        let codec = FecCodec::new(6, 4).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(codec.generator().get(r, c), u8::from(r == c));
            }
        }
    }

    #[test]
    fn accessors_report_parameters() {
        let codec = FecCodec::new(6, 4).unwrap();
        assert_eq!(codec.n(), 6);
        assert_eq!(codec.k(), 4);
        assert_eq!(codec.parity_count(), 2);
        assert!((codec.overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn encode_rejects_bad_input() {
        let codec = FecCodec::new(6, 4).unwrap();
        let sources = sample_sources(3, 8);
        assert!(matches!(
            codec.encode(&refs(&sources)),
            Err(FecError::WrongShardCount { expected: 4, actual: 3 })
        ));
        let mut uneven = sample_sources(4, 8);
        uneven[2].push(0);
        assert_eq!(
            codec.encode(&refs(&uneven)).unwrap_err(),
            FecError::UnequalShardLengths
        );
    }

    #[test]
    fn all_sources_present_fast_path() {
        let codec = FecCodec::new(6, 4).unwrap();
        let sources = sample_sources(4, 32);
        let available: Vec<(usize, &[u8])> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.as_slice()))
            .collect();
        let decoded = codec.decode(&available, 32).unwrap();
        assert_eq!(decoded, sources);
    }

    #[test]
    fn recovers_from_any_k_of_n_shards_fec_6_4() {
        let codec = FecCodec::new(6, 4).unwrap();
        let sources = sample_sources(4, 48);
        let parities = codec.encode(&refs(&sources)).unwrap();
        let mut shards: Vec<Vec<u8>> = sources.clone();
        shards.extend(parities);

        // Every 4-subset of the 6 shards must reconstruct the sources.
        for a in 0..6 {
            for b in (a + 1)..6 {
                let available: Vec<(usize, &[u8])> = (0..6)
                    .filter(|&i| i != a && i != b)
                    .map(|i| (i, shards[i].as_slice()))
                    .collect();
                let decoded = codec.decode(&available, 48).unwrap();
                assert_eq!(decoded, sources, "lost shards {a} and {b}");
            }
        }
    }

    #[test]
    fn recovers_with_larger_parameters() {
        let codec = FecCodec::new(12, 8).unwrap();
        let sources = sample_sources(8, 100);
        let parities = codec.encode(&refs(&sources)).unwrap();
        // Lose 4 sources; decode from the remaining 4 sources + 4 parities.
        let mut available: Vec<(usize, &[u8])> = Vec::new();
        for i in [1usize, 3, 5, 7] {
            available.push((i, sources[i].as_slice()));
        }
        for (j, parity) in parities.iter().enumerate() {
            available.push((8 + j, parity.as_slice()));
        }
        let decoded = codec.decode(&available, 100).unwrap();
        assert_eq!(decoded, sources);
    }

    #[test]
    fn too_few_shards_is_an_error() {
        let codec = FecCodec::new(6, 4).unwrap();
        let sources = sample_sources(4, 16);
        let available: Vec<(usize, &[u8])> = sources
            .iter()
            .take(3)
            .enumerate()
            .map(|(i, s)| (i, s.as_slice()))
            .collect();
        assert_eq!(
            codec.decode(&available, 16).unwrap_err(),
            FecError::NotEnoughShards {
                needed: 4,
                available: 3
            }
        );
    }

    #[test]
    fn duplicate_and_out_of_range_indices_rejected() {
        let codec = FecCodec::new(6, 4).unwrap();
        let shard = vec![0u8; 8];
        let dup = vec![
            (0usize, shard.as_slice()),
            (0, shard.as_slice()),
            (1, shard.as_slice()),
            (2, shard.as_slice()),
        ];
        assert_eq!(
            codec.decode(&dup, 8).unwrap_err(),
            FecError::InvalidShardIndex(0)
        );
        let out_of_range = vec![(6usize, shard.as_slice())];
        assert_eq!(
            codec.decode(&out_of_range, 8).unwrap_err(),
            FecError::InvalidShardIndex(6)
        );
    }

    #[test]
    fn wrong_shard_length_rejected() {
        let codec = FecCodec::new(6, 4).unwrap();
        let shard = vec![0u8; 8];
        let short = vec![0u8; 7];
        let available = vec![
            (0usize, shard.as_slice()),
            (1, shard.as_slice()),
            (2, shard.as_slice()),
            (3, short.as_slice()),
        ];
        assert_eq!(
            codec.decode(&available, 8).unwrap_err(),
            FecError::UnequalShardLengths
        );
    }

    #[test]
    fn rate_one_code_has_no_parity() {
        let codec = FecCodec::new(4, 4).unwrap();
        let sources = sample_sources(4, 8);
        assert!(codec.encode(&refs(&sources)).unwrap().is_empty());
    }

    #[test]
    fn single_source_replication_code() {
        // (n, 1) is a repetition code: every parity equals the source.
        let codec = FecCodec::new(3, 1).unwrap();
        let source = vec![vec![7u8, 8, 9]];
        let parities = codec.encode(&refs(&source)).unwrap();
        assert_eq!(parities.len(), 2);
        for parity in &parities {
            assert_eq!(parity, &source[0]);
        }
        let decoded = codec
            .decode(&[(2usize, parities[1].as_slice())], 3)
            .unwrap();
        assert_eq!(decoded[0], source[0]);
    }

    #[test]
    fn zero_length_shards_are_legal() {
        let codec = FecCodec::new(6, 4).unwrap();
        let sources = vec![vec![]; 4];
        let parities = codec.encode(&refs(&sources)).unwrap();
        assert!(parities.iter().all(|p| p.is_empty()));
    }
}
