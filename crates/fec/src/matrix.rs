//! Dense matrices over GF(2⁸) with the operations the erasure code needs:
//! Vandermonde construction, multiplication, and Gaussian-elimination
//! inversion.

use std::fmt;

use crate::error::FecError;
use crate::gf256;

/// A row-major dense matrix over GF(2⁸).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates the `rows × cols` Vandermonde matrix whose entry `(r, c)` is
    /// `r^c` in GF(2⁸) (with the usual convention `0⁰ = 1`).  Any `cols`
    /// rows of this matrix are linearly independent as long as `rows ≤ 255`.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c as u32));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> u8 {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: u8) {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row.
    pub fn row(&self, row: usize) -> &[u8] {
        assert!(row < self.rows, "matrix row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    fn row_mut(&mut self, row: usize) -> &mut [u8] {
        assert!(row < self.rows, "matrix row out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable views of two distinct rows at once (for row elimination).
    fn rows_pair_mut(&mut self, a: usize, b: usize) -> (&mut [u8], &mut [u8]) {
        assert!(a != b, "rows_pair_mut needs distinct rows");
        assert!(a < self.rows && b < self.rows, "matrix row out of bounds");
        let cols = self.cols;
        if a < b {
            let (head, tail) = self.data.split_at_mut(b * cols);
            (&mut head[a * cols..(a + 1) * cols], &mut tail[..cols])
        } else {
            let (head, tail) = self.data.split_at_mut(a * cols);
            (&mut tail[..cols], &mut head[b * cols..(b + 1) * cols])
        }
    }

    /// Builds a new matrix from a subset of this matrix's rows, in the given
    /// order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut m = Matrix::zero(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            let start = dst * self.cols;
            m.data[start..start + self.cols].copy_from_slice(self.row(src));
        }
        m
    }

    /// Matrix product `self * rhs`.
    ///
    /// The inner loop runs over whole rows of `rhs` through the bulk
    /// [`gf256::addmul_slice`] rather than element-by-element `get`/`set`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner matrix dimensions must agree");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
            for inner in 0..self.cols {
                let coeff = self.data[r * self.cols + inner];
                if coeff == 0 {
                    continue;
                }
                gf256::addmul_slice(out_row, rhs.row(inner), coeff);
            }
        }
        out
    }

    /// Returns the inverse of this square matrix, or
    /// [`FecError::SingularMatrix`] if it is not invertible.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::SingularMatrix`] when no inverse exists.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverted(&self) -> Result<Matrix, FecError> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut work = self.clone();
        let mut inverse = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot row with a non-zero entry in this column.
            let pivot = (col..n)
                .find(|&r| work.get(r, col) != 0)
                .ok_or(FecError::SingularMatrix)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inverse.swap_rows(pivot, col);
            }
            // Scale the pivot row so the pivot element becomes 1.
            let pivot_value = work.get(col, col);
            let pivot_inv = gf256::inv(pivot_value);
            work.scale_row(col, pivot_inv);
            inverse.scale_row(col, pivot_inv);
            // Eliminate this column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work.get(r, col);
                if factor != 0 {
                    work.addmul_row(r, col, factor);
                    inverse.addmul_row(r, col, factor);
                }
            }
        }
        Ok(inverse)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (row_a, row_b) = self.rows_pair_mut(a, b);
        row_a.swap_with_slice(row_b);
    }

    fn scale_row(&mut self, row: usize, factor: u8) {
        gf256::mul_slice(self.row_mut(row), factor);
    }

    /// `row_dst ^= factor * row_src`, borrowing both rows in place (no
    /// temporary row copy).
    fn addmul_row(&mut self, dst: usize, src: usize, factor: u8) {
        let (dst_row, src_row) = self.rows_pair_mut(dst, src);
        gf256::addmul_slice(dst_row, src_row, factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything_is_unchanged() {
        let v = Matrix::vandermonde(5, 3);
        let id = Matrix::identity(5);
        assert_eq!(id.multiply(&v), v);
    }

    #[test]
    fn vandermonde_first_rows() {
        let v = Matrix::vandermonde(4, 3);
        // Row 0: alpha = 0 -> [1, 0, 0]
        assert_eq!(v.row(0), &[1, 0, 0]);
        // Row 1: alpha = 1 -> [1, 1, 1]
        assert_eq!(v.row(1), &[1, 1, 1]);
        // Row 2: alpha = 2 -> [1, 2, 4]
        assert_eq!(v.row(2), &[1, 2, 4]);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        // Any k rows of a Vandermonde matrix form an invertible square
        // matrix; try a few selections.
        let v = Matrix::vandermonde(8, 4);
        for rows in [[0usize, 1, 2, 3], [4, 5, 6, 7], [0, 3, 5, 7], [1, 2, 4, 6]] {
            let square = v.select_rows(&rows);
            let inverse = square.inverted().unwrap();
            assert_eq!(square.multiply(&inverse), Matrix::identity(4));
            assert_eq!(inverse.multiply(&square), Matrix::identity(4));
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut m = Matrix::zero(2, 2);
        m.set(0, 0, 1);
        m.set(0, 1, 2);
        m.set(1, 0, 1);
        m.set(1, 1, 2); // identical rows
        assert_eq!(m.inverted().unwrap_err(), FecError::SingularMatrix);
    }

    #[test]
    fn select_rows_preserves_order() {
        let v = Matrix::vandermonde(5, 2);
        let sel = v.select_rows(&[3, 1]);
        assert_eq!(sel.row(0), v.row(3));
        assert_eq!(sel.row(1), v.row(1));
    }

    #[test]
    fn multiply_dimensions() {
        let a = Matrix::vandermonde(4, 3);
        let b = Matrix::vandermonde(3, 2);
        let c = a.multiply(&b);
        assert_eq!(c.rows(), 4);
        assert_eq!(c.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "dimensions must agree")]
    fn multiply_with_bad_dimensions_panics() {
        let a = Matrix::vandermonde(2, 3);
        let b = Matrix::vandermonde(2, 3);
        let _ = a.multiply(&b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::identity(2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn debug_output_lists_rows() {
        let m = Matrix::identity(2);
        let text = format!("{m:?}");
        assert!(text.contains("2x2"));
    }
}
