//! Property-based byte-identity tests for the dispatched GF(2⁸) bulk
//! kernels against the always-compiled scalar references.
//!
//! The dispatched functions (`addmul_slice`, `mul_slice_into`, `xor_slice`)
//! pick AVX2/SSSE3 kernels at runtime; these tests pin them to the scalar
//! path byte for byte over arbitrary lengths, unaligned subslices, tail
//! remainders shorter than one SIMD lane, and **all 256 coefficients**.
//! CI runs this suite twice — once as-is and once under
//! `RAPIDWARE_FORCE_SCALAR=1` — so both sides of the dispatch stay covered.

use proptest::prelude::*;
use rapidware_fec::{gf256, FecCodec};

/// Deterministic pseudo-random bytes from a seed (same LCG the other FEC
/// property suites use).
fn fill(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `addmul_slice` (dispatched) == scalar reference on arbitrary-length
    /// unaligned subslices: `target[i] ^= c * source[i]`.
    #[test]
    fn addmul_dispatch_matches_scalar(
        len in 0usize..300,
        offset in 0usize..32,
        c in any::<u8>(),
        seed in any::<u64>(),
    ) {
        // Carve the working slices out of larger buffers at a proptest-chosen
        // offset so the kernels see every alignment of the 16/32-byte lanes.
        let source = fill(seed, offset + len);
        let backing = fill(seed ^ 0xABCD, offset + len);
        let mut simd = backing.clone();
        let mut scalar = backing.clone();
        gf256::addmul_slice(&mut simd[offset..], &source[offset..], c);
        gf256::addmul_slice_scalar(&mut scalar[offset..], &source[offset..], c);
        prop_assert_eq!(simd, scalar);
    }

    /// `mul_slice_into` (dispatched) == scalar reference, including that
    /// every stale byte of the target is overwritten.
    #[test]
    fn mul_into_dispatch_matches_scalar(
        len in 0usize..300,
        offset in 0usize..32,
        c in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let source = fill(seed, offset + len);
        let mut simd = vec![0x5A; offset + len];
        let mut scalar = vec![0xA5; offset + len];
        gf256::mul_slice_into(&mut simd[offset..], &source[offset..], c);
        gf256::mul_slice_into_scalar(&mut scalar[offset..], &source[offset..], c);
        prop_assert_eq!(&simd[offset..], &scalar[offset..]);
    }

    /// `xor_slice` (dispatched) == scalar reference.
    #[test]
    fn xor_dispatch_matches_scalar(
        len in 0usize..300,
        offset in 0usize..32,
        seed in any::<u64>(),
    ) {
        let source = fill(seed, offset + len);
        let backing = fill(seed ^ 0x1234, offset + len);
        let mut simd = backing.clone();
        let mut scalar = backing.clone();
        gf256::xor_slice(&mut simd[offset..], &source[offset..]);
        gf256::xor_slice_scalar(&mut scalar[offset..], &source[offset..]);
        prop_assert_eq!(simd, scalar);
    }

    /// `FecCodec::decode_into` with a dirty reused scratch produces exactly
    /// what the allocating `decode` does, for arbitrary (n, k), shard
    /// contents, and erasure patterns.
    #[test]
    fn decode_into_matches_decode(
        k in 1usize..8,
        extra in 1usize..4,
        shard_len in 1usize..80,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let codec = FecCodec::new(n, k).unwrap();
        let sources: Vec<Vec<u8>> = (0..k)
            .map(|i| fill(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15), shard_len))
            .collect();
        let refs: Vec<&[u8]> = sources.iter().map(|s| s.as_slice()).collect();
        let parities = codec.encode(&refs).unwrap();

        let mut shards: Vec<Vec<u8>> = sources;
        shards.extend(parities);
        // Survivors: a seed-chosen selection of exactly k of the n shards.
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((state >> 33) as usize) % (i + 1);
            order.swap(i, j);
        }
        let available: Vec<(usize, &[u8])> = order[..k]
            .iter()
            .map(|&i| (i, shards[i].as_slice()))
            .collect();

        let fresh = codec.decode(&available, shard_len).unwrap();
        // Scratch deliberately dirty: wrong shard count, wrong lengths,
        // stale bytes.
        let mut scratch: Vec<Vec<u8>> = vec![vec![0xEE; shard_len + 17]; k + 3];
        codec.decode_into(&available, shard_len, &mut scratch).unwrap();
        prop_assert_eq!(fresh, scratch);
    }
}

/// Every one of the 256 coefficients, across lengths that cover the empty
/// slice, sub-lane tails, exact lane multiples, and lane+tail mixes for
/// both the 16-byte SSSE3 and 32-byte AVX2 step sizes.
#[test]
fn all_256_coefficients_match_scalar_at_lane_boundary_lengths() {
    for c in 0..=255u8 {
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 48, 64, 100] {
            let source = fill(u64::from(c) + 1, len);
            let backing = fill(u64::from(c).wrapping_mul(77) + 3, len);

            let mut simd = backing.clone();
            let mut scalar = backing.clone();
            gf256::addmul_slice(&mut simd, &source, c);
            gf256::addmul_slice_scalar(&mut scalar, &source, c);
            assert_eq!(simd, scalar, "addmul c={c} len={len}");

            let mut simd = backing.clone();
            let mut scalar = backing;
            gf256::mul_slice_into(&mut simd, &source, c);
            gf256::mul_slice_into_scalar(&mut scalar, &source, c);
            assert_eq!(simd, scalar, "mul_into c={c} len={len}");
        }
    }
}
