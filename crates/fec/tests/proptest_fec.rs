//! Property-based tests for the FEC stack: field axioms, codec round-trips
//! under arbitrary erasure patterns, and block framing round-trips.

use proptest::prelude::*;
use rapidware_fec::{gf256, BlockAssembler, BlockReconstructor, FecCodec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// GF(2⁸) is a field: commutativity, associativity, distributivity, and
    /// inverses hold for arbitrary elements.
    #[test]
    fn gf256_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf256::add(a, b), gf256::add(b, a));
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        prop_assert_eq!(gf256::add(a, a), 0);
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            prop_assert_eq!(gf256::div(gf256::mul(b, a), a), b);
        }
    }

    /// Any erasure pattern of at most n − k losses is recoverable, for a
    /// range of (n, k) configurations and shard contents.
    #[test]
    fn codec_recovers_any_tolerable_erasure_pattern(
        k in 1usize..10,
        extra in 1usize..5,
        shard_len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let codec = FecCodec::new(n, k).unwrap();
        // Deterministic pseudo-random shard contents from the seed.
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let sources: Vec<Vec<u8>> = (0..k).map(|_| (0..shard_len).map(|_| next()).collect()).collect();
        let refs: Vec<&[u8]> = sources.iter().map(|s| s.as_slice()).collect();
        let parities = codec.encode(&refs).unwrap();

        let mut shards: Vec<Vec<u8>> = sources.clone();
        shards.extend(parities);

        // Choose which shards survive: keep exactly k, spread by the seed.
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher-Yates with the same LCG.
        for i in (1..n).rev() {
            let j = (next() as usize) % (i + 1);
            order.swap(i, j);
        }
        let survivors = &order[..k];
        let available: Vec<(usize, &[u8])> = survivors
            .iter()
            .map(|&i| (i, shards[i].as_slice()))
            .collect();

        let decoded = codec.decode(&available, shard_len).unwrap();
        prop_assert_eq!(decoded, sources);
    }

    /// Block framing (variable-size payloads, length prefix, padding)
    /// round-trips through loss and recovery.
    #[test]
    fn block_framing_round_trip(
        payload_lens in proptest::collection::vec(0usize..300, 4),
        lost_slot in 0usize..4,
        seed in any::<u64>(),
    ) {
        let codec = FecCodec::new(6, 4).unwrap();
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 33) as u8
        };
        let payloads: Vec<Vec<u8>> = payload_lens
            .iter()
            .map(|&len| (0..len).map(|_| next()).collect())
            .collect();

        let mut assembler = BlockAssembler::new(codec.clone());
        let mut block = None;
        for payload in &payloads {
            if let Some(b) = assembler.push(payload).unwrap() {
                block = Some(b);
            }
        }
        let block = block.expect("four payloads complete a (6,4) block");

        let mut reconstructor = BlockReconstructor::new(codec);
        for (slot, payload) in payloads.iter().enumerate() {
            if slot != lost_slot {
                reconstructor.add_source(slot, payload).unwrap();
            }
        }
        reconstructor.add_parity(0, &block.parities[0]).unwrap();
        let recovered = reconstructor.recover().unwrap();
        prop_assert_eq!(recovered.len(), 1);
        prop_assert_eq!(recovered[0].slot, lost_slot);
        prop_assert_eq!(&recovered[0].data, &payloads[lost_slot]);
    }
}
