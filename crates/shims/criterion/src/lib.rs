//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! Implements the subset of the criterion API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, throughput annotation) over a small wall-clock harness:
//! each benchmark is calibrated to a target sample duration, several samples
//! are taken, and the median time per iteration plus derived throughput are
//! printed.  There are no statistical comparisons against saved baselines —
//! run twice and compare by eye, or use the real criterion when network
//! access to crates.io is available.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration of one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// Hard cap on samples per benchmark so `cargo bench` stays fast.
const MAX_SAMPLES: usize = 20;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark routine processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark routine processes this many elements per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup cost; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Routine input is cheap to hold; one setup per measured iteration.
    SmallInput,
    /// Large input variant (treated identically by this harness).
    LargeInput,
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group(name);
        group.bench_function("run", &mut routine);
        group.finish();
    }
}

/// A named group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples to take per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Declares how much data one iteration processes, enabling a
    /// throughput column in the output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.min(MAX_SAMPLES),
        };
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<Input: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &Input,
        mut routine: impl FnMut(&mut Bencher, &Input),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.min(MAX_SAMPLES),
        };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Closes the group (purely cosmetic in this harness).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let mut per_iter: Vec<f64> = bencher.samples.clone();
        if per_iter.is_empty() {
            println!("{}/{}: no samples", self.name, id.label);
            return;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mut line = format!(
            "{}/{}: time [{} per iter, median of {}]",
            self.name,
            id.label,
            format_ns(median),
            per_iter.len()
        );
        if let Some(throughput) = self.throughput {
            let per_second = match throughput {
                Throughput::Bytes(bytes) => {
                    format!("{} /s", format_bytes(bytes as f64 / (median * 1e-9)))
                }
                Throughput::Elements(elements) => {
                    format!("{:.0} elem/s", elements as f64 / (median * 1e-9))
                }
            };
            line.push_str(&format!(" thrpt [{per_second}]"));
        }
        println!("{line}");
    }
}

fn format_ns(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn format_bytes(bytes_per_second: f64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    if bytes_per_second >= MIB {
        format!("{:.1} MiB", bytes_per_second / MIB)
    } else {
        format!("{:.1} KiB", bytes_per_second / 1024.0)
    }
}

/// Times the benchmark routine; handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Benchmarks `routine`, timing repeated calls.
    pub fn iter<Output>(&mut self, mut routine: impl FnMut() -> Output) {
        // Calibrate: how many iterations fit in one sample window?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters_per_sample =
            ((SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000)) as usize;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`, timing only the
    /// routine.
    pub fn iter_batched<Input, Output>(
        &mut self,
        mut setup: impl FnMut() -> Input,
        mut routine: impl FnMut(Input) -> Output,
        _size: BatchSize,
    ) {
        // Calibrate with one throwaway run.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters_per_sample =
            ((SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000)) as usize;
        for _ in 0..self.sample_size {
            let mut busy = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                busy += start.elapsed();
            }
            self.samples
                .push(busy.as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Declares a benchmark group function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(64));
        group.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0u64..64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum", 2), &2u64, |b, &two| {
            b.iter_batched(|| vec![two; 32], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
