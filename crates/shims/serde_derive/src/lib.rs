//! Offline stand-in for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace derives `Serialize`/`Deserialize` on its wire-facing types
//! to document intent, but never serialises through serde (the control
//! protocol uses its own framing), so empty expansions are sufficient.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
