//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! Provides the subset the workspace's property tests use: the [`proptest!`]
//! macro, `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`,
//! [`prelude::any`], range and tuple strategies, [`collection::vec`], and
//! [`prop_oneof!`]/[`prelude::Just`].  Unlike the real crate there is no
//! shrinking: a failing case fails the test with the standard assert
//! message.  Case generation is deterministic per test name, so failures are
//! reproducible.

pub mod test_runner {
    //! The deterministic random source driving case generation.

    /// A deterministic xorshift-style generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator whose sequence depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, then mixed so similar names
            // diverge immediately.
            let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: hash | 1 }
        }

        /// Produces the next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `map`.
        fn prop_map<Output, Map>(self, map: Map) -> MapStrategy<Self, Map>
        where
            Self: Sized,
            Map: Fn(Self::Value) -> Output,
        {
            MapStrategy {
                inner: self,
                map,
            }
        }

        /// Type-erases this strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<Value> = Box<dyn Strategy<Value = Value>>;

    impl<Value> Strategy for BoxedStrategy<Value> {
        type Value = Value;

        fn sample(&self, rng: &mut TestRng) -> Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct MapStrategy<Inner, Map> {
        inner: Inner,
        map: Map,
    }

    impl<Inner, Output, Map> Strategy for MapStrategy<Inner, Map>
    where
        Inner: Strategy,
        Map: Fn(Inner::Value) -> Output,
    {
        type Value = Output;

        fn sample(&self, rng: &mut TestRng) -> Output {
            (self.map)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<Value: Clone>(pub Value);

    impl<Value: Clone> Strategy for Just<Value> {
        type Value = Value;

        fn sample(&self, _rng: &mut TestRng) -> Value {
            self.0.clone()
        }
    }

    /// Uniform choice between several boxed strategies (see
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct UnionStrategy<Value> {
        arms: Vec<BoxedStrategy<Value>>,
    }

    impl<Value> UnionStrategy<Value> {
        /// Creates a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<Value>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<Value> Strategy for UnionStrategy<Value> {
        type Value = Value;

        fn sample(&self, rng: &mut TestRng) -> Value {
            let index = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[index].sample(rng)
        }
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait ArbitraryValue: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<Value>(PhantomData<Value>);

    impl<Value: ArbitraryValue> Strategy for AnyStrategy<Value> {
        type Value = Value;

        fn sample(&self, rng: &mut TestRng) -> Value {
            Value::arbitrary(rng)
        }
    }

    /// The strategy generating any value of type `Value`.
    pub fn any<Value: ArbitraryValue>() -> AnyStrategy<Value> {
        AnyStrategy(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// The number of elements a [`vec()`] strategy produces.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            Self {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<Element> {
        element: Element,
        size: SizeRange,
    }

    impl<Element: Strategy> Strategy for VecStrategy<Element> {
        type Value = Vec<Element::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// is drawn from `size` (a `usize` for an exact length, or a range).
    pub fn vec<Element: Strategy>(
        element: Element,
        size: impl Into<SizeRange>,
    ) -> VecStrategy<Element> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::ProptestConfig;
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body against `cases` random inputs.
///
/// Unlike the real proptest there is no shrinking; the first failing case
/// fails the test directly with its assert message.
#[macro_export]
macro_rules! proptest {
    (
        @internal ($config:expr)
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config = $config;
                let mut proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _proptest_case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), &mut proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@internal ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@internal ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::UnionStrategy::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(value in 3usize..9, pair in (0u8..4, any::<bool>())) {
            prop_assert!((3..9).contains(&value));
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn vec_lengths_respect_bounds(items in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&items.len()));
        }

        #[test]
        fn oneof_and_map_cover_arms(choice in prop_oneof![
            Just(0u8),
            (1u8..3).prop_map(|v| v),
        ]) {
            prop_assert!(choice < 3);
        }
    }
}
