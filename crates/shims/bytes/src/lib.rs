//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! exactly the subset of the `bytes` API the workspace consumes: a cheaply
//! clonable, reference-counted immutable byte buffer ([`Bytes`]), a growable
//! builder ([`BytesMut`]), and the big-endian cursor traits ([`Buf`],
//! [`BufMut`]).  Semantics match the real crate for this subset; swap the
//! `[workspace.dependencies]` entry for the crates.io version to drop the
//! shim.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, reference-counted byte buffer.
///
/// Clones share the same backing allocation, so fanning a payload out to
/// many consumers never copies the data.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Creates a buffer from a static slice (copies; the real crate borrows,
    /// but no caller in this workspace observes the difference).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns `true` if this handle is the only one referencing the
    /// backing allocation (so [`make_mut`](Self::make_mut) will not copy).
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// Mutable access with copy-on-write semantics.
    ///
    /// If this handle is the sole owner of the backing allocation the
    /// contents are mutated in place; otherwise the bytes are copied into a
    /// fresh allocation first, so every other clone keeps observing the
    /// original contents.  This is what lets a multicast fan-out share one
    /// payload across N receiver lanes and still allow any single lane to
    /// rewrite its copy safely.
    pub fn make_mut(&mut self) -> &mut [u8] {
        if Arc::strong_count(&self.data) != 1 {
            self.data = Arc::from(&self.data[..]);
        }
        Arc::get_mut(&mut self.data).expect("unique after copy-on-write")
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: data.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Self::copy_from_slice(&data)
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Self::from(data.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            write!(f, "\\x{byte:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into a [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length of the accumulated contents in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Converts the accumulated contents into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; integers are big-endian, as on the wire.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst` and advances.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let mut buf = [0u8; 1];
        self.copy_to_slice(&mut buf);
        buf[0]
    }

    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.copy_to_slice(&mut buf);
        u32::from_be_bytes(buf)
    }

    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.copy_to_slice(&mut buf);
        u64::from_be_bytes(buf)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for bytes; integers are big-endian, as on the wire.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn make_mut_copies_only_when_shared() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        assert!(a.is_unique());
        let original_ptr = a.as_ptr();
        a.make_mut()[0] = 9;
        assert_eq!(a.as_ptr(), original_ptr, "unique buffer mutated in place");

        let b = a.clone();
        assert!(!a.is_unique());
        a.make_mut()[1] = 7;
        assert_eq!(&a[..], &[9, 7, 3], "writer sees its mutation");
        assert_eq!(&b[..], &[9, 2, 3], "other clone keeps the original bytes");
        assert_ne!(a.as_ptr(), b.as_ptr(), "shared buffer was copied on write");
        assert!(a.is_unique() && b.is_unique());
    }

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(13);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_u8(7);
        let frozen = buf.freeze();
        let mut cursor = &frozen[..];
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 42);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 0);
    }
}
