//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as intent
//! markers on wire-facing types; nothing serialises through serde.  This
//! shim re-exports no-op derive macros so those annotations compile without
//! network access to crates.io.

pub use serde_derive::{Deserialize, Serialize};
