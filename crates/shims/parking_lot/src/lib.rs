//! Offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate, implemented over `std::sync` primitives.
//!
//! Provides the subset the workspace uses: [`Mutex`] whose `lock()` returns
//! a guard directly (no poisoning), and [`Condvar`] whose `wait`/`wait_for`
//! take the guard by `&mut` reference.  Poisoned std locks are transparently
//! recovered, matching parking_lot's no-poisoning behaviour.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` can temporarily take the std guard out while
    // waiting (std's wait consumes the guard; parking_lot's borrows it).
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose wait methods borrow the guard mutably.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present outside wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present outside wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((inner, result)) => (inner, result),
            Err(poisoned) => {
                let (inner, result) = poisoned.into_inner();
                (inner, result)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let mutex = Mutex::new(1u32);
        *mutex.lock() += 1;
        assert_eq!(*mutex.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let mutex = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = mutex.lock();
        let result = cvar.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }
}
