//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! Provides the subset the workspace uses: the [`Rng`] and [`SeedableRng`]
//! traits and a deterministic [`rngs::StdRng`].  The generator is a
//! SplitMix64-seeded xoshiro256++, so every simulator run is exactly
//! reproducible from its seed (the property the network simulator relies
//! on); the sequences differ from the real crate's `StdRng`, which no test
//! in this workspace depends on.

/// Types that can be sampled uniformly from an [`Rng`].
pub trait UniformSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u8 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for usize {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits yield a uniform value in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges an [`Rng`] can sample from (`gen_range`).
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// A source of randomness.
pub trait Rng {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire sequence is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors (never yields the all-zero state).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(7u32..=7), 7);
    }
}
