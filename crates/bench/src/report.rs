//! Machine-readable bench reports: `BENCH_<name>.json` at the repo root.
//!
//! The throughput benches print human-readable tables; CI and the
//! dashboards want numbers.  [`BenchReport`] collects repeated samples per
//! measurement and serialises a criterion-style summary — median, min,
//! max, and the raw samples — as one JSON file per bench:
//!
//! ```json
//! {
//!   "bench": "chain_batch",
//!   "measurements": [
//!     { "name": "threaded/batch-32", "unit": "packets/s",
//!       "median": 1234567.0, "min": 1200000.0, "max": 1300000.0,
//!       "samples": [1200000.0, 1234567.0, 1300000.0] }
//!   ]
//! }
//! ```
//!
//! Every report also carries a `meta` object ([`RunMeta`]) — commit, date,
//! host, and kernel/feature flags — so the checked-in files form a
//! *comparable series*: two `BENCH_*.json` files can be diffed knowing
//! which build produced each.  Commit and date come from the
//! `RAPIDWARE_BENCH_COMMIT` / `RAPIDWARE_BENCH_DATE` environment variables
//! (the regeneration command in the README passes them from `git` — the
//! harness never reads ambient clocks itself, keeping runs reproducible).
//!
//! Files land in the workspace root by default (so a single
//! `cargo bench -p rapidware-bench --bench …` invocation leaves
//! `BENCH_chain_batch.json`, `BENCH_runtime_scaling.json`,
//! `BENCH_udp_throughput.json`, and `BENCH_fanout.json` next to
//! `Cargo.toml`); set `RAPIDWARE_BENCH_DIR` to redirect them.  JSON is
//! hand-rolled — the schema is flat and the bench crate stays
//! dependency-free.

use std::io;
use std::path::PathBuf;

/// Provenance for one bench run, embedded as the report's `meta` object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Git commit the run was built from (`RAPIDWARE_BENCH_COMMIT`, or
    /// `"unknown"` when not passed in).
    pub commit: String,
    /// ISO date of the run (`RAPIDWARE_BENCH_DATE`, or `"unknown"`); passed
    /// in by the regeneration command rather than read from a clock.
    pub date: String,
    /// Host description: architecture, OS, and logical CPU count.
    pub host: String,
    /// Feature flags that affect the numbers — currently the dispatched
    /// GF(2⁸) kernel and whether `RAPIDWARE_FORCE_SCALAR` was set.
    pub flags: String,
}

impl RunMeta {
    /// Captures run metadata from the environment.
    pub fn capture() -> Self {
        let env_or_unknown = |key: &str| {
            std::env::var(key)
                .ok()
                .filter(|v| !v.is_empty())
                .unwrap_or_else(|| "unknown".to_string())
        };
        let threads = std::thread::available_parallelism()
            .map(|n| n.get().to_string())
            .unwrap_or_else(|_| "?".to_string());
        let force_scalar = std::env::var("RAPIDWARE_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        Self {
            commit: env_or_unknown("RAPIDWARE_BENCH_COMMIT"),
            date: env_or_unknown("RAPIDWARE_BENCH_DATE"),
            host: format!(
                "{}-{} ({threads} cpus)",
                std::env::consts::ARCH,
                std::env::consts::OS
            ),
            flags: format!(
                "gf256-kernel={} force-scalar={}",
                rapidware::fec::gf256::active_kernel().name(),
                force_scalar
            ),
        }
    }
}

/// One named measurement: repeated samples of the same quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// What was measured (e.g. `threaded/batch-32`).
    pub name: String,
    /// The unit every sample is in (e.g. `packets/s`).
    pub unit: String,
    /// The raw samples, in run order.
    pub samples: Vec<f64>,
}

impl Measurement {
    /// The median sample (criterion's headline statistic): the middle
    /// sample, or the midpoint of the middle pair for even counts.
    pub fn median(&self) -> f64 {
        median(&self.samples)
    }

    /// The smallest sample.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The largest sample.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The median of `samples`.
///
/// # Panics
///
/// Panics on an empty slice — a measurement with no samples is a harness
/// bug, not a value.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of zero samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// A bench run's collected measurements, serialisable as
/// `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    bench: String,
    meta: RunMeta,
    measurements: Vec<Measurement>,
}

impl BenchReport {
    /// An empty report for the bench called `name` (the file stem:
    /// `BENCH_<name>.json`), with run metadata captured from the
    /// environment (see [`RunMeta::capture`]).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            bench: name.into(),
            meta: RunMeta::capture(),
            measurements: Vec::new(),
        }
    }

    /// The run metadata this report will serialise.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// Records one measurement's samples.
    pub fn record(&mut self, name: impl Into<String>, unit: &str, samples: &[f64]) {
        self.measurements.push(Measurement {
            name: name.into(),
            unit: unit.to_string(),
            samples: samples.to_vec(),
        });
    }

    /// The JSON document, pretty-printed with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.bench)));
        out.push_str("  \"meta\": {\n");
        out.push_str(&format!("    \"commit\": {},\n", json_string(&self.meta.commit)));
        out.push_str(&format!("    \"date\": {},\n", json_string(&self.meta.date)));
        out.push_str(&format!("    \"host\": {},\n", json_string(&self.meta.host)));
        out.push_str(&format!("    \"flags\": {}\n", json_string(&self.meta.flags)));
        out.push_str("  },\n");
        out.push_str("  \"measurements\": [\n");
        for (index, m) in self.measurements.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&m.name)));
            out.push_str(&format!("      \"unit\": {},\n", json_string(&m.unit)));
            out.push_str(&format!("      \"median\": {},\n", json_number(m.median())));
            out.push_str(&format!("      \"min\": {},\n", json_number(m.min())));
            out.push_str(&format!("      \"max\": {},\n", json_number(m.max())));
            let samples: Vec<String> = m.samples.iter().map(|&s| json_number(s)).collect();
            out.push_str(&format!("      \"samples\": [{}]\n", samples.join(", ")));
            out.push_str(if index + 1 == self.measurements.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<bench>.json` into `RAPIDWARE_BENCH_DIR` (or the
    /// workspace root) and returns the path.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be written.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = std::env::var_os("RAPIDWARE_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(workspace_root);
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite sample as a JSON number (always with a decimal point,
/// one decimal of precision — throughput numbers do not need more).
fn json_number(value: f64) -> String {
    assert!(value.is_finite(), "bench samples must be finite, got {value}");
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_unsorted_inputs() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.5]), 7.5);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn median_of_nothing_is_a_bug() {
        let _ = median(&[]);
    }

    #[test]
    fn reports_serialise_the_criterion_style_summary() {
        let mut report = BenchReport::new("demo");
        report.record("a/b", "packets/s", &[2.0, 1.0, 3.0]);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.contains("\"median\": 2.0"));
        assert!(json.contains("\"min\": 1.0"));
        assert!(json.contains("\"max\": 3.0"));
        assert!(json.contains("\"samples\": [2.0, 1.0, 3.0]"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn reports_embed_run_metadata() {
        let report = BenchReport::new("demo");
        let json = report.to_json();
        assert!(json.contains("\"meta\": {"));
        assert!(json.contains("\"commit\": "));
        assert!(json.contains("\"date\": "));
        assert!(json.contains(&format!(
            "\"host\": {}",
            json_string(&report.meta().host)
        )));
        assert!(json.contains("gf256-kernel="));
    }

    #[test]
    fn captured_flags_name_a_known_kernel() {
        let meta = RunMeta::capture();
        let kernel = meta
            .flags
            .split_once("gf256-kernel=")
            .map(|(_, rest)| rest.split(' ').next().unwrap_or(""))
            .unwrap_or("");
        assert!(
            matches!(kernel, "avx2" | "ssse3" | "scalar"),
            "unexpected kernel flag in {:?}",
            meta.flags
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
