//! E6 — demand-driven (adaptive) FEC during the office-to-conference-room
//! walk.
//!
//! Section 3's motivating scenario: the user starts near the access point
//! and walks down the hall; loss rises "dramatically over a distance of
//! several meters"; the RAPIDware observer notices and the responder splices
//! an FEC encoder into the running stream.  This experiment compares three
//! policies over the same walk and seed:
//!
//! * `none`      — no FEC at all;
//! * `static`    — FEC(6,4) installed for the whole session;
//! * `adaptive`  — raplets insert/upgrade/remove the encoder on demand.
//!
//! Run with `cargo run --release -p rapidware-bench --bin e6_adaptive_walk`.

use rapidware::netsim::{LinearWalk, SimTime};
use rapidware::scenario::{FecScenario, ScenarioConfig, ScenarioReport};
use rapidware_bench::{pct, rule};

fn walk_config() -> ScenarioConfig {
    ScenarioConfig::figure7()
        .with_packets(9_000)
        .with_receivers(1)
        .with_walk(LinearWalk::new(5.0, 38.0, SimTime::from_secs(60), 1.0))
}

fn row(label: &str, report: &ScenarioReport) {
    let receiver = &report.receivers[0];
    println!(
        "{:<10}  {:>9}  {:>14}  {:>9.1}%  {:>7}  {:>11}",
        label,
        pct(receiver.received_pct()),
        pct(receiver.reconstructed_pct()),
        report.overhead() * 100.0,
        receiver.playout.gaps,
        report.adaptation_log.len()
    );
}

fn main() {
    println!("E6: adaptive FEC over a 3-minute session; walk starts at t=60s (5 m -> 38 m)");
    println!(
        "{:<10}  {:>9}  {:>14}  {:>10}  {:>7}  {:>11}",
        "policy", "raw recv", "reconstructed", "overhead", "gaps", "adaptations"
    );
    rule(72);

    let none = FecScenario::new(walk_config().without_fec()).run();
    row("none", &none);

    let fixed = FecScenario::new(walk_config().with_fec(6, 4)).run();
    row("static", &fixed);

    let mut adaptive_config = walk_config();
    adaptive_config.fec = None;
    adaptive_config.adaptive = true;
    let adaptive = FecScenario::new(adaptive_config).run();
    row("adaptive", &adaptive);
    rule(72);

    println!("\nadaptation log (adaptive policy):");
    for record in &adaptive.adaptation_log {
        println!("  {record}");
    }
    println!(
        "\nfinal sender chain (adaptive policy): {:?}",
        adaptive.final_sender_filters
    );
    println!("\nexpected shape: 'none' degrades sharply once the walk starts; 'static' keeps");
    println!("quality but pays ~50% parity overhead for the whole session; 'adaptive'");
    println!("approaches the static policy's quality while paying the overhead only after");
    println!("loss actually rises.");
}
