//! E3 — the (n, k) design space: recovery versus redundancy overhead.
//!
//! The paper uses "small groups so as to minimize jitter" and fixes (6, 4)
//! for Figure 7.  This experiment sweeps the block-code parameters at
//! several loss rates to show the trade-off the authors navigated: stronger
//! codes recover more but cost more wireless bandwidth, and larger k delays
//! parity emission (jitter).
//!
//! Run with `cargo run --release -p rapidware-bench --bin e3_fec_sweep`.

use rapidware::scenario::{FecScenario, ScenarioConfig};
use rapidware_bench::{pct, rule};

fn main() {
    const PACKETS: u64 = 4_000;
    let codes: [(usize, usize); 6] = [(5, 4), (6, 4), (8, 4), (8, 6), (10, 8), (12, 8)];
    let loss_rates = [0.015, 0.05, 0.10, 0.20];

    println!("E3: (n,k) sweep — reconstructed % (and bandwidth overhead) per loss rate");
    print!("{:>8}", "(n,k)");
    for loss in loss_rates {
        print!("  {:>16}", format!("loss {:.1}%", loss * 100.0));
    }
    println!("  {:>10}", "overhead");
    rule(8 + loss_rates.len() * 18 + 12);

    for (n, k) in codes {
        print!("{:>8}", format!("({n},{k})"));
        let mut overhead = 0.0;
        for loss in loss_rates {
            let report = FecScenario::new(
                ScenarioConfig::figure7()
                    .with_packets(PACKETS)
                    .with_receivers(1)
                    .with_loss_rate(loss)
                    .with_fec(n, k),
            )
            .run();
            overhead = report.overhead();
            print!("  {:>16}", pct(report.receivers[0].reconstructed_pct()));
        }
        println!("  {:>9.1}%", overhead * 100.0);
    }
    rule(8 + loss_rates.len() * 18 + 12);

    // Baseline row: no FEC at all.
    print!("{:>8}", "none");
    for loss in loss_rates {
        let report = FecScenario::new(
            ScenarioConfig::figure7()
                .without_fec()
                .with_packets(PACKETS)
                .with_receivers(1)
                .with_loss_rate(loss),
        )
        .run();
        print!("  {:>16}", pct(report.receivers[0].reconstructed_pct()));
    }
    println!("  {:>9.1}%", 0.0);
    println!(
        "\nexpected shape: every code beats 'none'; higher (n-k)/k recovers more at high\n\
         loss but costs proportionally more bandwidth; (6,4) is enough at the paper's\n\
         ~1.5% operating point."
    );
}
