//! Scenario-matrix runner: executes every built-in closed-loop scenario —
//! the flat matrix and the fanout family — at two fixed seeds and fails
//! (exit code 1) on any panic, non-convergence, undelivered data, spurious
//! per-lane adaptation, or trace diff between repeated runs.
//!
//! This is the tooling face of the `tests/scenario_matrix.rs` harness: the
//! per-run pass/fail criteria are the shared
//! `ScenarioOutcome::health_problems`, and the seeds are the shared
//! `MATRIX_SEEDS`, so this report and the test assertions cannot drift
//! apart.  Run it for a human-readable health check:
//!
//! ```text
//! cargo run -p rapidware-bench --bin scenario_matrix
//! ```

use rapidware::engine::{FanoutEngine, FanoutSpec, ScenarioEngine, ScenarioSpec, MATRIX_SEEDS};

/// The shared pass/fail protocol of both scenario families: print the
/// report, then either `OK` or every violated property, bumping the
/// failure count.  `trace_identical` is the caller's byte-comparison of
/// two runs of the same spec and seed.
fn report_outcome(
    report: String,
    mut problems: Vec<String>,
    trace_identical: bool,
    failures: &mut u32,
) {
    if !trace_identical {
        problems.push("trace diff between identical runs".to_string());
    }
    print!("{}", report);
    if !report.ends_with('\n') {
        println!();
    }
    if problems.is_empty() {
        println!("  OK");
    } else {
        *failures += 1;
        for problem in &problems {
            println!("  FAIL: {problem}");
        }
    }
}

fn main() {
    let mut failures = 0u32;
    for seed in MATRIX_SEEDS {
        println!("== seed {seed} ==");
        for spec in ScenarioSpec::builtin_matrix() {
            let spec = spec.with_seed(seed);
            let engine = ScenarioEngine::new(spec.clone());
            let outcome = engine.run_sync();
            let rerun = engine.run_sync();
            report_outcome(
                outcome.report.to_string(),
                outcome.health_problems(&spec),
                outcome.trace.canonical_text() == rerun.trace.canonical_text(),
                &mut failures,
            );
        }
        for spec in FanoutSpec::fanout_matrix() {
            let spec = spec.with_seed(seed);
            let engine = FanoutEngine::new(spec.clone());
            let outcome = engine.run_sync();
            let rerun = engine.run_sync();
            report_outcome(
                outcome.report.to_string(),
                outcome.health_problems(&spec),
                outcome.trace.canonical_text() == rerun.trace.canonical_text(),
                &mut failures,
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} scenario(s) failed");
        std::process::exit(1);
    }
    println!("scenario matrix clean");
}
