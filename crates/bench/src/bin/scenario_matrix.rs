//! Scenario-matrix runner: executes every built-in closed-loop scenario at
//! two fixed seeds and fails (exit code 1) on any panic, non-convergence,
//! undelivered data, or trace diff between repeated runs.
//!
//! This is the tooling face of the `tests/scenario_matrix.rs` harness: the
//! per-run pass/fail criteria are the shared
//! `ScenarioOutcome::health_problems`, and the seeds are the shared
//! `MATRIX_SEEDS`, so this report and the test assertions cannot drift
//! apart.  Run it for a human-readable health check:
//!
//! ```text
//! cargo run -p rapidware-bench --bin scenario_matrix
//! ```

use rapidware::engine::{ScenarioEngine, ScenarioSpec, MATRIX_SEEDS};

fn main() {
    let mut failures = 0u32;
    for seed in MATRIX_SEEDS {
        println!("== seed {seed} ==");
        for spec in ScenarioSpec::builtin_matrix() {
            let spec = spec.with_seed(seed);
            let engine = ScenarioEngine::new(spec.clone());
            let outcome = engine.run_sync();
            let rerun = engine.run_sync();

            let mut problems = outcome.health_problems(&spec);
            if outcome.trace.canonical_text() != rerun.trace.canonical_text() {
                problems.push("trace diff between identical runs".to_string());
            }

            println!("{}", outcome.report);
            if problems.is_empty() {
                println!("  OK");
            } else {
                failures += 1;
                for problem in &problems {
                    println!("  FAIL: {problem}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} scenario(s) failed");
        std::process::exit(1);
    }
    println!("scenario matrix clean");
}
