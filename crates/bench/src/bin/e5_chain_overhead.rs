//! E5 — per-filter composition overhead ("null proxy" chains).
//!
//! The paper's architecture pays one thread plus one detachable pipe per
//! filter.  This experiment measures stream throughput as a function of
//! chain depth for do-nothing (null) filters, on both runtimes: the
//! synchronous chain (pure composition cost) and the thread-per-filter
//! runtime (adds pipe hand-off and context switching, as in the paper).
//!
//! Run with `cargo run --release -p rapidware-bench --bin e5_chain_overhead`.

use std::time::Instant;

use rapidware::filters::{FilterChain, NullFilter};
use rapidware::media::AudioSource;
use rapidware::packet::StreamId;
use rapidware::proxy::ThreadedChain;
use rapidware_bench::rule;

const PACKETS: u64 = 50_000;

fn sync_throughput(depth: usize) -> f64 {
    let mut chain = FilterChain::new();
    for _ in 0..depth {
        chain.push_back(Box::new(NullFilter::new())).expect("push");
    }
    let mut source = AudioSource::pcm_default(StreamId::new(1));
    let start = Instant::now();
    let mut delivered = 0u64;
    for _ in 0..PACKETS {
        delivered += chain.process(source.next_packet()).expect("process").len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(delivered, PACKETS);
    PACKETS as f64 / elapsed
}

fn threaded_throughput(depth: usize) -> f64 {
    let chain = ThreadedChain::with_capacity(256).expect("chain");
    for _ in 0..depth {
        chain.push_back(Box::new(NullFilter::new())).expect("push");
    }
    let input = chain.input();
    let output = chain.output();
    let consumer = std::thread::spawn(move || {
        let mut count = 0u64;
        while output.recv().is_ok() {
            count += 1;
        }
        count
    });
    let mut source = AudioSource::pcm_default(StreamId::new(1));
    let start = Instant::now();
    for _ in 0..PACKETS {
        input.send(source.next_packet()).expect("send");
    }
    chain.close_input();
    let delivered = consumer.join().expect("consumer");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(delivered, PACKETS);
    chain.shutdown().expect("shutdown");
    PACKETS as f64 / elapsed
}

fn main() {
    println!("E5: null-filter chain overhead ({PACKETS} packets of 320-byte audio per point)");
    println!(
        "{:>6}  {:>22}  {:>22}  {:>8}",
        "depth", "sync (packets/s)", "threaded (packets/s)", "ratio"
    );
    rule(66);
    let mut base_sync = None;
    for depth in [0usize, 1, 2, 4, 6, 8] {
        let sync = sync_throughput(depth);
        let threaded = threaded_throughput(depth);
        base_sync.get_or_insert(sync);
        println!(
            "{:>6}  {:>22.0}  {:>22.0}  {:>8.2}",
            depth,
            sync,
            threaded,
            sync / threaded
        );
    }
    rule(66);
    println!("expected shape: throughput decreases roughly linearly with chain depth; the");
    println!("threaded runtime pays an extra constant factor per stage for pipe hand-off");
    println!("and context switches, which is the price of the paper's thread-per-filter");
    println!("architecture (and of being able to splice stages independently).");
}
