//! E2 — packet loss versus distance from the access point.
//!
//! Section 3 of the paper motivates demand-driven FEC with the observation
//! (from the authors' companion measurement study \[16\]) that "packet loss
//! rate can change dramatically over a distance of several meters on
//! wireless LANs".  This experiment sweeps the receiver's distance and
//! reports the raw receipt rate and the post-FEC reconstruction rate, with
//! and without the FEC(6,4) filter installed.
//!
//! Run with `cargo run --release -p rapidware-bench --bin e2_loss_vs_distance`.

use rapidware::scenario::{FecScenario, ScenarioConfig};
use rapidware_bench::{pct, rule};

fn main() {
    const PACKETS: u64 = 4_000;
    println!("E2: loss vs distance ({PACKETS} packets per point, FEC(6,4) vs no FEC)");
    println!(
        "{:>9}  {:>9}  {:>13}  {:>13}  {:>9}",
        "distance", "raw recv", "recon (6,4)", "recon (none)", "overhead"
    );
    rule(62);
    for distance in [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0] {
        let with_fec = FecScenario::new(
            ScenarioConfig::figure7()
                .with_packets(PACKETS)
                .with_receivers(1)
                .with_distance(distance),
        )
        .run();
        let without_fec = FecScenario::new(
            ScenarioConfig::figure7()
                .without_fec()
                .with_packets(PACKETS)
                .with_receivers(1)
                .with_distance(distance),
        )
        .run();
        println!(
            "{:>7} m  {:>9}  {:>13}  {:>13}  {:>8.1}%",
            distance,
            pct(with_fec.receivers[0].received_pct()),
            pct(with_fec.receivers[0].reconstructed_pct()),
            pct(without_fec.receivers[0].reconstructed_pct()),
            with_fec.overhead() * 100.0
        );
    }
    rule(62);
    println!("expected shape: raw receipt collapses past ~35 m while FEC(6,4) holds the");
    println!("reconstructed rate near 100% until the loss rate approaches the code's");
    println!("correction capacity (2 losses per 6-packet block).");
}
