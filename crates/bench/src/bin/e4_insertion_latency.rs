//! E4 — cost of dynamic filter insertion and removal on a running stream.
//!
//! The paper's central mechanism is the pause → reconnect splice.  This
//! experiment measures, on the thread-per-filter runtime, how long an
//! insertion and a removal take while a live audio stream flows through the
//! chain, and verifies that no packet is lost or reordered by any splice.
//!
//! Run with `cargo run --release -p rapidware-bench --bin e4_insertion_latency`.

use std::time::{Duration, Instant};

use rapidware::filters::NullFilter;
use rapidware::media::AudioSource;
use rapidware::packet::StreamId;
use rapidware::proxy::ThreadedChain;
use rapidware_bench::rule;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let index = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

fn main() {
    const PACKETS: u64 = 40_000;
    const SPLICES: usize = 200;

    let chain = ThreadedChain::with_capacity(64).expect("chain");
    let input = chain.input();
    let output = chain.output();

    let producer = std::thread::spawn(move || {
        let mut source = AudioSource::pcm_default(StreamId::new(1));
        for _ in 0..PACKETS {
            if input.send(source.next_packet()).is_err() {
                break;
            }
        }
    });
    let consumer = std::thread::spawn(move || {
        let mut seqs = Vec::with_capacity(PACKETS as usize);
        while let Ok(packet) = output.recv() {
            seqs.push(packet.seq().value());
        }
        seqs
    });

    let mut insert_times = Vec::with_capacity(SPLICES);
    let mut remove_times = Vec::with_capacity(SPLICES);
    for round in 0..SPLICES {
        let position = round % (chain.len() + 1);
        let start = Instant::now();
        chain
            .insert(position, Box::new(NullFilter::new()))
            .expect("insert into running chain");
        insert_times.push(start.elapsed());

        let start = Instant::now();
        chain.remove(position).expect("remove from running chain");
        remove_times.push(start.elapsed());
    }

    producer.join().expect("producer");
    chain.close_input();
    let seqs = consumer.join().expect("consumer");

    println!("E4: live splice latency over a {PACKETS}-packet audio stream ({SPLICES} splices)");
    rule(66);
    for (label, mut times) in [("insert", insert_times), ("remove", remove_times)] {
        times.sort_unstable();
        let total: Duration = times.iter().sum();
        println!(
            "{label:>7}: median {:>9.1?}   p90 {:>9.1?}   p99 {:>9.1?}   mean {:>9.1?}",
            percentile(&times, 0.50),
            percentile(&times, 0.90),
            percentile(&times, 0.99),
            total / times.len() as u32,
        );
    }
    rule(66);
    let in_order = seqs.iter().enumerate().all(|(i, s)| *s == i as u64);
    println!(
        "stream integrity: {} of {} packets delivered, in order: {}",
        seqs.len(),
        PACKETS,
        in_order
    );
    println!("chain stats: {:?}", chain.stats());
    assert_eq!(seqs.len() as u64, PACKETS, "no packet may be lost by a splice");
    assert!(in_order, "no packet may be reordered by a splice");
    chain.shutdown().expect("shutdown");
    println!("expected shape: splices complete in microseconds-to-milliseconds (dominated by");
    println!("draining in-flight packets), and integrity always holds.");
}
