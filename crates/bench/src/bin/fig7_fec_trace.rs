//! Figure 7 — "Trace data for FEC(6,4) audio FEC".
//!
//! Reproduces the paper's only quantitative results figure: an 8 kHz stereo
//! 8-bit PCM audio stream is multicast through a proxy running an FEC(6,4)
//! encoder filter to three wireless laptops 25 m from the access point on a
//! 2 Mbps WaveLAN; for every window of 432 packets we report the percentage
//! of packets received over the air and the percentage available after FEC
//! reconstruction.
//!
//! Paper reference numbers (Figure 7): average raw receipt 98.54 %, average
//! reconstructed 99.98 %.
//!
//! Run with `cargo run --release -p rapidware-bench --bin fig7_fec_trace`.

use rapidware::scenario::{FecScenario, ScenarioConfig};
use rapidware_bench::{pct, rule};

fn main() {
    let config = ScenarioConfig::figure7();
    println!(
        "Figure 7 reproduction: {} packets, FEC(6,4), {} receivers at {} m, seed {}",
        config.packets, config.receivers, config.distance_m, config.seed
    );
    let report = FecScenario::new(config).run();

    // The paper plots the receiver at 25 m; print the first receiver's
    // per-window trace (the others behave statistically identically).
    let receiver = &report.receivers[0];
    println!("\nPer-window trace ({}):", receiver.name);
    println!("{:>10}  {:>10}  {:>14}", "sequence#", "received", "reconstructed");
    rule(40);
    for window in receiver.stats.windows() {
        println!(
            "{:>10}  {:>10}  {:>14}",
            window.start_seq,
            pct(window.received_pct()),
            pct(window.reconstructed_pct())
        );
    }

    rule(72);
    println!("{:<24}  {:>10}  {:>14}", "receiver", "received", "reconstructed");
    rule(72);
    for receiver in &report.receivers {
        println!(
            "{:<24}  {:>10}  {:>14}",
            receiver.name,
            pct(receiver.received_pct()),
            pct(receiver.reconstructed_pct())
        );
    }
    rule(72);
    println!(
        "{:<24}  {:>10}  {:>14}   <- this run",
        "average",
        pct(report.average_received_pct()),
        pct(report.average_reconstructed_pct())
    );
    println!(
        "{:<24}  {:>10}  {:>14}   <- paper (Figure 7)",
        "paper reports",
        pct(98.54),
        pct(99.98)
    );
    println!(
        "\nFEC bandwidth overhead: {:.1}% ({} parity packets for {} source packets)",
        report.overhead() * 100.0,
        report.parity_packets_sent,
        report.source_packets_sent
    );
}
