//! Batched data plane throughput: `process_batch` vs the per-packet path.
//!
//! Two comparisons, both on an FEC(6,4) encode → decode chain fed with the
//! paper's 320-byte audio packets:
//!
//! * `sync` — the synchronous `FilterChain`, per-packet `process` vs
//!   `process_batch` at batch size 32;
//! * `threaded` — the thread-per-filter `ThreadedChain`, per-packet workers
//!   (batch size 1) vs batched workers draining up to 32 packets per pipe
//!   lock.
//!
//! Prints packets/second for each path and the batched/per-packet speedup,
//! and writes the criterion-style summary (median/min/max per path) to
//! `BENCH_chain_batch.json` at the workspace root.
//! Run with `cargo bench -p rapidware-bench --bench chain_batch_throughput`.

use std::time::Instant;

use rapidware::filters::{DecryptFilter, EncryptFilter, FecDecoderFilter, FecEncoderFilter, FilterChain};
use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::ThreadedChain;
use rapidware_bench::report::{median, BenchReport};

const PACKETS: usize = 8_192;
const BATCH: usize = 32;
const PAYLOAD: usize = 320;
const REPETITIONS: usize = 5;

fn audio_packets() -> Vec<Packet> {
    (0..PACKETS as u64)
        .map(|seq| {
            Packet::with_timestamp(
                StreamId::new(1),
                SeqNo::new(seq),
                PacketKind::AudioData,
                seq * 20_000,
                vec![(seq % 251) as u8; PAYLOAD],
            )
        })
        .collect()
}

fn fec_chain() -> FilterChain {
    let mut chain = FilterChain::new();
    chain
        .push_back(Box::new(FecEncoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("push encoder");
    chain
        .push_back(Box::new(FecDecoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("push decoder");
    chain
}

/// The same FEC round-trip with the AEAD secure-channel pair in the
/// middle, the way the scenario engine places it: sources *and* parity are
/// sealed by `encrypt` and verified-then-stripped by `decrypt` before the
/// decoder sees them.
fn encrypted_chain() -> FilterChain {
    let mut chain = FilterChain::new();
    chain
        .push_back(Box::new(FecEncoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("push encoder");
    chain.push_back(Box::new(EncryptFilter::new(0x5EED))).expect("push encrypt");
    chain.push_back(Box::new(DecryptFilter::new(0x5EED))).expect("push decrypt");
    chain
        .push_back(Box::new(FecDecoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("push decoder");
    chain
}

/// Runs `measure` `REPETITIONS` times and returns every packets/second
/// sample (the JSON report keeps them all; the printed table uses the
/// best, the report's headline statistic is the median).
fn pps_samples(measure: impl Fn() -> f64) -> Vec<f64> {
    (0..REPETITIONS).map(|_| measure()).collect()
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(0.0, f64::max)
}

fn sync_per_packet(packets: &[Packet]) -> f64 {
    let mut chain = fec_chain();
    let start = Instant::now();
    let mut delivered = 0usize;
    for packet in packets {
        delivered += chain.process(packet.clone()).expect("process").len();
    }
    assert_eq!(delivered, packets.len(), "lossless chain round-trip");
    packets.len() as f64 / start.elapsed().as_secs_f64()
}

fn sync_batched(packets: &[Packet]) -> f64 {
    sync_batched_on(fec_chain(), packets)
}

fn sync_batched_on(mut chain: FilterChain, packets: &[Packet]) -> f64 {
    let start = Instant::now();
    let mut delivered = 0usize;
    for chunk in packets.chunks(BATCH) {
        delivered += chain.process_batch(chunk.to_vec()).expect("process_batch").len();
    }
    assert_eq!(delivered, packets.len(), "lossless chain round-trip");
    packets.len() as f64 / start.elapsed().as_secs_f64()
}

/// Drives the thread-per-filter chain end to end.
///
/// `batched == false` is the per-packet path everywhere: per-packet sends
/// into the chain, per-packet worker loops, per-packet receives at the
/// output.  `batched == true` is the batched data plane: the producer sends
/// 32-packet batches, every stage drains and emits batches, and the
/// consumer drains batches.
fn threaded(packets: &[Packet], batched: bool) -> f64 {
    let batch_size = if batched { BATCH } else { 1 };
    let chain = ThreadedChain::with_batch_size(128, batch_size).expect("chain");
    chain
        .push_back(Box::new(FecEncoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("push encoder");
    chain
        .push_back(Box::new(FecDecoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("push decoder");
    let input = chain.input();
    let output = chain.output();
    let expected = packets.len();
    let to_send = packets.to_vec();

    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        if batched {
            let mut to_send = to_send;
            while !to_send.is_empty() {
                let rest = to_send.split_off(to_send.len().min(BATCH));
                input.send_batch(to_send).expect("chain accepts packets");
                to_send = rest;
            }
        } else {
            for packet in to_send {
                input.send(packet).expect("chain accepts packets");
            }
        }
    });
    let mut delivered = 0usize;
    while delivered < expected {
        if batched {
            delivered += output.recv_up_to(BATCH).expect("stream open").len();
        } else {
            output.recv().expect("stream open");
            delivered += 1;
        }
    }
    let elapsed = start.elapsed();
    producer.join().expect("producer");
    chain.close_input();
    chain.shutdown().expect("shutdown");
    expected as f64 / elapsed.as_secs_f64()
}

fn main() {
    let packets = audio_packets();
    println!(
        "chain_batch_throughput: FEC(6,4) encode → decode, {PACKETS} packets × {PAYLOAD} B, batch {BATCH}"
    );

    // The paper's architecture: thread-per-filter with pipes between the
    // stages.  This is where batching pays — pipe locking, cross-thread
    // wake-ups, and per-packet dispatch are amortised over each batch.
    let threaded_serial_samples = pps_samples(|| threaded(&packets, false));
    let threaded_batch_samples = pps_samples(|| threaded(&packets, true));
    let threaded_serial = best(&threaded_serial_samples);
    let threaded_batch = best(&threaded_batch_samples);
    let speedup = threaded_batch / threaded_serial;
    println!("threaded/per-packet:  {threaded_serial:>12.0} packets/s");
    println!("threaded/batch-{BATCH}:    {threaded_batch:>12.0} packets/s");
    println!(
        "threaded speedup:     {speedup:.2}x ({})",
        if speedup >= 1.5 {
            "meets the >= 1.5x target"
        } else {
            "below the 1.5x target on this machine"
        }
    );

    // Supplementary: the synchronous chain in isolation.  Here the FEC
    // arithmetic dominates and batching only amortises dispatch and
    // intermediate-buffer allocation, so the gap is small by design.
    let sync_serial_samples = pps_samples(|| sync_per_packet(&packets));
    let sync_batch_samples = pps_samples(|| sync_batched(&packets));
    let sync_serial = best(&sync_serial_samples);
    let sync_batch = best(&sync_batch_samples);
    println!("sync/per-packet:      {sync_serial:>12.0} packets/s");
    println!("sync/batch-{BATCH}:        {sync_batch:>12.0} packets/s");
    println!("sync speedup:         {:.2}x", sync_batch / sync_serial);

    // Encrypted vs plaintext: the same batched FEC round-trip with the
    // AEAD pair sealing every frame (sources and parity).  The asserted
    // floor keeps the in-crate ChaCha20-Poly1305 honest.  The floor is
    // 0.2x, not 0.5x: since the GF(2⁸) kernels went SIMD the plaintext
    // chain runs several times faster, so the scalar AEAD now dominates
    // the encrypted chain — the ratio tracks that split, and anything
    // below 0.2x would mean sealing itself regressed.
    let encrypted_samples = pps_samples(|| sync_batched_on(encrypted_chain(), &packets));
    let encrypted = best(&encrypted_samples);
    let ratio = median(&encrypted_samples) / median(&sync_batch_samples);
    println!("sync/batch-{BATCH} aead:   {encrypted:>12.0} packets/s");
    println!(
        "encrypted/plaintext:  {ratio:.2}x ({})",
        if ratio >= 0.2 {
            "meets the >= 0.2x floor"
        } else {
            "below the 0.2x floor"
        }
    );
    assert!(
        ratio >= 0.2,
        "encrypted batch-{BATCH} throughput fell below a fifth of plaintext ({ratio:.2}x)"
    );

    let mut report = BenchReport::new("chain_batch");
    report.record("threaded/per-packet", "packets/s", &threaded_serial_samples);
    report.record(format!("threaded/batch-{BATCH}"), "packets/s", &threaded_batch_samples);
    report.record("sync/per-packet", "packets/s", &sync_serial_samples);
    report.record(format!("sync/batch-{BATCH}"), "packets/s", &sync_batch_samples);
    report.record(format!("sync/batch-{BATCH}-encrypted"), "packets/s", &encrypted_samples);
    report.record("sync/encrypted-ratio", "x", &[ratio]);
    report.record(
        "threaded/speedup",
        "x",
        &[median(&threaded_batch_samples) / median(&threaded_serial_samples)],
    );
    let path = report.write().expect("writing the bench report");
    println!("report: {}", path.display());
}
