//! Telemetry overhead: the instrumented chain vs the bare chain.
//!
//! The unified telemetry subsystem promises to be cheap enough to leave on:
//! per-batch span recording, per-packet end-to-end histograms, and 1-in-64
//! sampled per-filter stage timings must cost less than **5%** of batch-32
//! chain throughput.  This bench measures that budget directly: the same
//! FEC(6,4) encode → decode chain, batch 32, once bare and once carrying
//! egress [`ChainSpans`], interleaved A/B so scheduler drift hits both
//! sides equally.  The run **asserts** the median delta stays under 5%.
//!
//! Prints packets/second for both sides and the measured overhead, and
//! writes the criterion-style summary to `BENCH_telemetry_overhead.json`
//! at the workspace root.
//! Run with `cargo bench -p rapidware-bench --bench telemetry_overhead`.

use std::time::Instant;

use rapidware::filters::{ChainSpans, FecDecoderFilter, FecEncoderFilter, FilterChain};
use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::Registry;
use rapidware_bench::report::{median, BenchReport};

const PACKETS: usize = 8_192;
const BATCH: usize = 32;
const PAYLOAD: usize = 320;
const REPETITIONS: usize = 9;
const OVERHEAD_BUDGET: f64 = 0.05;

fn audio_packets() -> Vec<Packet> {
    (0..PACKETS as u64)
        .map(|seq| {
            Packet::with_timestamp(
                StreamId::new(1),
                SeqNo::new(seq),
                PacketKind::AudioData,
                seq * 20_000,
                vec![(seq % 251) as u8; PAYLOAD],
            )
        })
        .collect()
}

fn fec_chain() -> FilterChain {
    let mut chain = FilterChain::new();
    chain
        .push_back(Box::new(FecEncoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("push encoder");
    chain
        .push_back(Box::new(FecDecoderFilter::fec_6_4().expect("valid (n, k)")))
        .expect("push decoder");
    chain
}

fn run_chain(mut chain: FilterChain, packets: &[Packet]) -> f64 {
    let start = Instant::now();
    let mut delivered = 0usize;
    for chunk in packets.chunks(BATCH) {
        delivered += chain.process_batch(chunk.to_vec()).expect("process_batch").len();
    }
    assert_eq!(delivered, packets.len(), "lossless chain round-trip");
    packets.len() as f64 / start.elapsed().as_secs_f64()
}

fn bare(packets: &[Packet]) -> f64 {
    run_chain(fec_chain(), packets)
}

/// The instrumented side: a fresh registry per run, egress spans on the
/// chain (ingress stamping, batch + e2e histograms, sampled stage
/// timings).  Verifies the telemetry actually recorded before returning
/// the throughput — a disabled-by-accident run would make the comparison
/// meaningless.
fn instrumented(packets: &[Packet]) -> f64 {
    let registry = Registry::new();
    let mut chain = fec_chain();
    chain.set_spans(ChainSpans::egress(&registry, "bench.chain"));
    let pps = run_chain(chain, packets);
    let snapshot = registry.snapshot();
    let e2e = snapshot.histogram("bench.chain.e2e_ns").expect("spans registered");
    assert_eq!(e2e.count(), packets.len() as u64, "every packet timed end-to-end");
    assert!(
        snapshot.merged_histogram("bench.chain.filter.").count() > 0,
        "stage sampling fired"
    );
    pps
}

fn main() {
    let packets = audio_packets();
    println!(
        "telemetry_overhead: FEC(6,4) encode → decode, {PACKETS} packets × {PAYLOAD} B, batch {BATCH}"
    );

    // Warm-up (page in both paths, settle the allocator), then interleave
    // A/B so frequency scaling and scheduler drift hit both sides equally.
    let _ = bare(&packets);
    let _ = instrumented(&packets);
    let mut bare_samples = Vec::with_capacity(REPETITIONS);
    let mut instrumented_samples = Vec::with_capacity(REPETITIONS);
    for _ in 0..REPETITIONS {
        bare_samples.push(bare(&packets));
        instrumented_samples.push(instrumented(&packets));
    }

    let bare_median = median(&bare_samples);
    let instrumented_median = median(&instrumented_samples);
    let overhead = 1.0 - instrumented_median / bare_median;
    println!("sync/batch-{BATCH} bare:       {bare_median:>12.0} packets/s (median of {REPETITIONS})");
    println!("sync/batch-{BATCH} telemetry:  {instrumented_median:>12.0} packets/s (median of {REPETITIONS})");
    println!(
        "telemetry overhead:       {:.2}% ({})",
        overhead * 100.0,
        if overhead < OVERHEAD_BUDGET {
            "within the < 5% budget"
        } else {
            "OVER the 5% budget"
        }
    );

    let mut report = BenchReport::new("telemetry_overhead");
    report.record(format!("sync/batch-{BATCH}-bare"), "packets/s", &bare_samples);
    report.record(
        format!("sync/batch-{BATCH}-telemetry"),
        "packets/s",
        &instrumented_samples,
    );
    report.record("telemetry/overhead", "fraction", &[overhead]);
    let path = report.write().expect("writing the bench report");
    println!("report: {}", path.display());

    assert!(
        overhead < OVERHEAD_BUDGET,
        "telemetry overhead {:.2}% exceeds the {}% budget \
         (bare {bare_median:.0} pps vs instrumented {instrumented_median:.0} pps)",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
}
