//! Figure 7 / E2 (bench form) — end-to-end scenario runs.
//!
//! Measures how long the full pipeline (audio source → FEC encoder →
//! simulated WaveLAN → FEC decoder → sink) takes for a one-minute audio
//! stream, at the paper's 25 m operating point and at a harsher 40 m point,
//! with and without FEC.  This is the macro-benchmark counterpart of the
//! `fig7_fec_trace` and `e2_loss_vs_distance` experiment binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapidware::scenario::{FecScenario, ScenarioConfig};

const PACKETS: u64 = 3_000; // one minute of 50 packet/s audio

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_scenario");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PACKETS));
    let cases = [
        ("fec6_4_at_25m", ScenarioConfig::figure7().with_packets(PACKETS).with_receivers(1)),
        (
            "no_fec_at_25m",
            ScenarioConfig::figure7()
                .without_fec()
                .with_packets(PACKETS)
                .with_receivers(1),
        ),
        (
            "fec6_4_at_40m",
            ScenarioConfig::figure7()
                .with_packets(PACKETS)
                .with_receivers(1)
                .with_distance(40.0),
        ),
        (
            "fec6_4_three_receivers",
            ScenarioConfig::figure7().with_packets(PACKETS).with_receivers(3),
        ),
    ];
    for (name, config) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                let report = FecScenario::new(config.clone()).run();
                assert!(!report.receivers.is_empty());
                report.average_reconstructed_pct()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
