//! Session density: the sharded runtime vs thread-per-filter, hosting the
//! same 256 fanout sessions.
//!
//! The claim under test: a pooled session costs **zero** dedicated OS
//! threads — the head chain, the fanout stage, and every lane run as
//! cooperative tasks on a fixed pool — so a machine hosts hundreds of
//! concurrent sessions on `WORKERS` threads, where the thread-per-filter
//! runtime needs several threads *per session* (head stage workers, the
//! fanout worker, lane stage workers).
//!
//! Both modes host `SESSIONS` live sessions (one filtered head stage, one
//! receiver lane each), push a burst of packets through every session, and
//! verify delivery.  Density is `sessions / threads used to host them`,
//! with the thread counts read from `/proc/self/status` (falling back to
//! the analytic per-runtime thread accounting off Linux).  The bench
//! asserts the pooled runtime reaches at least **4x** the thread-per-filter
//! session density at 256 sessions on 8 workers.
//!
//! Each mode runs `REPETITIONS` times (sessions are single-use: `drive`
//! closes every input, so a repetition rebuilds them from scratch); the
//! median packets/second and the measured thread counts go to
//! `BENCH_runtime_scaling.json` at the workspace root.
//!
//! Run with `cargo bench -p rapidware-bench --bench runtime_scaling`.

use std::time::Instant;

use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::{FilterSpec, Session};
use rapidware::runtime::{Runtime, RuntimeConfig};
use rapidware_bench::report::{median, BenchReport};

const SESSIONS: usize = 256;
const WORKERS: usize = 8;
const PACKETS_PER_SESSION: u64 = 100;
const PIPE_CAPACITY: usize = 256; // a whole burst fits: drains can be sequential
const BATCH_SIZE: usize = 16;
const REPETITIONS: usize = 3;

fn packet(seq: u64) -> Packet {
    Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![(seq % 251) as u8; 64])
}

/// Threads of the current process per `/proc/self/status`; `None` off
/// Linux.
fn current_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// Thread cost of hosting the sessions, measured around `setup`; falls
/// back to `analytic` when `/proc` is unavailable.
fn hosting_threads<T>(analytic: usize, setup: impl FnOnce() -> T) -> (usize, T) {
    let before = current_threads();
    let hosted = setup();
    let threads = match (before, current_threads()) {
        (Some(before), Some(after)) if after > before => after - before,
        _ => analytic,
    };
    (threads, hosted)
}

/// Pushes one burst through every session and drains every lane,
/// returning source packets/second.  `inputs_and_lanes` supplies, per
/// session, the input endpoint and the lane endpoint.
fn drive(
    inputs: &[rapidware::streams::DetachableSender<Packet>],
    lanes: &[rapidware::streams::DetachableReceiver<Packet>],
) -> f64 {
    let start = Instant::now();
    for input in inputs {
        for seq in 0..PACKETS_PER_SESSION {
            input.send(packet(seq)).expect("session inputs stay open");
        }
        input.close();
    }
    let mut delivered = 0usize;
    for lane in lanes {
        while let Ok(p) = lane.recv() {
            assert!(p.kind().is_payload());
            delivered += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        delivered,
        SESSIONS * PACKETS_PER_SESSION as usize,
        "every lane must deliver its session's whole burst"
    );
    (SESSIONS as u64 * PACKETS_PER_SESSION) as f64 / elapsed
}

/// One full thread-per-filter run: build the sessions, push the burst,
/// tear everything down.  Returns (threads used to host, packets/second).
fn threaded_run() -> (usize, f64) {
    // Each session spawns a head stage worker and a fanout worker
    // (2 threads/session at this shape).
    let (threaded_threads, sessions) = hosting_threads(SESSIONS * 2, || {
        let sessions: Vec<(Session, _, _)> = (0..SESSIONS)
            .map(|i| {
                let session = Session::with_config(
                    format!("threaded-{i}"),
                    rapidware::proxy::FilterRegistry::with_builtins(),
                    PIPE_CAPACITY,
                    BATCH_SIZE,
                )
                .expect("sessions are constructible");
                session
                    .insert_head_filter(0, &FilterSpec::new("null"))
                    .expect("null is a registered kind");
                let lane = session.add_lane("lane").expect("fresh session");
                let input = session.input();
                (session, input, lane)
            })
            .collect();
        sessions
    });
    let inputs: Vec<_> = sessions.iter().map(|(_, input, _)| input.clone()).collect();
    let lanes: Vec<_> = sessions.iter().map(|(_, _, lane)| lane.clone()).collect();
    let threaded_pps = drive(&inputs, &lanes);
    for (session, _, _) in &sessions {
        session.shutdown().expect("clean shutdown");
    }
    drop(sessions);
    (threaded_threads, threaded_pps)
}

/// One full pooled run: the same 256 sessions as tasks on `WORKERS` fixed
/// workers.  Returns (threads used to host, packets/second).
fn pooled_run() -> (usize, f64) {
    let runtime = Runtime::start(
        RuntimeConfig::new(WORKERS, BATCH_SIZE).with_pipe_capacity(PIPE_CAPACITY),
    );
    let (pooled_threads, pooled) = hosting_threads(WORKERS, || {
        let sessions: Vec<_> = (0..SESSIONS)
            .map(|i| {
                let session = runtime.add_session(format!("pooled-{i}"));
                session
                    .insert_head_filter(0, &FilterSpec::new("null"))
                    .expect("null is a registered kind");
                let lane = session.add_lane("lane").expect("fresh session");
                let input = session.input();
                (session, input, lane)
            })
            .collect();
        sessions
    });
    // The workers were spawned before the measured setup: hosting 256 more
    // sessions must not have spawned a single thread.
    let pooled_threads = pooled_threads.max(WORKERS);
    let inputs: Vec<_> = pooled.iter().map(|(_, input, _)| input.clone()).collect();
    let lanes: Vec<_> = pooled.iter().map(|(_, _, lane)| lane.clone()).collect();
    let pooled_pps = drive(&inputs, &lanes);
    for (session, _, _) in &pooled {
        session.shutdown().expect("clean shutdown");
    }
    drop(pooled);
    assert_eq!(runtime.live_tasks(), 0, "no leaked tasks after the pooled run");
    runtime.shutdown().expect("worker pool joins cleanly");
    (pooled_threads, pooled_pps)
}

fn main() {
    println!(
        "runtime scaling: {SESSIONS} fanout sessions (1 head filter + 1 lane), \
         burst of {PACKETS_PER_SESSION} packets each, {REPETITIONS} repetitions"
    );
    println!("{}", "-".repeat(72));

    // Thread counts come from the first repetition (they are a property of
    // the topology, not of load); throughput keeps every sample.
    let mut threaded_threads = 0usize;
    let mut threaded_samples = Vec::with_capacity(REPETITIONS);
    for rep in 0..REPETITIONS {
        let (threads, pps) = threaded_run();
        if rep == 0 {
            threaded_threads = threads;
        }
        threaded_samples.push(pps);
    }
    let mut pooled_threads = 0usize;
    let mut pooled_samples = Vec::with_capacity(REPETITIONS);
    for rep in 0..REPETITIONS {
        let (threads, pps) = pooled_run();
        if rep == 0 {
            pooled_threads = threads;
        }
        pooled_samples.push(pps);
    }
    let threaded_pps = median(&threaded_samples);
    let pooled_pps = median(&pooled_samples);

    let threaded_density = SESSIONS as f64 / threaded_threads as f64;
    let pooled_density = SESSIONS as f64 / pooled_threads as f64;
    println!(
        "thread-per-filter: {threaded_threads:>5} threads  {threaded_density:>8.2} sessions/thread  {threaded_pps:>12.0} pkts/s"
    );
    println!(
        "sharded pool:      {pooled_threads:>5} threads  {pooled_density:>8.2} sessions/thread  {pooled_pps:>12.0} pkts/s"
    );
    let density_gain = pooled_density / threaded_density;
    println!("session-density gain:            {density_gain:>8.2}x");

    // Write the report before the density assert: a machine that misses
    // the 4x bar still leaves its numbers behind for inspection.
    let mut report = BenchReport::new("runtime_scaling");
    report.record("thread-per-filter/throughput", "packets/s", &threaded_samples);
    report.record("pooled/throughput", "packets/s", &pooled_samples);
    report.record("thread-per-filter/hosting-threads", "threads", &[threaded_threads as f64]);
    report.record("pooled/hosting-threads", "threads", &[pooled_threads as f64]);
    report.record("thread-per-filter/density", "sessions/thread", &[threaded_density]);
    report.record("pooled/density", "sessions/thread", &[pooled_density]);
    report.record("density-gain", "x", &[density_gain]);
    let path = report.write().expect("writing the bench report");
    println!("report: {}", path.display());

    assert!(
        density_gain >= 4.0,
        "pooled runtime must host >= 4x the sessions per thread at {SESSIONS} sessions on \
         {WORKERS} workers, got {density_gain:.2}x"
    );
}
