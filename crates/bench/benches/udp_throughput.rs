//! Socket-path vs in-process-pipe throughput, at batch sizes 1 and 32.
//!
//! The question this answers: what does leaving the process cost?  The
//! same null chain moves the same packets either over detachable pipes
//! (`Proxy::add_stream_batched`), over two loopback UDP sockets with
//! dedicated pump threads (`Proxy::add_stream_udp` — encode, datagram,
//! decode on both edges), or over a reactor-driven *shared* carrier socket
//! (`Proxy::add_stream_udp_shared` — same framing, batched readiness
//! drains on the worker pool, zero pump threads), and every path is
//! measured at a per-packet batch size and at batch 32.
//!
//! The wire path pays for framing (encode + CRC + decode) and two kernel
//! crossings per packet, so the pipe path is expected to win by an order
//! of magnitude; the number that matters is the socket path's absolute
//! packets/second, which bounds what one proxy ingress can absorb from a
//! real network.  The run asserts only sanity (every packet arrives);
//! ratios are reported, not asserted, because kernel UDP performance is
//! not ours to promise.
//!
//! Every path runs `REPETITIONS` times; the table prints medians and the
//! full samples go to `BENCH_udp_throughput.json` at the workspace root.
//!
//! Run with `cargo bench -p rapidware-bench --bench udp_throughput`.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::{Proxy, SharedUdpStreamConfig, UdpCarrierConfig, UdpStreamConfig};
use rapidware::runtime::RuntimeConfig;
use rapidware::streams::{DetachableReceiver, TryRecvError};
use rapidware::transport::{SharedDrain, SharedUdpIngress, UdpConfig, UdpIngress};
use rapidware_bench::report::{median, BenchReport};

const PACKETS: u64 = 20_000;
const WINDOW: u64 = 100;
const PAYLOAD: usize = 256;
const CAPACITY: usize = 512;
const REPETITIONS: usize = 3;

/// Runs `measure` `REPETITIONS` times and returns every packets/second
/// sample.
fn pps_samples(measure: impl Fn() -> f64) -> Vec<f64> {
    (0..REPETITIONS).map(|_| measure()).collect()
}

fn packet(seq: u64) -> Packet {
    Packet::new(
        StreamId::new(1),
        SeqNo::new(seq),
        PacketKind::AudioData,
        vec![(seq % 251) as u8; PAYLOAD],
    )
}

/// Drains `count` packets, panicking if the stream stalls for 60 s.
fn drain(rx: &DetachableReceiver<Packet>, count: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut received = 0u64;
    while received < count {
        assert!(Instant::now() < deadline, "stream stalled at {received}/{count}");
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(_) => received += 1,
            Err(TryRecvError::Empty) => continue,
            Err(other) => panic!("stream ended early: {other}"),
        }
    }
    received
}

/// Pipes end to end: producer thread writes the chain input, main thread
/// drains the output.  Returns packets/second.
fn pipe_path(batch_size: usize) -> f64 {
    let mut proxy = Proxy::new("bench");
    let (input, output) = proxy.add_stream_batched("s", CAPACITY, batch_size).unwrap();
    let producer = std::thread::spawn(move || {
        for window in 0..(PACKETS / WINDOW) {
            let batch: Vec<Packet> = (window * WINDOW..(window + 1) * WINDOW).map(packet).collect();
            input.send_batch(batch).unwrap();
        }
    });
    let start = Instant::now();
    let received = drain(&output, PACKETS);
    let elapsed = start.elapsed();
    producer.join().unwrap();
    proxy.shutdown().unwrap();
    received as f64 / elapsed.as_secs_f64()
}

/// Sockets end to end: producer thread encodes and sends datagrams to the
/// proxy ingress (paced against the ingress counter, since UDP has no
/// back-pressure), main thread drains the app-side ingress.  Returns
/// packets/second.
fn socket_path(batch_size: usize) -> f64 {
    let app_rx = UdpIngress::bind(
        "127.0.0.1:0",
        &UdpConfig::default().with_capacity(CAPACITY).with_batch_size(batch_size),
    )
    .unwrap();
    let mut proxy = Proxy::new("bench");
    let handle = proxy
        .add_stream_udp(
            "s",
            UdpStreamConfig::to_peer(app_rx.local_addr())
                .with_capacity(CAPACITY)
                .with_batch_size(batch_size),
        )
        .unwrap();
    let ingress_addr = handle.ingress_addr();
    // Pace end to end against the *receiver-side* counter: neither the
    // proxy ingress nor the app ingress may fall a full window behind, so
    // no socket buffer on the path can overflow.
    let app_stats = app_rx.stats();
    let producer = std::thread::spawn(move || {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut scratch = Vec::new();
        for window in 0..(PACKETS / WINDOW) {
            for seq in window * WINDOW..(window + 1) * WINDOW {
                packet(seq).encode_into(&mut scratch);
                socket.send_to(&scratch, ingress_addr).unwrap();
            }
            while app_stats.rx_datagrams() < (window + 1) * WINDOW {
                std::thread::yield_now();
            }
        }
    });
    let start = Instant::now();
    let received = drain(&app_rx.receiver(), PACKETS);
    let elapsed = start.elapsed();
    producer.join().unwrap();
    proxy.shutdown().unwrap();
    received as f64 / elapsed.as_secs_f64()
}

/// Shared carrier end to end: the same wire as `socket_path`, but the
/// proxy side is one reactor-driven carrier socket drained in batches on
/// the worker pool — no pump threads.  The app side drains its own shared
/// socket non-blockingly.  Returns packets/second.
fn shared_path(batch_size: usize) -> f64 {
    let app = SharedUdpIngress::bind(
        "127.0.0.1:0",
        &UdpConfig::default().with_capacity(CAPACITY).with_batch_size(batch_size),
    )
    .unwrap();
    let route = app.open_stream(StreamId::new(1)).unwrap();
    let mut proxy = Proxy::with_runtime(
        "bench",
        RuntimeConfig::new(2, batch_size).with_pipe_capacity(CAPACITY),
    );
    let carrier = proxy
        .add_udp_carrier(
            "carrier",
            UdpCarrierConfig::new().with_capacity(CAPACITY).with_batch_size(batch_size),
        )
        .unwrap();
    proxy
        .add_stream_udp_shared(
            "s",
            SharedUdpStreamConfig::on_carrier("carrier", app.local_addr())
                .with_stream(StreamId::new(1))
                .with_capacity(CAPACITY)
                .with_batch_size(batch_size),
        )
        .unwrap();
    let ingress_addr = carrier.ingress_addr();
    // Same end-to-end pacing as `socket_path`: the producer never runs a
    // full window ahead of the app-side receive counter, which the main
    // thread advances by pumping `drain_batch`.
    let app_stats = app.stats();
    let producer = std::thread::spawn(move || {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut scratch = Vec::new();
        for window in 0..(PACKETS / WINDOW) {
            for seq in window * WINDOW..(window + 1) * WINDOW {
                packet(seq).encode_into(&mut scratch);
                socket.send_to(&scratch, ingress_addr).unwrap();
            }
            while app_stats.rx_datagrams() < (window + 1) * WINDOW {
                std::thread::yield_now();
            }
        }
    });
    let start = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut received = 0u64;
    while received < PACKETS {
        assert!(Instant::now() < deadline, "shared stream stalled at {received}/{PACKETS}");
        while app.drain_batch() == SharedDrain::MoreReady {}
        match route.try_recv_up_to(batch_size) {
            Ok(batch) => received += batch.len() as u64,
            Err(TryRecvError::Empty) => std::thread::yield_now(),
            Err(other) => panic!("shared stream ended early: {other}"),
        }
    }
    let elapsed = start.elapsed();
    producer.join().unwrap();
    proxy.shutdown().unwrap();
    received as f64 / elapsed.as_secs_f64()
}

fn main() {
    println!(
        "udp_throughput: {PACKETS} packets of {PAYLOAD} B through a null chain, \
         median of {REPETITIONS} runs\n"
    );
    println!("{:<28} {:>16} {:>16}", "path", "batch=1", "batch=32");
    let pipe_1_samples = pps_samples(|| pipe_path(1));
    let pipe_32_samples = pps_samples(|| pipe_path(32));
    let pipe_1 = median(&pipe_1_samples);
    let pipe_32 = median(&pipe_32_samples);
    println!("{:<28} {:>13.0} pps {:>13.0} pps", "in-process pipes", pipe_1, pipe_32);
    let socket_1_samples = pps_samples(|| socket_path(1));
    let socket_32_samples = pps_samples(|| socket_path(32));
    let socket_1 = median(&socket_1_samples);
    let socket_32 = median(&socket_32_samples);
    println!("{:<28} {:>13.0} pps {:>13.0} pps", "loopback UDP sockets", socket_1, socket_32);
    let shared_1_samples = pps_samples(|| shared_path(1));
    let shared_32_samples = pps_samples(|| shared_path(32));
    let shared_1 = median(&shared_1_samples);
    let shared_32 = median(&shared_32_samples);
    println!("{:<28} {:>13.0} pps {:>13.0} pps", "shared carrier (reactor)", shared_1, shared_32);
    println!(
        "\npipe/socket ratio: {:.1}x at batch=1, {:.1}x at batch=32",
        pipe_1 / socket_1,
        pipe_32 / socket_32
    );
    println!(
        "pipe/shared ratio: {:.1}x at batch=1, {:.1}x at batch=32",
        pipe_1 / shared_1,
        pipe_32 / shared_32
    );
    println!(
        "shared/dedicated-socket ratio: {:.2}x at batch=1, {:.2}x at batch=32",
        shared_1 / socket_1,
        shared_32 / socket_32
    );
    println!(
        "socket batching gain: {:.2}x (batch=32 over batch=1)",
        socket_32 / socket_1
    );
    println!(
        "shared batched-drain gain: {:.2}x (batch=32 over batch=1)",
        shared_32 / shared_1
    );

    let mut report = BenchReport::new("udp_throughput");
    report.record("pipes/batch-1", "packets/s", &pipe_1_samples);
    report.record("pipes/batch-32", "packets/s", &pipe_32_samples);
    report.record("sockets/batch-1", "packets/s", &socket_1_samples);
    report.record("sockets/batch-32", "packets/s", &socket_32_samples);
    report.record("sockets/batching-gain", "x", &[socket_32 / socket_1]);
    report.record("shared/batch-1", "packets/s", &shared_1_samples);
    report.record("shared/batch-32", "packets/s", &shared_32_samples);
    report.record("shared/batching-gain", "x", &[shared_32 / shared_1]);
    let path = report.write().expect("writing the bench report");
    println!("report: {}", path.display());
}
