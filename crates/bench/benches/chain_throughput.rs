//! E5 (bench form) — packet throughput of the synchronous filter chain as a
//! function of depth and of filter kind.
//!
//! Groups:
//!
//! * `chain_depth/<d>` — d null filters (pure composition overhead);
//! * `chain_filters/<kind>` — a single real filter processing the paper's
//!   320-byte audio packets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapidware::filters::{
    AudioTranscoderFilter, CompressorFilter, FecEncoderFilter, FilterChain, NullFilter,
    ScramblerFilter, TranscodeMode,
};
use rapidware::media::AudioSource;
use rapidware::packet::{Packet, StreamId};

const BATCH: usize = 512;

fn audio_batch() -> Vec<Packet> {
    let mut source = AudioSource::pcm_default(StreamId::new(1));
    source.take_packets(BATCH)
}

fn bench_depth(c: &mut Criterion) {
    let packets = audio_batch();
    let bytes: u64 = packets.iter().map(|p| p.payload_len() as u64).sum();
    let mut group = c.benchmark_group("chain_depth");
    group.sample_size(30);
    group.throughput(Throughput::Bytes(bytes));
    for depth in [0usize, 1, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter_batched(
                || {
                    let mut chain = FilterChain::new();
                    for _ in 0..depth {
                        chain.push_back(Box::new(NullFilter::new())).expect("push");
                    }
                    (chain, packets.clone())
                },
                |(mut chain, packets)| {
                    let mut out = 0usize;
                    for packet in packets {
                        out += chain.process(packet).expect("process").len();
                    }
                    out
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_filters(c: &mut Criterion) {
    let packets = audio_batch();
    let bytes: u64 = packets.iter().map(|p| p.payload_len() as u64).sum();
    let mut group = c.benchmark_group("chain_filters");
    group.sample_size(30);
    group.throughput(Throughput::Bytes(bytes));
    type FilterFactory = fn() -> Box<dyn rapidware::filters::Filter>;
    let cases: Vec<(&str, FilterFactory)> = vec![
        ("null", || Box::new(NullFilter::new())),
        ("fec-encoder(6,4)", || {
            Box::new(FecEncoderFilter::fec_6_4().expect("valid"))
        }),
        ("transcoder", || {
            Box::new(AudioTranscoderFilter::new(TranscodeMode::StereoToMono))
        }),
        ("compressor", || Box::new(CompressorFilter::new())),
        ("scrambler", || Box::new(ScramblerFilter::new(0x5EED))),
    ];
    for (name, factory) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &factory, |b, factory| {
            b.iter_batched(
                || {
                    let mut chain = FilterChain::new();
                    chain.push_back(factory()).expect("push");
                    (chain, packets.clone())
                },
                |(mut chain, packets)| {
                    let mut out = 0usize;
                    for packet in packets {
                        out += chain.process(packet).expect("process").len();
                    }
                    out
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth, bench_filters);
criterion_main!(benches);
