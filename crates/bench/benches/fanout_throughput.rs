//! Fanout session throughput: shared-head fanout vs N independent chains.
//!
//! The claim under test: a fanout session pays the head stage's cost
//! **once** per packet regardless of receiver count, because each processed
//! packet is fanned out as an `Arc`-backed clone (a refcount bump, not a
//! byte copy).  The strawman alternative — one full, independent chain per
//! receiver — pays the head stage N times.
//!
//! Both paths run the FEC(6,4) encoder as the head-stage work over the
//! paper's 320-byte audio packets, fan out to `LANES` receivers, and report
//! source packets/second.  The bench asserts the fanout path is at least
//! 2× the per-receiver strawman at N = 8 (in practice it approaches N×),
//! and writes the criterion-style summary to `BENCH_fanout.json` via
//! [`rapidware_bench::report`].
//!
//! Run with `cargo bench -p rapidware-bench --bench fanout_throughput`.

use std::time::Instant;

use rapidware::engine::{FanoutApplier, FanoutSpec, LaneSpec, SyncFanoutApplier};
use rapidware::filters::{FecEncoderFilter, FilterChain};
use rapidware::packet::{Packet, PacketKind, SeqNo, StreamId};
use rapidware::proxy::{FilterSpec, Session};
use rapidware_bench::report::BenchReport;

const PACKETS: usize = 8_192;
const LANES: usize = 8;
const PAYLOAD: usize = 320;
const REPETITIONS: usize = 5;

fn audio_packets() -> Vec<Packet> {
    (0..PACKETS as u64)
        .map(|seq| {
            Packet::with_timestamp(
                StreamId::new(1),
                SeqNo::new(seq),
                PacketKind::AudioData,
                seq * 20_000,
                vec![(seq % 251) as u8; PAYLOAD],
            )
        })
        .collect()
}

fn fanout_spec() -> FanoutSpec {
    let mut spec = FanoutSpec::all_wired();
    spec.head_filters = vec![FilterSpec::new("fec-encoder")];
    spec.lanes = (0..LANES).map(|i| LaneSpec::wired(&format!("lane-{i}"))).collect();
    spec
}

/// Runs `measure` `REPETITIONS` times; all samples go into the JSON
/// report, the printed table uses the best.
fn pps_samples(measure: impl Fn() -> f64) -> Vec<f64> {
    (0..REPETITIONS).map(|_| measure()).collect()
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(0.0, f64::max)
}

/// Shared head chain, one encode per packet, zero-copy fanout to N lanes.
fn fanout_pps(packets: &[Packet]) -> f64 {
    let spec = fanout_spec();
    let mut applier = SyncFanoutApplier::for_spec(&spec);
    let start = Instant::now();
    let per_lane = applier.process(packets.to_vec());
    let residue = applier.finish();
    let elapsed = start.elapsed().as_secs_f64();
    let delivered: usize =
        per_lane.iter().map(Vec::len).sum::<usize>() + residue.iter().map(Vec::len).sum::<usize>();
    assert!(
        delivered >= LANES * packets.len(),
        "every lane must see every source packet (got {delivered})"
    );
    packets.len() as f64 / elapsed
}

/// The strawman: N fully independent chains, each encoding the whole
/// stream for its own receiver.
fn independent_chains_pps(packets: &[Packet]) -> f64 {
    let mut chains: Vec<FilterChain> = (0..LANES)
        .map(|_| {
            let mut chain = FilterChain::new();
            chain
                .push_back(Box::new(FecEncoderFilter::fec_6_4().expect("valid (n, k)")))
                .expect("push encoder");
            chain
        })
        .collect();
    let start = Instant::now();
    let mut delivered = 0usize;
    for chain in &mut chains {
        delivered += chain.process_batch(packets.to_vec()).expect("encode succeeds").len();
        delivered += chain.flush().expect("flush succeeds").len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(delivered >= LANES * packets.len());
    packets.len() as f64 / elapsed
}

/// The live threaded session (head worker + fanout worker + lane chains),
/// drained concurrently — reported for color, not asserted (thread
/// scheduling noise).
fn live_session_pps(packets: &[Packet]) -> f64 {
    let session = Session::new("bench").expect("sessions are constructible");
    session
        .insert_head_filter(0, &FilterSpec::new("fec-encoder"))
        .expect("registered kind");
    let consumers: Vec<_> = (0..LANES)
        .map(|i| {
            let rx = session.add_lane(format!("lane-{i}")).expect("unique lanes");
            std::thread::spawn(move || std::iter::from_fn(|| rx.recv().ok()).count())
        })
        .collect();
    let input = session.input();
    let start = Instant::now();
    for packet in packets {
        input.send(packet.clone()).expect("session accepts packets");
    }
    session.close_input();
    let mut delivered = 0usize;
    for consumer in consumers {
        delivered += consumer.join().expect("drain does not panic");
    }
    let elapsed = start.elapsed().as_secs_f64();
    session.shutdown().expect("clean shutdown");
    assert!(delivered >= LANES * packets.len());
    packets.len() as f64 / elapsed
}

fn main() {
    let packets = audio_packets();
    println!(
        "fanout throughput: FEC(6,4) head stage, {LANES} receivers, {PACKETS} x {PAYLOAD}B packets"
    );
    println!("{}", "-".repeat(72));

    let independent_samples = pps_samples(|| independent_chains_pps(&packets));
    let fanout_samples = pps_samples(|| fanout_pps(&packets));
    let session_samples = pps_samples(|| live_session_pps(&packets));
    let independent = best(&independent_samples);
    let fanout = best(&fanout_samples);
    let session = best(&session_samples);

    println!("independent chains (head x{LANES}):   {independent:>12.0} source pkts/s");
    println!("fanout session (head x1, sync):   {fanout:>12.0} source pkts/s");
    println!("fanout session (live threaded):   {session:>12.0} source pkts/s");
    let speedup = fanout / independent;
    println!("amortization speedup (sync):      {speedup:>11.2}x");

    // Write the report before the speedup assert so a machine that misses
    // the bar still leaves its numbers behind for inspection.
    let mut report = BenchReport::new("fanout");
    report.record(
        format!("independent-chains/lanes-{LANES}"),
        "packets/s",
        &independent_samples,
    );
    report.record(format!("fanout-sync/lanes-{LANES}"), "packets/s", &fanout_samples);
    report.record(format!("fanout-live/lanes-{LANES}"), "packets/s", &session_samples);
    report.record("fanout-sync/amortization-speedup", "x", &[speedup]);
    let path = report.write().expect("writing the bench report");
    println!("report: {}", path.display());

    assert!(
        speedup >= 2.0,
        "head-stage work must be amortized: expected >= 2x at N = {LANES}, got {speedup:.2}x"
    );
}
