//! E4 (bench form) — the cost of splicing a filter into a chain.
//!
//! Two measurements:
//!
//! * `splice_sync/insert+remove` — inserting and removing a filter in the
//!   synchronous chain (pure data-structure cost);
//! * `splice_threaded/insert+remove` — the same operation on the
//!   thread-per-filter runtime with a live (but idle) stream, which includes
//!   the pause → drain → reconnect protocol on the detachable pipes and the
//!   worker thread lifecycle.

use criterion::{criterion_group, criterion_main, Criterion};
use rapidware::filters::{FilterChain, NullFilter};
use rapidware::proxy::ThreadedChain;

fn bench_sync_splice(c: &mut Criterion) {
    let mut group = c.benchmark_group("splice_sync");
    group.sample_size(50);
    group.bench_function("insert+remove", |b| {
        let mut chain = FilterChain::new();
        chain.push_back(Box::new(NullFilter::new())).expect("push");
        b.iter(|| {
            chain.insert(0, Box::new(NullFilter::new())).expect("insert");
            let (removed, flushed) = chain.remove(0).expect("remove");
            assert!(flushed.is_empty());
            removed
        });
    });
    group.finish();
}

fn bench_threaded_splice(c: &mut Criterion) {
    let mut group = c.benchmark_group("splice_threaded");
    group.sample_size(20);
    group.bench_function("insert+remove", |b| {
        let chain = ThreadedChain::new().expect("chain");
        chain.push_back(Box::new(NullFilter::new())).expect("push");
        b.iter(|| {
            chain.insert(0, Box::new(NullFilter::new())).expect("insert");
            chain.remove(0).expect("remove")
        });
        chain.shutdown().expect("shutdown");
    });
    group.finish();
}

criterion_group!(benches, bench_sync_splice, bench_threaded_splice);
criterion_main!(benches);
