//! E7 — FEC codec microbenchmarks (encode / decode cost per block).
//!
//! The paper's proxy must encode parities online for a live audio stream, so
//! the per-block cost of the (n, k) erasure code is the budget the rest of
//! the filter chain lives in.  Criterion groups:
//!
//! * `fec_encode/<n>,<k>` — producing the n − k parity shards of one block;
//! * `fec_decode/<n>,<k>` — recovering the maximum tolerable number of lost
//!   shards (n − k) from a received block;
//! * `gf256_kernel` — the dispatched bulk `addmul_slice` kernel against the
//!   always-compiled scalar reference on 1 KiB slices.  When a SIMD kernel
//!   is active this bench **asserts** it is at least 2× the scalar path —
//!   the regression tripwire for the PSHUFB-style nibble-split kernels.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapidware::fec::gf256;
use rapidware::fec::FecCodec;

const SHARD_LEN: usize = 360; // one 320-byte audio packet + header, roughly

fn sources(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..SHARD_LEN).map(|j| ((i * 31 + j * 7 + 1) % 256) as u8).collect())
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fec_encode");
    group.sample_size(30);
    for (n, k) in [(6usize, 4usize), (8, 4), (8, 6), (12, 8), (16, 12)] {
        let codec = FecCodec::new(n, k).expect("valid parameters");
        let data = sources(k);
        let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        group.throughput(Throughput::Bytes((SHARD_LEN * k) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n},{k}")), &refs, |b, refs| {
            b.iter(|| codec.encode(refs).expect("encode"));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fec_decode");
    group.sample_size(30);
    for (n, k) in [(6usize, 4usize), (8, 4), (8, 6), (12, 8)] {
        let codec = FecCodec::new(n, k).expect("valid parameters");
        let data = sources(k);
        let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        let parities = codec.encode(&refs).expect("encode");
        // Lose the first n - k source shards: the worst tolerable case.
        let lost = n - k;
        let mut available: Vec<(usize, &[u8])> = Vec::new();
        for (index, shard) in data.iter().enumerate().skip(lost.min(k)) {
            available.push((index, shard.as_slice()));
        }
        for (index, parity) in parities.iter().enumerate() {
            available.push((k + index, parity.as_slice()));
        }
        group.throughput(Throughput::Bytes((SHARD_LEN * k) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n},{k}")),
            &available,
            |b, available| {
                b.iter(|| codec.decode(available, SHARD_LEN).expect("decode"));
            },
        );
    }
    group.finish();
}

/// Times `addmul(target, source, c)` over `iters` passes on 1 KiB slices
/// and returns bytes/second.
fn addmul_throughput(addmul: impl Fn(&mut [u8], &[u8], u8), iters: usize) -> f64 {
    const LEN: usize = 1024;
    let source: Vec<u8> = (0..LEN).map(|i| (i * 37 + 5) as u8).collect();
    let mut target = vec![0u8; LEN];
    // Warm the tables and the branch predictor.
    addmul(&mut target, &source, 29);
    let start = Instant::now();
    for i in 0..iters {
        addmul(&mut target, &source, (i % 255 + 1) as u8);
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&target);
    (LEN * iters) as f64 / elapsed
}

fn bench_kernels(_c: &mut Criterion) {
    const ITERS: usize = 200_000;
    const REPS: usize = 5;
    let dispatched = (0..REPS)
        .map(|_| addmul_throughput(gf256::addmul_slice, ITERS))
        .fold(0.0, f64::max);
    let scalar = (0..REPS)
        .map(|_| addmul_throughput(gf256::addmul_slice_scalar, ITERS))
        .fold(0.0, f64::max);
    let kernel = gf256::active_kernel();
    let speedup = dispatched / scalar;
    println!(
        "gf256_kernel: addmul 1KiB  dispatched({}) {:>8.1} MB/s  scalar {:>8.1} MB/s  ({speedup:.2}x)",
        kernel.name(),
        dispatched / 1e6,
        scalar / 1e6,
    );
    if kernel != gf256::Kernel::Scalar {
        assert!(
            speedup >= 2.0,
            "SIMD addmul must be >= 2x scalar on 1 KiB slices, got {speedup:.2}x ({})",
            kernel.name()
        );
    }
}

criterion_group!(benches, bench_encode, bench_decode, bench_kernels);
criterion_main!(benches);
