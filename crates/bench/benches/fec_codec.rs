//! E7 — FEC codec microbenchmarks (encode / decode cost per block).
//!
//! The paper's proxy must encode parities online for a live audio stream, so
//! the per-block cost of the (n, k) erasure code is the budget the rest of
//! the filter chain lives in.  Criterion groups:
//!
//! * `fec_encode/<n>,<k>` — producing the n − k parity shards of one block;
//! * `fec_decode/<n>,<k>` — recovering the maximum tolerable number of lost
//!   shards (n − k) from a received block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapidware::fec::FecCodec;

const SHARD_LEN: usize = 360; // one 320-byte audio packet + header, roughly

fn sources(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..SHARD_LEN).map(|j| ((i * 31 + j * 7 + 1) % 256) as u8).collect())
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fec_encode");
    group.sample_size(30);
    for (n, k) in [(6usize, 4usize), (8, 4), (8, 6), (12, 8), (16, 12)] {
        let codec = FecCodec::new(n, k).expect("valid parameters");
        let data = sources(k);
        let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        group.throughput(Throughput::Bytes((SHARD_LEN * k) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n},{k}")), &refs, |b, refs| {
            b.iter(|| codec.encode(refs).expect("encode"));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fec_decode");
    group.sample_size(30);
    for (n, k) in [(6usize, 4usize), (8, 4), (8, 6), (12, 8)] {
        let codec = FecCodec::new(n, k).expect("valid parameters");
        let data = sources(k);
        let refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
        let parities = codec.encode(&refs).expect("encode");
        // Lose the first n - k source shards: the worst tolerable case.
        let lost = n - k;
        let mut available: Vec<(usize, &[u8])> = Vec::new();
        for (index, shard) in data.iter().enumerate().skip(lost.min(k)) {
            available.push((index, shard.as_slice()));
        }
        for (index, parity) in parities.iter().enumerate() {
            available.push((k + index, parity.as_slice()));
        }
        group.throughput(Throughput::Bytes((SHARD_LEN * k) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n},{k}")),
            &available,
            |b, available| {
                b.iter(|| codec.decode(available, SHARD_LEN).expect("decode"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
