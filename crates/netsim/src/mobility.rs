//! Mobility models: how far a mobile host is from the access point as a
//! function of simulated time.
//!
//! The paper's motivating scenario (Section 3) is a user who "wants to
//! maintain the connection as she moves from her office (near the access
//! point) to a conference room down the hall", at which point packet loss
//! rises and the RAPIDware observer inserts an FEC filter.  [`LinearWalk`]
//! and [`WaypointWalk`] model exactly that kind of movement.

use std::fmt;

use crate::time::SimTime;

/// Gives the distance (in meters) between a mobile host and its access point
/// at any point in simulated time.
pub trait MobilityModel: Send + fmt::Debug {
    /// Distance from the access point at `time`, in meters.
    fn distance_at(&self, time: SimTime) -> f64;
}

/// A host that does not move.
#[derive(Debug, Clone, Copy)]
pub struct StaticPosition {
    distance_m: f64,
}

impl StaticPosition {
    /// Creates a stationary host at the given distance.
    ///
    /// # Panics
    ///
    /// Panics if the distance is negative or not finite.
    pub fn new(distance_m: f64) -> Self {
        assert!(distance_m.is_finite() && distance_m >= 0.0, "distance must be non-negative");
        Self { distance_m }
    }
}

impl MobilityModel for StaticPosition {
    fn distance_at(&self, _time: SimTime) -> f64 {
        self.distance_m
    }
}

/// A host that walks at constant speed from one distance to another, then
/// stays there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearWalk {
    start_m: f64,
    end_m: f64,
    departure: SimTime,
    speed_mps: f64,
}

impl LinearWalk {
    /// Creates a walk that starts at `start_m` meters from the access point,
    /// departs at `departure`, and walks toward `end_m` at `speed_mps`
    /// meters per second.
    ///
    /// # Panics
    ///
    /// Panics if the distances are negative or the speed is not positive.
    pub fn new(start_m: f64, end_m: f64, departure: SimTime, speed_mps: f64) -> Self {
        assert!(start_m >= 0.0 && end_m >= 0.0, "distances must be non-negative");
        assert!(speed_mps > 0.0, "walking speed must be positive");
        Self {
            start_m,
            end_m,
            departure,
            speed_mps,
        }
    }

    /// The paper's office-to-conference-room walk: the user starts 5 m from
    /// the access point, leaves one minute into the session, and walks at a
    /// comfortable 1 m/s to a room 35 m away.
    pub fn office_to_conference_room() -> Self {
        Self::new(5.0, 35.0, SimTime::from_secs(60), 1.0)
    }

    /// Time at which the walk reaches its destination.
    pub fn arrival_time(&self) -> SimTime {
        let travel_secs = (self.end_m - self.start_m).abs() / self.speed_mps;
        self.departure + (travel_secs * 1e6) as u64
    }
}

impl MobilityModel for LinearWalk {
    fn distance_at(&self, time: SimTime) -> f64 {
        if time <= self.departure {
            return self.start_m;
        }
        let elapsed_secs = time.micros_since(self.departure) as f64 / 1e6;
        let travelled = elapsed_secs * self.speed_mps;
        let total = (self.end_m - self.start_m).abs();
        if travelled >= total {
            self.end_m
        } else if self.end_m >= self.start_m {
            self.start_m + travelled
        } else {
            self.start_m - travelled
        }
    }
}

/// A piecewise-linear mobility trace through a list of `(time, distance)`
/// waypoints.
#[derive(Debug, Clone)]
pub struct WaypointWalk {
    waypoints: Vec<(SimTime, f64)>,
}

impl WaypointWalk {
    /// Creates a trace from waypoints.  Waypoints are sorted by time; the
    /// distance before the first waypoint is the first waypoint's distance
    /// and after the last waypoint the last one's.
    ///
    /// # Panics
    ///
    /// Panics if `waypoints` is empty or contains a negative distance.
    pub fn new(mut waypoints: Vec<(SimTime, f64)>) -> Self {
        assert!(!waypoints.is_empty(), "waypoint walk needs at least one waypoint");
        assert!(
            waypoints.iter().all(|(_, d)| *d >= 0.0),
            "distances must be non-negative"
        );
        waypoints.sort_by_key(|(t, _)| *t);
        Self { waypoints }
    }

    /// The waypoints of this trace, sorted by time.
    pub fn waypoints(&self) -> &[(SimTime, f64)] {
        &self.waypoints
    }
}

impl MobilityModel for WaypointWalk {
    fn distance_at(&self, time: SimTime) -> f64 {
        let first = self.waypoints.first().expect("non-empty by construction");
        if time <= first.0 {
            return first.1;
        }
        for window in self.waypoints.windows(2) {
            let (t0, d0) = window[0];
            let (t1, d1) = window[1];
            if time <= t1 {
                let span = t1.micros_since(t0) as f64;
                if span == 0.0 {
                    return d1;
                }
                let progress = time.micros_since(t0) as f64 / span;
                return d0 + (d1 - d0) * progress;
            }
        }
        self.waypoints.last().expect("non-empty by construction").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_position_never_moves() {
        let host = StaticPosition::new(25.0);
        assert_eq!(host.distance_at(SimTime::ZERO), 25.0);
        assert_eq!(host.distance_at(SimTime::from_secs(1000)), 25.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_static_distance_panics() {
        let _ = StaticPosition::new(-1.0);
    }

    #[test]
    fn linear_walk_interpolates() {
        let walk = LinearWalk::new(5.0, 35.0, SimTime::from_secs(60), 1.0);
        assert_eq!(walk.distance_at(SimTime::ZERO), 5.0);
        assert_eq!(walk.distance_at(SimTime::from_secs(60)), 5.0);
        assert!((walk.distance_at(SimTime::from_secs(70)) - 15.0).abs() < 1e-9);
        assert!((walk.distance_at(SimTime::from_secs(90)) - 35.0).abs() < 1e-9);
        assert_eq!(walk.distance_at(SimTime::from_secs(10_000)), 35.0);
        assert_eq!(walk.arrival_time(), SimTime::from_secs(90));
    }

    #[test]
    fn linear_walk_can_move_towards_the_access_point() {
        let walk = LinearWalk::new(30.0, 10.0, SimTime::ZERO, 2.0);
        assert!((walk.distance_at(SimTime::from_secs(5)) - 20.0).abs() < 1e-9);
        assert_eq!(walk.distance_at(SimTime::from_secs(60)), 10.0);
    }

    #[test]
    fn office_to_conference_room_matches_paper_scenario() {
        let walk = LinearWalk::office_to_conference_room();
        assert_eq!(walk.distance_at(SimTime::ZERO), 5.0);
        let far = walk.distance_at(SimTime::from_secs(200));
        assert!((far - 35.0).abs() < 1e-9);
    }

    #[test]
    fn waypoint_walk_interpolates_between_points() {
        let walk = WaypointWalk::new(vec![
            (SimTime::from_secs(10), 5.0),
            (SimTime::ZERO, 5.0),
            (SimTime::from_secs(20), 25.0),
            (SimTime::from_secs(30), 15.0),
        ]);
        assert_eq!(walk.distance_at(SimTime::ZERO), 5.0);
        assert_eq!(walk.distance_at(SimTime::from_secs(5)), 5.0);
        assert!((walk.distance_at(SimTime::from_secs(15)) - 15.0).abs() < 1e-9);
        assert!((walk.distance_at(SimTime::from_secs(25)) - 20.0).abs() < 1e-9);
        assert_eq!(walk.distance_at(SimTime::from_secs(100)), 15.0);
        assert_eq!(walk.waypoints().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one waypoint")]
    fn empty_waypoints_panic() {
        let _ = WaypointWalk::new(Vec::new());
    }
}
