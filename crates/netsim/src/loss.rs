//! Packet-loss models for simulated links.
//!
//! Three models are provided, matching the phenomena the paper (and its
//! companion measurement study [16]) describes on 2 Mbps WaveLAN networks:
//!
//! * [`BernoulliLoss`] — independent losses with a fixed probability; the
//!   baseline assumption behind (n, k) block erasure coding.
//! * [`GilbertElliottLoss`] — a two-state Markov chain producing bursty
//!   losses, which is what wireless interference actually looks like and the
//!   reason the paper keeps FEC groups small ("we use small groups so as to
//!   minimize jitter" and to bound the loss correlation within a group).
//! * [`DistanceLossModel`] — loss probability as a function of the distance
//!   between the mobile host and the access point, calibrated so that the
//!   25 m point reproduces the ≈1.46 % raw loss of Figure 7 and so that loss
//!   "changes dramatically over a distance of several meters" beyond that.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

use crate::time::SimTime;

/// Decides, per packet, whether a transmission is lost.
///
/// Implementations may keep state (burst models) and may use the provided
/// RNG; they must be deterministic given the same RNG state and call
/// sequence.
pub trait LossModel: Send + fmt::Debug {
    /// Returns `true` if a packet transmitted at `now` with the given size
    /// should be dropped.
    fn should_drop(&mut self, rng: &mut StdRng, now: SimTime, packet_len: usize) -> bool;

    /// The model's current long-run loss probability estimate, used by
    /// monitoring and by the experiment harness for reporting.
    fn nominal_loss_rate(&self) -> f64;
}

/// A lossless link.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectLink;

impl LossModel for PerfectLink {
    fn should_drop(&mut self, _rng: &mut StdRng, _now: SimTime, _len: usize) -> bool {
        false
    }

    fn nominal_loss_rate(&self) -> f64 {
        0.0
    }
}

/// Independent (memoryless) losses with fixed probability.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliLoss {
    probability: f64,
}

impl BernoulliLoss {
    /// Creates a model that drops each packet independently with the given
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `[0, 1]`.
    pub fn new(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability must be within [0, 1]"
        );
        Self { probability }
    }

    /// The configured loss probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl LossModel for BernoulliLoss {
    fn should_drop(&mut self, rng: &mut StdRng, _now: SimTime, _len: usize) -> bool {
        rng.gen::<f64>() < self.probability
    }

    fn nominal_loss_rate(&self) -> f64 {
        self.probability
    }
}

/// The classic two-state Gilbert–Elliott burst-loss model.
///
/// The channel alternates between a *good* state and a *bad* state.  In the
/// good state packets are lost with probability `loss_good` (usually ~0); in
/// the bad state with probability `loss_bad` (usually high).  Transitions
/// happen per packet with probabilities `p_good_to_bad` and `p_bad_to_good`.
#[derive(Debug, Clone, Copy)]
pub struct GilbertElliottLoss {
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    loss_good: f64,
    loss_bad: f64,
    in_bad_state: bool,
}

impl GilbertElliottLoss {
    /// Creates a burst model.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(p_good_to_bad: f64, p_bad_to_good: f64, loss_good: f64, loss_bad: f64) -> Self {
        for p in [p_good_to_bad, p_bad_to_good, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probabilities must be within [0, 1]");
        }
        Self {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
            in_bad_state: false,
        }
    }

    /// A configuration producing short loss bursts with roughly the given
    /// average loss rate: bursts of ~3 packets, entered just often enough.
    pub fn with_average_loss(average: f64) -> Self {
        let average = average.clamp(0.0, 0.5);
        let p_bad_to_good = 1.0 / 3.0; // mean burst length 3 packets
        let loss_bad = 0.9;
        let loss_good = average / 10.0;
        // Solve stationary distribution for the required entry probability.
        // pi_bad = p_gb / (p_gb + p_bg); loss = pi_good*loss_good + pi_bad*loss_bad
        let target_pi_bad = ((average - loss_good) / (loss_bad - loss_good)).clamp(0.0, 0.95);
        let p_good_to_bad = if target_pi_bad >= 0.95 {
            0.95 * p_bad_to_good / 0.05
        } else {
            target_pi_bad * p_bad_to_good / (1.0 - target_pi_bad)
        };
        Self::new(p_good_to_bad.clamp(0.0, 1.0), p_bad_to_good, loss_good, loss_bad)
    }

    /// Returns `true` while the channel is in its bad (bursty) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad_state
    }
}

impl LossModel for GilbertElliottLoss {
    fn should_drop(&mut self, rng: &mut StdRng, _now: SimTime, _len: usize) -> bool {
        // State transition first, then the loss draw in the new state.
        if self.in_bad_state {
            if rng.gen::<f64>() < self.p_bad_to_good {
                self.in_bad_state = false;
            }
        } else if rng.gen::<f64>() < self.p_good_to_bad {
            self.in_bad_state = true;
        }
        let p = if self.in_bad_state {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.gen::<f64>() < p
    }

    fn nominal_loss_rate(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// Distance-dependent loss for a 2 Mbps WaveLAN-class wireless LAN.
///
/// The model is a smooth logistic curve in distance: essentially lossless
/// next to the access point, ~1.5 % at 25 m (the paper's Figure 7 operating
/// point), then rising steeply — "dramatically over a distance of several
/// meters" — towards the edge of coverage.
#[derive(Debug, Clone, Copy)]
pub struct DistanceLossModel {
    distance_m: f64,
    floor: f64,
    ceiling: f64,
    midpoint_m: f64,
    steepness: f64,
}

impl DistanceLossModel {
    /// Creates a model with an explicit logistic parameterisation.
    ///
    /// `floor` is the loss probability right at the access point, `ceiling`
    /// the loss probability far outside coverage, `midpoint_m` the distance
    /// at which loss reaches half the ceiling, and `steepness` (per meter)
    /// how fast the transition happens.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are outside `[0, 1]` or `floor > ceiling`.
    pub fn new(floor: f64, ceiling: f64, midpoint_m: f64, steepness: f64) -> Self {
        assert!((0.0..=1.0).contains(&floor) && (0.0..=1.0).contains(&ceiling));
        assert!(floor <= ceiling, "floor loss must not exceed ceiling loss");
        Self {
            distance_m: 0.0,
            floor,
            ceiling,
            midpoint_m,
            steepness,
        }
    }

    /// The calibration used by the experiments: ≈0.1 % at 5 m, ≈1.46 % at
    /// 25 m (matching the paper's reported 98.54 % raw receipt rate), ≈8 %
    /// around 35 m, and >25 % beyond 45 m.
    pub fn wavelan_2mbps() -> Self {
        Self::new(0.0008, 0.60, 42.0, 0.22)
    }

    /// Sets the current distance (in meters) between the mobile host and the
    /// access point.  Mobility models call this as the host moves.
    pub fn set_distance(&mut self, distance_m: f64) {
        self.distance_m = distance_m.max(0.0);
    }

    /// Current distance in meters.
    pub fn distance(&self) -> f64 {
        self.distance_m
    }

    /// Loss probability at an arbitrary distance (does not change state).
    pub fn loss_probability(&self, distance_m: f64) -> f64 {
        let logistic = 1.0 / (1.0 + (-(distance_m - self.midpoint_m) * self.steepness).exp());
        (self.floor + (self.ceiling - self.floor) * logistic).clamp(0.0, 1.0)
    }
}

impl LossModel for DistanceLossModel {
    fn should_drop(&mut self, rng: &mut StdRng, _now: SimTime, _len: usize) -> bool {
        rng.gen::<f64>() < self.loss_probability(self.distance_m)
    }

    fn nominal_loss_rate(&self) -> f64 {
        self.loss_probability(self.distance_m)
    }
}

/// Deterministic stride loss: every `n`-th transmission is dropped,
/// counting from the first.
///
/// Unlike the stochastic models, stride loss consumes no randomness — the
/// drop pattern is a pure function of how many packets the model has seen.
/// That makes it the sharpest tool the scenario generator has for probing
/// FEC block alignment: a stride that beats against the (n, k) group size
/// produces worst-case correlated erasures no Bernoulli draw will reliably
/// hit.
#[derive(Debug, Clone, Copy)]
pub struct StrideLoss {
    every: u64,
    transmitted: u64,
}

impl StrideLoss {
    /// Creates a model that drops every `every`-th packet (the `every`-th,
    /// `2×every`-th, ... transmissions are lost).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: u64) -> Self {
        assert!(every >= 1, "stride must be at least 1");
        Self {
            every,
            transmitted: 0,
        }
    }

    /// The configured stride.
    pub fn every(&self) -> u64 {
        self.every
    }
}

impl LossModel for StrideLoss {
    fn should_drop(&mut self, _rng: &mut StdRng, _now: SimTime, _len: usize) -> bool {
        self.transmitted += 1;
        self.transmitted.is_multiple_of(self.every)
    }

    fn nominal_loss_rate(&self) -> f64 {
        1.0 / self.every as f64
    }
}

/// Samples `count` strictly ascending phase-boundary times inside
/// `(0, horizon)`, for building a [`ScheduledLoss`] with arbitrary phase
/// edges.
///
/// The scenario generator uses this to place regime changes anywhere in a
/// run — including mid-window and right next to each other — rather than
/// only at the hand-picked whole-second marks the built-in scenarios use.
/// Boundaries are deterministic per RNG state; fewer than `count` values
/// are returned only when the horizon is too small to hold that many
/// distinct microsecond ticks.
pub fn sample_phase_boundaries(rng: &mut StdRng, count: usize, horizon: SimTime) -> Vec<SimTime> {
    let span = horizon.as_micros();
    if span <= 1 || count == 0 {
        return Vec::new();
    }
    let mut boundaries: Vec<u64> = Vec::with_capacity(count);
    // Bounded rejection sampling: duplicates are rare for realistic
    // horizons, and the cap keeps tiny horizons from spinning.
    let mut attempts = 0usize;
    while boundaries.len() < count && attempts < count * 16 {
        attempts += 1;
        let candidate = rng.gen_range(1..span);
        if !boundaries.contains(&candidate) {
            boundaries.push(candidate);
        }
    }
    boundaries.sort_unstable();
    boundaries.into_iter().map(SimTime::from_micros).collect()
}

/// A loss model that switches between phases on a simulated-time schedule.
///
/// Each phase is an inner [`LossModel`] active from its start time until the
/// next phase begins (the last phase runs forever).  This is how the scenario
/// engine expresses time-varying link regimes — a loss spike, a congestion
/// ramp, a flapping link — without coupling the link model to any particular
/// workload: the schedule is part of the scenario description and the phase
/// in effect is chosen purely by the packet's transmit time, so runs stay
/// deterministic per RNG seed.
#[derive(Debug)]
pub struct ScheduledLoss {
    /// `(start, model)` pairs, sorted by start time.
    phases: Vec<(SimTime, Box<dyn LossModel>)>,
    /// Phase used by the most recent transmission (for reporting).
    current: usize,
}

impl ScheduledLoss {
    /// Creates a schedule from `(start, model)` phases.  Phases are sorted
    /// by start time; the first phase should start at [`SimTime::ZERO`]
    /// (times before the first phase fall back to it anyway).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(mut phases: Vec<(SimTime, Box<dyn LossModel>)>) -> Self {
        assert!(!phases.is_empty(), "loss schedule needs at least one phase");
        phases.sort_by_key(|(start, _)| *start);
        Self { phases, current: 0 }
    }

    /// Number of phases in the schedule.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Index of the phase in effect at `now`.
    pub fn phase_at(&self, now: SimTime) -> usize {
        // Last phase whose start time is not in the future; times before the
        // first phase use phase 0.
        self.phases
            .iter()
            .rposition(|(start, _)| *start <= now)
            .unwrap_or(0)
    }
}

impl LossModel for ScheduledLoss {
    fn should_drop(&mut self, rng: &mut StdRng, now: SimTime, packet_len: usize) -> bool {
        self.current = self.phase_at(now);
        self.phases[self.current].1.should_drop(rng, now, packet_len)
    }

    fn nominal_loss_rate(&self) -> f64 {
        // Reporting follows the phase the most recent transmission used.
        self.phases[self.current].1.nominal_loss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn measure(model: &mut dyn LossModel, rng: &mut StdRng, trials: usize) -> f64 {
        let mut dropped = 0usize;
        for _ in 0..trials {
            if model.should_drop(rng, SimTime::ZERO, 500) {
                dropped += 1;
            }
        }
        dropped as f64 / trials as f64
    }

    #[test]
    fn perfect_link_never_drops() {
        let mut model = PerfectLink;
        let mut r = rng(1);
        assert_eq!(measure(&mut model, &mut r, 10_000), 0.0);
        assert_eq!(model.nominal_loss_rate(), 0.0);
    }

    #[test]
    fn bernoulli_matches_configured_rate() {
        let mut model = BernoulliLoss::new(0.05);
        let mut r = rng(42);
        let observed = measure(&mut model, &mut r, 100_000);
        assert!((observed - 0.05).abs() < 0.005, "observed {observed}");
        assert_eq!(model.probability(), 0.05);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn bernoulli_rejects_bad_probability() {
        let _ = BernoulliLoss::new(1.5);
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut model = GilbertElliottLoss::new(0.02, 0.3, 0.0, 1.0);
        let mut r = rng(7);
        // Record the loss pattern and look for consecutive losses.
        let mut pattern = Vec::new();
        for _ in 0..20_000 {
            pattern.push(model.should_drop(&mut r, SimTime::ZERO, 500));
        }
        let losses = pattern.iter().filter(|&&l| l).count();
        assert!(losses > 0);
        // Count bursts (maximal runs of losses) and their average length.
        let mut bursts = 0usize;
        let mut in_burst = false;
        for &lost in &pattern {
            if lost && !in_burst {
                bursts += 1;
            }
            in_burst = lost;
        }
        let average_burst = losses as f64 / bursts as f64;
        assert!(
            average_burst > 1.5,
            "bursty model should lose packets in runs (avg run {average_burst})"
        );
    }

    #[test]
    fn gilbert_elliott_average_calibration() {
        for target in [0.01, 0.05, 0.10] {
            let mut model = GilbertElliottLoss::with_average_loss(target);
            let mut r = rng(99);
            let observed = measure(&mut model, &mut r, 200_000);
            assert!(
                (observed - target).abs() < target * 0.5 + 0.005,
                "target {target}, observed {observed}"
            );
        }
    }

    #[test]
    fn distance_model_matches_figure7_operating_point() {
        let model = DistanceLossModel::wavelan_2mbps();
        let at_25m = model.loss_probability(25.0);
        assert!(
            (0.008..=0.025).contains(&at_25m),
            "25 m loss should be near the paper's 1.46% (got {at_25m})"
        );
        assert!(model.loss_probability(5.0) < 0.005);
        assert!(model.loss_probability(35.0) > 0.04);
        assert!(model.loss_probability(45.0) > 0.20);
        // Monotone in distance.
        let mut previous = 0.0;
        for d in 0..60 {
            let p = model.loss_probability(d as f64);
            assert!(p >= previous);
            previous = p;
        }
    }

    #[test]
    fn distance_model_uses_current_distance() {
        let mut model = DistanceLossModel::wavelan_2mbps();
        model.set_distance(25.0);
        let mut r = rng(3);
        let observed = measure(&mut model, &mut r, 200_000);
        let expected = model.loss_probability(25.0);
        assert!((observed - expected).abs() < 0.004, "observed {observed}, expected {expected}");
        model.set_distance(-3.0);
        assert_eq!(model.distance(), 0.0);
    }

    #[test]
    fn scheduled_loss_switches_phases_on_time() {
        let mut model = ScheduledLoss::new(vec![
            (SimTime::from_secs(10), Box::new(BernoulliLoss::new(1.0)) as Box<dyn LossModel>),
            (SimTime::ZERO, Box::new(PerfectLink)),
            (SimTime::from_secs(20), Box::new(PerfectLink)),
        ]);
        assert_eq!(model.phase_count(), 3);
        // Phases are sorted by start time regardless of construction order.
        assert_eq!(model.phase_at(SimTime::from_secs(5)), 0);
        assert_eq!(model.phase_at(SimTime::from_secs(10)), 1);
        assert_eq!(model.phase_at(SimTime::from_secs(50)), 2);
        let mut r = rng(4);
        assert!(!model.should_drop(&mut r, SimTime::from_secs(1), 100));
        assert_eq!(model.nominal_loss_rate(), 0.0);
        assert!(model.should_drop(&mut r, SimTime::from_secs(15), 100));
        assert_eq!(model.nominal_loss_rate(), 1.0, "reporting follows the active phase");
        assert!(!model.should_drop(&mut r, SimTime::from_secs(25), 100));
        assert_eq!(model.nominal_loss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        let _ = ScheduledLoss::new(Vec::new());
    }

    #[test]
    fn stride_loss_drops_exactly_every_nth_packet() {
        let mut model = StrideLoss::new(4);
        assert_eq!(model.every(), 4);
        assert_eq!(model.nominal_loss_rate(), 0.25);
        let mut r = rng(11);
        let pattern: Vec<bool> =
            (0..12).map(|_| model.should_drop(&mut r, SimTime::ZERO, 100)).collect();
        let expected: Vec<bool> = (1..=12u64).map(|i| i % 4 == 0).collect();
        assert_eq!(pattern, expected, "drops land on the 4th, 8th, 12th transmissions");
    }

    #[test]
    #[should_panic(expected = "stride must be at least 1")]
    fn stride_loss_rejects_zero() {
        let _ = StrideLoss::new(0);
    }

    #[test]
    fn phase_boundaries_are_ascending_distinct_and_seeded() {
        let horizon = SimTime::from_secs(40);
        let mut a = rng(77);
        let mut b = rng(77);
        let first = sample_phase_boundaries(&mut a, 5, horizon);
        let second = sample_phase_boundaries(&mut b, 5, horizon);
        assert_eq!(first, second, "same seed, same boundaries");
        assert_eq!(first.len(), 5);
        for pair in first.windows(2) {
            assert!(pair[0] < pair[1], "boundaries strictly ascend");
        }
        assert!(first.iter().all(|&t| t > SimTime::ZERO && t < horizon));
        // Degenerate horizons return what fits instead of spinning.
        assert!(sample_phase_boundaries(&mut a, 3, SimTime::from_micros(1)).is_empty());
        assert!(sample_phase_boundaries(&mut a, 0, horizon).is_empty());
        let tiny = sample_phase_boundaries(&mut a, 10, SimTime::from_micros(4));
        assert!(tiny.len() <= 3, "only 3 distinct ticks exist below 4µs");
    }

    #[test]
    fn loss_models_are_deterministic_per_seed() {
        let mut a = BernoulliLoss::new(0.1);
        let mut b = BernoulliLoss::new(0.1);
        let mut ra = rng(5);
        let mut rb = rng(5);
        for _ in 0..1000 {
            assert_eq!(
                a.should_drop(&mut ra, SimTime::ZERO, 100),
                b.should_drop(&mut rb, SimTime::ZERO, 100)
            );
        }
    }
}
