//! A multicast wireless LAN: one access point, many receivers.
//!
//! This models the physical configuration of the paper's Figure 3: a proxy
//! node multicasts a stream over a wireless LAN to several mobile receivers.
//! Every receiver experiences **independent** loss (its own radio, position,
//! and interference), which is exactly the situation in which a single FEC
//! parity packet can repair different losses at different receivers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

use crate::link::{LinkConfig, TransmitOutcome};
use crate::loss::{DistanceLossModel, LossModel};
use crate::mobility::MobilityModel;
use crate::time::SimTime;

/// Identifies one receiver attached to a [`WirelessLan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReceiverId(usize);

impl ReceiverId {
    /// Raw index of the receiver within its LAN.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ReceiverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiver-{}", self.0)
    }
}

/// Per-receiver outcome of one broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Which receiver this record describes.
    pub receiver: ReceiverId,
    /// Delivery outcome (arrival time or loss).
    pub outcome: TransmitOutcome,
}

impl DeliveryRecord {
    /// Returns `true` if the packet reached this receiver.
    pub fn is_delivered(&self) -> bool {
        self.outcome.is_delivered()
    }
}

enum ReceiverLoss {
    Fixed(Box<dyn LossModel>),
    Mobile {
        loss: DistanceLossModel,
        mobility: Box<dyn MobilityModel>,
    },
}

impl fmt::Debug for ReceiverLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReceiverLoss::Fixed(model) => f.debug_tuple("Fixed").field(model).finish(),
            ReceiverLoss::Mobile { loss, mobility } => f
                .debug_struct("Mobile")
                .field("loss", loss)
                .field("mobility", mobility)
                .finish(),
        }
    }
}

#[derive(Debug)]
struct Receiver {
    id: ReceiverId,
    name: String,
    loss: ReceiverLoss,
    sent: u64,
    delivered: u64,
}

/// One access point multicasting to a set of wireless receivers.
#[derive(Debug)]
pub struct WirelessLan {
    config: LinkConfig,
    receivers: Vec<Receiver>,
    rng: StdRng,
    busy_until: SimTime,
    broadcasts: u64,
    unicasts: u64,
}

impl WirelessLan {
    /// Creates a LAN with the given radio configuration and RNG seed.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Self {
            config,
            receivers: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            busy_until: SimTime::ZERO,
            broadcasts: 0,
            unicasts: 0,
        }
    }

    /// Creates the paper's testbed: a 2 Mbps WaveLAN access point.
    pub fn wavelan_2mbps(seed: u64) -> Self {
        Self::new(LinkConfig::wavelan_2mbps(), seed)
    }

    /// Adds a receiver with a fixed (position-independent) loss model.
    pub fn add_receiver(&mut self, name: impl Into<String>, loss: Box<dyn LossModel>) -> ReceiverId {
        let id = ReceiverId(self.receivers.len());
        self.receivers.push(Receiver {
            id,
            name: name.into(),
            loss: ReceiverLoss::Fixed(loss),
            sent: 0,
            delivered: 0,
        });
        id
    }

    /// Adds a stationary receiver at a fixed distance, using the WaveLAN
    /// distance-loss calibration.
    pub fn add_receiver_at_distance(&mut self, name: impl Into<String>, distance_m: f64) -> ReceiverId {
        let mut loss = DistanceLossModel::wavelan_2mbps();
        loss.set_distance(distance_m);
        self.add_receiver(name, Box::new(loss))
    }

    /// Adds a mobile receiver whose distance follows `mobility` and whose
    /// loss follows `loss` evaluated at that distance.
    pub fn add_mobile_receiver(
        &mut self,
        name: impl Into<String>,
        loss: DistanceLossModel,
        mobility: Box<dyn MobilityModel>,
    ) -> ReceiverId {
        let id = ReceiverId(self.receivers.len());
        self.receivers.push(Receiver {
            id,
            name: name.into(),
            loss: ReceiverLoss::Mobile { loss, mobility },
            sent: 0,
            delivered: 0,
        });
        id
    }

    /// Identifiers of every attached receiver.
    pub fn receiver_ids(&self) -> Vec<ReceiverId> {
        self.receivers.iter().map(|r| r.id).collect()
    }

    /// Name of a receiver.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this LAN.
    pub fn receiver_name(&self, id: ReceiverId) -> &str {
        &self.receivers[id.0].name
    }

    /// Number of receivers on the LAN.
    pub fn receiver_count(&self) -> usize {
        self.receivers.len()
    }

    /// The radio configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Number of broadcasts performed.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Number of unicasts performed.
    pub fn unicasts(&self) -> u64 {
        self.unicasts
    }

    /// Current distance of a receiver, if it is distance-modelled.
    pub fn receiver_distance(&self, id: ReceiverId, now: SimTime) -> Option<f64> {
        match &self.receivers[id.0].loss {
            ReceiverLoss::Mobile { mobility, .. } => Some(mobility.distance_at(now)),
            ReceiverLoss::Fixed(_) => None,
        }
    }

    /// Current nominal loss rate of a receiver's channel.
    pub fn receiver_nominal_loss(&self, id: ReceiverId, now: SimTime) -> f64 {
        match &self.receivers[id.0].loss {
            ReceiverLoss::Fixed(model) => model.nominal_loss_rate(),
            ReceiverLoss::Mobile { loss, mobility } => {
                loss.loss_probability(mobility.distance_at(now))
            }
        }
    }

    /// Observed delivery rate (delivered / sent) of a receiver so far.
    pub fn receiver_delivery_rate(&self, id: ReceiverId) -> f64 {
        let receiver = &self.receivers[id.0];
        if receiver.sent == 0 {
            1.0
        } else {
            receiver.delivered as f64 / receiver.sent as f64
        }
    }

    /// Multicasts a packet of `len` bytes at time `now`, returning one
    /// delivery record per receiver.
    ///
    /// The access point serialises the packet once (all receivers share the
    /// medium); each receiver then independently loses or receives it, with
    /// its own jitter.
    pub fn broadcast(&mut self, now: SimTime, len: usize) -> Vec<DeliveryRecord> {
        self.broadcasts += 1;
        let start = if self.busy_until > now { self.busy_until } else { now };
        let serialization = self.config.serialization_delay_us(len);
        self.busy_until = start + serialization;
        let ready = self.busy_until + self.config.base_latency_us;

        let mut records = Vec::with_capacity(self.receivers.len());
        for receiver in &mut self.receivers {
            receiver.sent += 1;
            let dropped = match &mut receiver.loss {
                ReceiverLoss::Fixed(model) => model.should_drop(&mut self.rng, now, len),
                ReceiverLoss::Mobile { loss, mobility } => {
                    loss.set_distance(mobility.distance_at(now));
                    loss.should_drop(&mut self.rng, now, len)
                }
            };
            let outcome = if dropped {
                TransmitOutcome::Lost
            } else {
                receiver.delivered += 1;
                let jitter = if self.config.jitter_us == 0 {
                    0
                } else {
                    self.rng.gen_range(0..=self.config.jitter_us)
                };
                TransmitOutcome::Delivered {
                    arrival: ready + jitter,
                }
            };
            records.push(DeliveryRecord {
                receiver: receiver.id,
                outcome,
            });
        }
        records
    }

    /// Transmits a packet of `len` bytes at time `now` to **one** receiver,
    /// returning its delivery record.
    ///
    /// This is the per-lane transmission of a fanout session: unlike
    /// [`broadcast`](Self::broadcast), where every receiver hears the same
    /// transmission, each receiver lane sends its *own* adapted stream (its
    /// own FEC strength, rate, payload transform) to its own receiver.  The
    /// medium is still shared — the transmission serialises on the same
    /// radio and queues behind earlier transmissions — and the receiver's
    /// loss model and jitter draw from the LAN's single seeded RNG, so runs
    /// remain exactly reproducible as long as the call sequence is
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this LAN.
    pub fn unicast(&mut self, id: ReceiverId, now: SimTime, len: usize) -> DeliveryRecord {
        self.unicasts += 1;
        let start = if self.busy_until > now { self.busy_until } else { now };
        let serialization = self.config.serialization_delay_us(len);
        self.busy_until = start + serialization;
        let ready = self.busy_until + self.config.base_latency_us;

        let receiver = &mut self.receivers[id.0];
        receiver.sent += 1;
        let dropped = match &mut receiver.loss {
            ReceiverLoss::Fixed(model) => model.should_drop(&mut self.rng, now, len),
            ReceiverLoss::Mobile { loss, mobility } => {
                loss.set_distance(mobility.distance_at(now));
                loss.should_drop(&mut self.rng, now, len)
            }
        };
        let outcome = if dropped {
            TransmitOutcome::Lost
        } else {
            receiver.delivered += 1;
            let jitter = if self.config.jitter_us == 0 {
                0
            } else {
                self.rng.gen_range(0..=self.config.jitter_us)
            };
            TransmitOutcome::Delivered {
                arrival: ready + jitter,
            }
        };
        DeliveryRecord {
            receiver: receiver.id,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{BernoulliLoss, PerfectLink};
    use crate::mobility::LinearWalk;

    #[test]
    fn broadcast_reaches_every_receiver_with_perfect_links() {
        let mut lan = WirelessLan::wavelan_2mbps(1);
        let a = lan.add_receiver("laptop-a", Box::new(PerfectLink));
        let b = lan.add_receiver("laptop-b", Box::new(PerfectLink));
        let records = lan.broadcast(SimTime::ZERO, 500);
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(DeliveryRecord::is_delivered));
        assert_eq!(records[0].receiver, a);
        assert_eq!(records[1].receiver, b);
        assert_eq!(lan.broadcasts(), 1);
        assert_eq!(lan.receiver_name(a), "laptop-a");
        assert_eq!(lan.receiver_count(), 2);
    }

    #[test]
    fn receivers_lose_packets_independently() {
        let mut lan = WirelessLan::wavelan_2mbps(7);
        let a = lan.add_receiver("a", Box::new(BernoulliLoss::new(0.3)));
        let b = lan.add_receiver("b", Box::new(BernoulliLoss::new(0.3)));
        let mut a_only = 0u32;
        let mut b_only = 0u32;
        for i in 0..20_000u64 {
            let records = lan.broadcast(SimTime::from_micros(i * 4_000), 200);
            let a_ok = records[a.index()].is_delivered();
            let b_ok = records[b.index()].is_delivered();
            if a_ok && !b_ok {
                a_only += 1;
            }
            if b_ok && !a_ok {
                b_only += 1;
            }
        }
        // Independent losses: plenty of packets received by exactly one of
        // the two receivers (the case FEC parities repair for multicast).
        assert!(a_only > 1000, "a_only = {a_only}");
        assert!(b_only > 1000, "b_only = {b_only}");
        assert!((lan.receiver_delivery_rate(a) - 0.7).abs() < 0.02);
        assert!((lan.receiver_delivery_rate(b) - 0.7).abs() < 0.02);
    }

    #[test]
    fn stationary_receiver_at_25m_loses_about_1_5_percent() {
        let mut lan = WirelessLan::wavelan_2mbps(25);
        let id = lan.add_receiver_at_distance("laptop-25m", 25.0);
        for i in 0..100_000u64 {
            lan.broadcast(SimTime::from_micros(i * 2_500), 432);
        }
        let delivery = lan.receiver_delivery_rate(id);
        assert!(
            (0.975..=0.995).contains(&delivery),
            "delivery rate at 25 m should be ≈98.5% (got {delivery})"
        );
    }

    #[test]
    fn mobile_receiver_gets_lossier_as_it_walks_away() {
        let mut lan = WirelessLan::wavelan_2mbps(11);
        let id = lan.add_mobile_receiver(
            "walker",
            DistanceLossModel::wavelan_2mbps(),
            Box::new(LinearWalk::new(5.0, 45.0, SimTime::ZERO, 1.0)),
        );
        // Near the start of the walk the loss is tiny...
        let early = lan.receiver_nominal_loss(id, SimTime::from_secs(1));
        // ...and near the end it is large.
        let late = lan.receiver_nominal_loss(id, SimTime::from_secs(39));
        assert!(early < 0.01, "early loss {early}");
        assert!(late > 0.15, "late loss {late}");
        assert_eq!(lan.receiver_distance(id, SimTime::from_secs(20)), Some(25.0));

        // Measured delivery over the whole walk sits between the extremes.
        for i in 0..40_000u64 {
            lan.broadcast(SimTime::from_micros(i * 1_000), 432);
        }
        let rate = lan.receiver_delivery_rate(id);
        assert!(rate < 0.999 && rate > 0.5, "rate {rate}");
    }

    #[test]
    fn unicast_reaches_only_its_receiver_and_shares_the_medium() {
        let mut lan = WirelessLan::new(
            LinkConfig {
                jitter_us: 0,
                ..LinkConfig::wavelan_2mbps()
            },
            5,
        );
        let a = lan.add_receiver("a", Box::new(PerfectLink));
        let b = lan.add_receiver("b", Box::new(PerfectLink));
        let first = lan.unicast(a, SimTime::ZERO, 500);
        assert_eq!(first.receiver, a);
        assert!(first.is_delivered());
        // Only receiver a saw traffic.
        assert_eq!(lan.receiver_delivery_rate(b), 1.0);
        assert_eq!(lan.unicasts(), 1);
        // The medium serialises: a back-to-back unicast to b queues behind
        // the transmission to a.
        let second = lan.unicast(b, SimTime::ZERO, 500);
        let gap = second.outcome.arrival().unwrap() - first.outcome.arrival().unwrap();
        assert_eq!(gap, 2_000);
    }

    #[test]
    fn unicast_applies_the_receivers_own_loss_model() {
        let mut lan = WirelessLan::wavelan_2mbps(9);
        let lossy = lan.add_receiver("lossy", Box::new(BernoulliLoss::new(0.4)));
        let clean = lan.add_receiver("clean", Box::new(PerfectLink));
        for i in 0..5_000u64 {
            lan.unicast(lossy, SimTime::from_micros(i * 2_000), 200);
            lan.unicast(clean, SimTime::from_micros(i * 2_000), 200);
        }
        assert!((lan.receiver_delivery_rate(lossy) - 0.6).abs() < 0.05);
        assert_eq!(lan.receiver_delivery_rate(clean), 1.0);
    }

    #[test]
    fn serialization_makes_broadcasts_queue() {
        let mut lan = WirelessLan::new(
            LinkConfig {
                jitter_us: 0,
                ..LinkConfig::wavelan_2mbps()
            },
            3,
        );
        let id = lan.add_receiver("r", Box::new(PerfectLink));
        let first = lan.broadcast(SimTime::ZERO, 500)[id.index()]
            .outcome
            .arrival()
            .unwrap();
        let second = lan.broadcast(SimTime::ZERO, 500)[id.index()]
            .outcome
            .arrival()
            .unwrap();
        assert_eq!(second - first, 2_000);
    }

    #[test]
    fn fixed_receivers_have_no_distance() {
        let mut lan = WirelessLan::wavelan_2mbps(1);
        let id = lan.add_receiver("fixed", Box::new(PerfectLink));
        assert_eq!(lan.receiver_distance(id, SimTime::ZERO), None);
        assert_eq!(lan.receiver_nominal_loss(id, SimTime::ZERO), 0.0);
        assert_eq!(lan.receiver_delivery_rate(id), 1.0);
    }

    #[test]
    fn same_seed_reproduces_the_same_run() {
        let run = |seed: u64| -> Vec<bool> {
            let mut lan = WirelessLan::wavelan_2mbps(seed);
            let id = lan.add_receiver_at_distance("r", 30.0);
            (0..2_000u64)
                .map(|i| lan.broadcast(SimTime::from_micros(i * 3_000), 300)[id.index()].is_delivered())
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
