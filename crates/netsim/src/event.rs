//! A small discrete-event queue.
//!
//! The scenario runner and the multicast LAN use this queue to order packet
//! deliveries and timer expirations in simulated time.  Events scheduled for
//! the same instant are delivered in FIFO order (a strictly increasing tie
//! breaker), which keeps runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// An event scheduled for a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub time: SimTime,
    /// The payload handed back by [`EventQueue::pop`].
    pub payload: T,
    sequence: u64,
}

impl<T: Eq> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl<T: Eq> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_sequence: u64,
}

impl<T: Eq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl<T: Eq> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_sequence: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(ScheduledEvent {
            time,
            payload,
            sequence,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|event| (event.time, event.payload))
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `time`.
    pub fn pop_until(&mut self, time: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time().is_some_and(|t| t <= time) {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|event| event.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::from_millis(5), "c");
        queue.schedule(SimTime::from_millis(1), "a");
        queue.schedule(SimTime::from_millis(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut queue = EventQueue::new();
        for i in 0..10u32 {
            queue.schedule(SimTime::from_millis(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_the_horizon() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::from_millis(10), 'x');
        queue.schedule(SimTime::from_millis(20), 'y');
        assert_eq!(queue.pop_until(SimTime::from_millis(5)), None);
        assert_eq!(
            queue.pop_until(SimTime::from_millis(10)),
            Some((SimTime::from_millis(10), 'x'))
        );
        assert_eq!(queue.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(queue.len(), 1);
        assert!(!queue.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut queue = EventQueue::new();
        assert_eq!(queue.peek_time(), None);
        queue.schedule(SimTime::from_millis(4), ());
        queue.schedule(SimTime::from_millis(2), ());
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn default_is_empty() {
        let queue: EventQueue<u8> = EventQueue::default();
        assert!(queue.is_empty());
        assert_eq!(queue.len(), 0);
    }
}
