//! Simulated time.
//!
//! All simulator components measure time in microseconds since the start of
//! the simulation.  Using a newtype rather than `std::time::Instant` keeps
//! the simulation fully deterministic and independent of wall-clock time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative and finite");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncated).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier` in microseconds.
    pub fn micros_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    /// Adds a number of microseconds.
    fn add(self, micros: u64) -> SimTime {
        SimTime(self.0 + micros)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, micros: u64) {
        self.0 += micros;
    }
}

impl Sub for SimTime {
    type Output = u64;

    /// Difference in microseconds (saturating at zero).
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `micros` microseconds and returns the new time.
    pub fn advance_micros(&mut self, micros: u64) -> SimTime {
        self.now += micros;
        self.now
    }

    /// Advances the clock to `time` if `time` is in the future; a clock never
    /// moves backwards.
    pub fn advance_to(&mut self, time: SimTime) -> SimTime {
        if time > self.now {
            self.now = time;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert!((SimTime::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(1);
        assert_eq!((t + 500).as_micros(), 1_500);
        assert_eq!(SimTime::from_millis(2) - t, 1_000);
        assert_eq!(t - SimTime::from_millis(2), 0); // saturating
        assert_eq!(SimTime::from_millis(2).micros_since(t), 1_000);
    }

    #[test]
    fn clock_is_monotone() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance_micros(10);
        clock.advance_to(SimTime::from_micros(5));
        assert_eq!(clock.now().as_micros(), 10, "clock never moves backwards");
        clock.advance_to(SimTime::from_micros(50));
        assert_eq!(clock.now().as_micros(), 50);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
