//! Point-to-point link modelling: bandwidth, latency, jitter, and loss.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

use crate::loss::{LossModel, PerfectLink};
use crate::time::SimTime;

/// Whether a link is a wired LAN segment or a wireless (WaveLAN-class) hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Switched wired Ethernet: fast and effectively lossless.
    Wired,
    /// Shared wireless medium: slower, jittery, lossy.
    Wireless,
}

/// Static configuration of a [`SimLink`].
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Link kind (reporting only; behaviour is fully determined by the other
    /// fields).
    pub kind: LinkKind,
    /// Nominal bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation plus forwarding latency, in microseconds.
    pub base_latency_us: u64,
    /// Maximum additional random jitter, in microseconds (uniform).
    pub jitter_us: u64,
}

impl LinkConfig {
    /// A 100 Mbps switched wired LAN segment, as used between the sender and
    /// the proxy in the paper's testbed.
    pub fn wired_100mbps() -> Self {
        Self {
            kind: LinkKind::Wired,
            bandwidth_bps: 100_000_000,
            base_latency_us: 200,
            jitter_us: 50,
        }
    }

    /// A 2 Mbps WaveLAN wireless hop, the access technology of the paper's
    /// experiments.
    pub fn wavelan_2mbps() -> Self {
        Self {
            kind: LinkKind::Wireless,
            bandwidth_bps: 2_000_000,
            base_latency_us: 1_000,
            jitter_us: 2_000,
        }
    }

    /// An 11 Mbps 802.11b hop (used by ablation experiments to show the
    /// framework is not tied to one bit-rate).
    pub fn wifi_11mbps() -> Self {
        Self {
            kind: LinkKind::Wireless,
            bandwidth_bps: 11_000_000,
            base_latency_us: 800,
            jitter_us: 1_200,
        }
    }

    /// Transmission (serialisation) delay of a packet of `len` bytes, in
    /// microseconds.
    pub fn serialization_delay_us(&self, len: usize) -> u64 {
        if self.bandwidth_bps == 0 {
            return 0;
        }
        (len as u64 * 8 * 1_000_000) / self.bandwidth_bps
    }
}

/// Outcome of offering one packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransmitOutcome {
    /// The packet will arrive at the far end at the given time.
    Delivered {
        /// Arrival time at the receiver.
        arrival: SimTime,
    },
    /// The packet was lost in transit.
    Lost,
}

impl TransmitOutcome {
    /// Returns the arrival time if the packet was delivered.
    pub fn arrival(self) -> Option<SimTime> {
        match self {
            TransmitOutcome::Delivered { arrival } => Some(arrival),
            TransmitOutcome::Lost => None,
        }
    }

    /// Returns `true` if the packet was delivered.
    pub fn is_delivered(self) -> bool {
        matches!(self, TransmitOutcome::Delivered { .. })
    }
}

/// A simulated unidirectional link with its own loss model and statistics.
pub struct SimLink {
    config: LinkConfig,
    loss: Box<dyn LossModel>,
    /// Time at which the link finishes serialising the previous packet; used
    /// to model queueing on slow links.
    busy_until: SimTime,
    sent: u64,
    delivered: u64,
    lost: u64,
}

impl fmt::Debug for SimLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimLink")
            .field("config", &self.config)
            .field("loss", &self.loss)
            .field("sent", &self.sent)
            .field("delivered", &self.delivered)
            .field("lost", &self.lost)
            .finish()
    }
}

impl SimLink {
    /// Creates a link with the given configuration and loss model.
    pub fn new(config: LinkConfig, loss: Box<dyn LossModel>) -> Self {
        Self {
            config,
            loss,
            busy_until: SimTime::ZERO,
            sent: 0,
            delivered: 0,
            lost: 0,
        }
    }

    /// Creates a lossless link with the given configuration.
    pub fn lossless(config: LinkConfig) -> Self {
        Self::new(config, Box::new(PerfectLink))
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Mutable access to the loss model (e.g. so a mobility model can update
    /// the distance of a [`DistanceLossModel`](crate::DistanceLossModel)).
    pub fn loss_model_mut(&mut self) -> &mut dyn LossModel {
        self.loss.as_mut()
    }

    /// The loss model's current nominal loss rate.
    pub fn nominal_loss_rate(&self) -> f64 {
        self.loss.nominal_loss_rate()
    }

    /// Offers a packet of `len` bytes to the link at time `now`.
    ///
    /// Serialisation delay, queueing behind earlier packets, propagation
    /// latency, and random jitter are all accounted for in the arrival time.
    pub fn transmit(&mut self, rng: &mut StdRng, now: SimTime, len: usize) -> TransmitOutcome {
        self.sent += 1;
        // Queueing: the transmitter can only start once the previous packet
        // has left the interface.
        let start = if self.busy_until > now { self.busy_until } else { now };
        let serialization = self.config.serialization_delay_us(len);
        self.busy_until = start + serialization;

        if self.loss.should_drop(rng, now, len) {
            self.lost += 1;
            return TransmitOutcome::Lost;
        }
        let jitter = if self.config.jitter_us == 0 {
            0
        } else {
            rng.gen_range(0..=self.config.jitter_us)
        };
        let arrival = self.busy_until + self.config.base_latency_us + jitter;
        self.delivered += 1;
        TransmitOutcome::Delivered { arrival }
    }

    /// Number of packets offered to the link.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of packets lost.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Observed loss rate so far (0 if nothing was sent).
    pub fn observed_loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::BernoulliLoss;
    use rand::SeedableRng;

    #[test]
    fn serialization_delay_matches_bandwidth() {
        let config = LinkConfig::wavelan_2mbps();
        // 500 bytes at 2 Mbps = 4000 bits / 2e6 bps = 2 ms.
        assert_eq!(config.serialization_delay_us(500), 2_000);
        let wired = LinkConfig::wired_100mbps();
        assert_eq!(wired.serialization_delay_us(1250), 100);
    }

    #[test]
    fn lossless_link_delivers_everything_with_latency() {
        let mut link = SimLink::lossless(LinkConfig::wired_100mbps());
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100 {
            let outcome = link.transmit(&mut rng, SimTime::from_millis(i), 1000);
            let arrival = outcome.arrival().expect("lossless link");
            assert!(arrival > SimTime::from_millis(i));
        }
        assert_eq!(link.delivered(), 100);
        assert_eq!(link.lost(), 0);
        assert_eq!(link.observed_loss_rate(), 0.0);
    }

    #[test]
    fn lossy_link_reports_observed_rate() {
        let mut link = SimLink::new(
            LinkConfig::wavelan_2mbps(),
            Box::new(BernoulliLoss::new(0.2)),
        );
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..20_000u64 {
            link.transmit(&mut rng, SimTime::from_micros(i * 4_000), 200);
        }
        assert!((link.observed_loss_rate() - 0.2).abs() < 0.02);
        assert_eq!(link.sent(), 20_000);
        assert_eq!(link.delivered() + link.lost(), 20_000);
    }

    #[test]
    fn queueing_delays_back_to_back_packets() {
        // Two 500-byte packets offered at the same instant on a 2 Mbps link:
        // the second must arrive at least one serialisation time later.
        let mut link = SimLink::lossless(LinkConfig {
            jitter_us: 0,
            ..LinkConfig::wavelan_2mbps()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let first = link
            .transmit(&mut rng, SimTime::ZERO, 500)
            .arrival()
            .unwrap();
        let second = link
            .transmit(&mut rng, SimTime::ZERO, 500)
            .arrival()
            .unwrap();
        assert_eq!(second - first, 2_000);
    }

    #[test]
    fn transmissions_are_ordered_even_with_jitter_bounds() {
        let mut link = SimLink::lossless(LinkConfig::wavelan_2mbps());
        let mut rng = StdRng::seed_from_u64(11);
        let mut sent_at = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        let mut inversions = 0;
        for _ in 0..1000 {
            sent_at += 4_000; // one packet every 4 ms
            if let Some(arrival) = link.transmit(&mut rng, sent_at, 400).arrival() {
                if arrival < last_arrival {
                    inversions += 1;
                }
                last_arrival = arrival;
            }
        }
        // With 2 ms max jitter and 4 ms spacing, no reordering is possible.
        assert_eq!(inversions, 0);
    }

    #[test]
    fn outcome_helpers() {
        let delivered = TransmitOutcome::Delivered {
            arrival: SimTime::from_millis(1),
        };
        assert!(delivered.is_delivered());
        assert_eq!(delivered.arrival(), Some(SimTime::from_millis(1)));
        assert!(!TransmitOutcome::Lost.is_delivered());
        assert_eq!(TransmitOutcome::Lost.arrival(), None);
    }
}
