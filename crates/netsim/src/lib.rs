//! # rapidware-netsim — a deterministic wireless/wired LAN simulator
//!
//! The paper's evaluation runs on a physical testbed: a proxy workstation on
//! a wired LAN forwarding a live audio stream over a 2 Mbps WaveLAN wireless
//! network to laptops up to tens of meters from the access point.  That
//! hardware is not available, so this crate provides the substitute
//! substrate: a **deterministic discrete-event network simulator** with the
//! properties that matter to the experiments —
//!
//! * per-receiver packet loss driven by pluggable [`LossModel`]s
//!   (independent Bernoulli losses, bursty Gilbert–Elliott losses, and a
//!   distance-calibrated WaveLAN model whose loss rate at 25 m matches the
//!   1.46 % raw loss the paper reports in Figure 7);
//! * bandwidth, propagation latency, and jitter modelling per link;
//! * IP-multicast-like fan-out from an access point to many wireless
//!   receivers, where each receiver experiences independent losses (the
//!   property that makes block erasure codes attractive for multicast);
//! * mobility traces (the "walk from the office to the conference room"
//!   scenario of Section 3) that change a receiver's distance — and hence
//!   loss rate — over simulated time;
//! * a discrete-event queue and simulated clock so that every run is exactly
//!   reproducible from its RNG seed.
//!
//! ## Example
//!
//! ```
//! use rapidware_netsim::{LossModel, DistanceLossModel, SimTime};
//!
//! // Loss probability grows dramatically over a few tens of meters,
//! // as the paper observes on its WaveLAN testbed.
//! let model = DistanceLossModel::wavelan_2mbps();
//! assert!(model.loss_probability(5.0) < 0.01);
//! assert!(model.loss_probability(25.0) < 0.03);
//! assert!(model.loss_probability(45.0) > 0.10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod link;
mod loss;
mod mobility;
mod multicast;
mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use link::{LinkConfig, LinkKind, SimLink, TransmitOutcome};
pub use loss::{
    sample_phase_boundaries, BernoulliLoss, DistanceLossModel, GilbertElliottLoss, LossModel,
    PerfectLink, ScheduledLoss, StrideLoss,
};
pub use mobility::{LinearWalk, MobilityModel, StaticPosition, WaypointWalk};
pub use multicast::{DeliveryRecord, ReceiverId, WirelessLan};
pub use time::{SimClock, SimTime};
