//! Participant device descriptors.
//!
//! Heterogeneity is the whole point of the paper: "some using workstations
//! on high-speed local area networks, and others using wireless
//! hand-held/wearable devices".  A [`DeviceProfile`] captures the
//! capabilities that decide which proxy filters a participant needs.

use std::fmt;

/// Broad class of participant device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceClass {
    /// Wired desktop workstation on a fast LAN.
    Workstation,
    /// Wireless laptop (WaveLAN-class connectivity).
    Laptop,
    /// Wireless palmtop / handheld with little memory and a small screen.
    Palmtop,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceClass::Workstation => write!(f, "workstation"),
            DeviceClass::Laptop => write!(f, "laptop"),
            DeviceClass::Palmtop => write!(f, "palmtop"),
        }
    }
}

/// Capability descriptor for one participant's device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Device class.
    pub class: DeviceClass,
    /// Sustainable downlink bandwidth in bits per second.
    pub max_bitrate_bps: u64,
    /// Memory available for caching content, in kilobytes.
    pub cache_memory_kb: u64,
    /// Horizontal display resolution in pixels (drives transcoding).
    pub screen_width_px: u32,
    /// Whether the device is attached over a wireless link.
    pub wireless: bool,
}

impl DeviceProfile {
    /// A wired workstation: effectively unconstrained.
    pub fn workstation() -> Self {
        Self {
            class: DeviceClass::Workstation,
            max_bitrate_bps: 100_000_000,
            cache_memory_kb: 1_048_576,
            screen_width_px: 1600,
            wireless: false,
        }
    }

    /// A wireless laptop on a 2 Mbps WaveLAN.
    pub fn wireless_laptop() -> Self {
        Self {
            class: DeviceClass::Laptop,
            max_bitrate_bps: 2_000_000,
            cache_memory_kb: 65_536,
            screen_width_px: 1024,
            wireless: true,
        }
    }

    /// A wireless palmtop: low bandwidth, tiny cache, small screen.
    pub fn wireless_palmtop() -> Self {
        Self {
            class: DeviceClass::Palmtop,
            max_bitrate_bps: 500_000,
            cache_memory_kb: 2_048,
            screen_width_px: 240,
            wireless: true,
        }
    }

    /// Whether this device needs a proxy at all (any wireless or otherwise
    /// constrained device does).
    pub fn needs_proxy(&self) -> bool {
        self.wireless || self.max_bitrate_bps < 10_000_000
    }

    /// Whether content should be transcoded down for this device.
    pub fn needs_transcoding(&self) -> bool {
        self.max_bitrate_bps < 1_000_000 || self.screen_width_px < 640
    }

    /// Whether the device is memory-limited enough to need a proxy-side
    /// cache (the Pocket Pavilion case).
    pub fn needs_proxy_cache(&self) -> bool {
        self.cache_memory_kb < 16_384
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sensible_orderings() {
        let workstation = DeviceProfile::workstation();
        let laptop = DeviceProfile::wireless_laptop();
        let palmtop = DeviceProfile::wireless_palmtop();
        assert!(workstation.max_bitrate_bps > laptop.max_bitrate_bps);
        assert!(laptop.max_bitrate_bps > palmtop.max_bitrate_bps);
        assert!(laptop.cache_memory_kb > palmtop.cache_memory_kb);
    }

    #[test]
    fn proxy_requirements_follow_capabilities() {
        assert!(!DeviceProfile::workstation().needs_proxy());
        assert!(DeviceProfile::wireless_laptop().needs_proxy());
        assert!(DeviceProfile::wireless_palmtop().needs_proxy());
        assert!(!DeviceProfile::wireless_laptop().needs_transcoding());
        assert!(DeviceProfile::wireless_palmtop().needs_transcoding());
        assert!(!DeviceProfile::wireless_laptop().needs_proxy_cache());
        assert!(DeviceProfile::wireless_palmtop().needs_proxy_cache());
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceClass::Workstation.to_string(), "workstation");
        assert_eq!(DeviceClass::Palmtop.to_string(), "palmtop");
    }
}
