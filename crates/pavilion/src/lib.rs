//! # rapidware-pavilion — the collaborative-session substrate
//!
//! RAPIDware extends **Pavilion**, the authors' earlier middleware for
//! synchronous web-based collaboration: a leader's browser drives a session,
//! URL requests are multicast to every participant, the requested resources
//! are fetched once by the leader's proxy and multicast out, a leadership
//! protocol provides floor control, and per-device proxies adapt content for
//! resource-limited participants (caching for memory-limited handhelds,
//! transcoding for low-bandwidth links).
//!
//! This crate rebuilds that substrate so the composable-proxy experiments
//! have a realistic collaborative workload to run over:
//!
//! * [`DeviceProfile`] / [`DeviceClass`] — participant capability
//!   descriptors (wired workstation, wireless laptop, wireless palmtop).
//! * [`CollaborativeSession`] — membership plus the leadership/floor-control
//!   protocol (request, grant, release, leader hand-off).
//! * [`WebSource`] and [`Resource`] — a deterministic synthetic "web" whose
//!   resource sizes and types depend only on the URL, standing in for the
//!   live Internet the paper browsed.
//! * [`ResourceCache`] — the LRU cache a handheld's proxy uses (the
//!   "Pocket Pavilion" component).
//! * [`BrowsingWorkload`] — turns a session trace (leader loads URL, floor
//!   changes hands, …) into the packet stream a proxy carries.
//!
//! ## Example
//!
//! ```
//! use rapidware_pavilion::{CollaborativeSession, DeviceProfile};
//!
//! # fn main() -> Result<(), rapidware_pavilion::SessionError> {
//! let mut session = CollaborativeSession::new("design-review");
//! let leader = session.join("alice", DeviceProfile::workstation());
//! let palmtop = session.join("bob", DeviceProfile::wireless_palmtop());
//!
//! // The first member leads; floor control hands leadership over.
//! assert_eq!(session.leader(), Some(leader));
//! session.request_floor(palmtop)?;
//! session.release_floor(leader)?;
//! assert_eq!(session.leader(), Some(palmtop));
//!
//! // Resource-limited participants get per-device proxies.
//! assert_eq!(session.members_needing_proxies(), vec![palmtop]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod browse;
mod cache;
mod device;
mod session;

pub use browse::{BrowsingWorkload, Resource, WebSource};
pub use cache::{CacheStats, ResourceCache};
pub use device::{DeviceClass, DeviceProfile};
pub use session::{CollaborativeSession, FloorEvent, Member, MemberId, SessionError};
