//! The proxy-side resource cache for memory-limited handhelds.
//!
//! "Pocket Pavilion" offloads caching from handheld devices onto their
//! proxy: the proxy keeps recently multicast resources so that a handheld
//! that scrolls back (or joins late) does not force a re-fetch over the
//! wireless link.  The cache is a byte-bounded LRU.

use std::collections::HashMap;

/// Hit/miss statistics of a [`ResourceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the resource.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Resources evicted to make room.
    pub evictions: u64,
    /// Bytes currently cached.
    pub used_bytes: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (1 when there were no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A byte-bounded LRU cache of web resources keyed by URL.
#[derive(Debug)]
pub struct ResourceCache {
    capacity_bytes: u64,
    entries: HashMap<String, CacheEntry>,
    clock: u64,
    stats: CacheStats,
}

#[derive(Debug)]
struct CacheEntry {
    size: u64,
    last_used: u64,
}

impl ResourceCache {
    /// Creates a cache bounded to `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be non-zero");
        Self {
            capacity_bytes,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache sized for a device with `cache_memory_kb` of memory,
    /// reserving a quarter of it for cached resources.
    pub fn for_device_memory_kb(cache_memory_kb: u64) -> Self {
        Self::new((cache_memory_kb * 1024 / 4).max(1))
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resources currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a URL, marking it as recently used.  Returns the cached
    /// size if present.
    pub fn lookup(&mut self, url: &str) -> Option<u64> {
        self.clock += 1;
        match self.entries.get_mut(url) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.stats.hits += 1;
                Some(entry.size)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a resource of `size` bytes, evicting
    /// least-recently-used entries until it fits.  Resources larger than
    /// the whole cache are not cached at all.
    pub fn insert(&mut self, url: &str, size: u64) {
        self.clock += 1;
        if size > self.capacity_bytes {
            return;
        }
        if let Some(entry) = self.entries.get_mut(url) {
            self.stats.used_bytes = self.stats.used_bytes - entry.size + size;
            entry.size = size;
            entry.last_used = self.clock;
            return;
        }
        while self.stats.used_bytes + size > self.capacity_bytes {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(url, _)| url.clone());
            match victim {
                Some(victim) => {
                    if let Some(entry) = self.entries.remove(&victim) {
                        self.stats.used_bytes -= entry.size;
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        self.entries.insert(
            url.to_string(),
            CacheEntry {
                size,
                last_used: self.clock,
            },
        );
        self.stats.used_bytes += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_hit() {
        let mut cache = ResourceCache::new(10_000);
        assert_eq!(cache.lookup("http://a"), None);
        cache.insert("http://a", 500);
        assert_eq!(cache.lookup("http://a"), Some(500));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.used_bytes, 500);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut cache = ResourceCache::new(1_000);
        cache.insert("a", 400);
        cache.insert("b", 400);
        // Touch "a" so "b" becomes the LRU victim.
        cache.lookup("a");
        cache.insert("c", 400);
        assert_eq!(cache.lookup("a"), Some(400));
        assert_eq!(cache.lookup("b"), None, "b was evicted");
        assert_eq!(cache.lookup("c"), Some(400));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().used_bytes <= 1_000);
    }

    #[test]
    fn oversized_resources_are_not_cached() {
        let mut cache = ResourceCache::new(100);
        cache.insert("huge", 1_000);
        assert_eq!(cache.lookup("huge"), None);
        assert_eq!(cache.stats().used_bytes, 0);
    }

    #[test]
    fn reinserting_updates_size_in_place() {
        let mut cache = ResourceCache::new(1_000);
        cache.insert("a", 300);
        cache.insert("a", 500);
        assert_eq!(cache.stats().used_bytes, 500);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn device_sized_cache() {
        let cache = ResourceCache::for_device_memory_kb(2_048);
        assert_eq!(cache.capacity_bytes(), 2_048 * 1024 / 4);
        assert!((cache.stats().hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = ResourceCache::new(0);
    }
}
