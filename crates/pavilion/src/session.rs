//! Session membership and the leadership (floor-control) protocol.
//!
//! Pavilion sessions are leader-driven: one participant holds the floor,
//! that participant's browsing drives everyone else's view, and the floor
//! can be requested by, and granted to, other participants (Figure 1 of the
//! paper shows the request/grant exchange between the previous and new
//! leader).

use std::collections::VecDeque;
use std::fmt;

use crate::device::DeviceProfile;

/// Identifies one participant within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId(u32);

impl MemberId {
    /// Raw index of the member within its session.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "member-{}", self.0)
    }
}

/// One participant in a collaborative session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Identifier within the session.
    pub id: MemberId,
    /// Display name.
    pub name: String,
    /// The participant's device capabilities.
    pub device: DeviceProfile,
}

/// A floor-control event recorded by the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloorEvent {
    /// A member asked for the floor and was queued.
    Requested(MemberId),
    /// The floor was granted to a member (it becomes the leader).
    Granted(MemberId),
    /// The leader released the floor with nobody waiting.
    Released(MemberId),
    /// A member left the session.
    Left(MemberId),
}

/// Errors returned by session operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The member id does not belong to this session.
    UnknownMember(MemberId),
    /// Only the current leader may perform the attempted operation.
    NotTheLeader(MemberId),
    /// The session has no members.
    Empty,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownMember(id) => write!(f, "unknown member {id}"),
            SessionError::NotTheLeader(id) => write!(f, "{id} does not hold the floor"),
            SessionError::Empty => write!(f, "session has no members"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A Pavilion collaborative session: members, leader, and floor queue.
#[derive(Debug)]
pub struct CollaborativeSession {
    name: String,
    members: Vec<Member>,
    leader: Option<MemberId>,
    floor_queue: VecDeque<MemberId>,
    events: Vec<FloorEvent>,
}

impl CollaborativeSession {
    /// Creates an empty session.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            members: Vec::new(),
            leader: None,
            floor_queue: VecDeque::new(),
            events: Vec::new(),
        }
    }

    /// Session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a participant.  The first participant to join becomes the
    /// leader.
    pub fn join(&mut self, name: impl Into<String>, device: DeviceProfile) -> MemberId {
        let id = MemberId(self.members.len() as u32);
        self.members.push(Member {
            id,
            name: name.into(),
            device,
        });
        if self.leader.is_none() {
            self.leader = Some(id);
            self.events.push(FloorEvent::Granted(id));
        }
        id
    }

    /// The current members.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// Looks up a member.
    pub fn member(&self, id: MemberId) -> Option<&Member> {
        self.members.iter().find(|m| m.id == id)
    }

    /// The current leader, if any.
    pub fn leader(&self) -> Option<MemberId> {
        self.leader
    }

    /// Members currently waiting for the floor, in request order.
    pub fn floor_queue(&self) -> Vec<MemberId> {
        self.floor_queue.iter().copied().collect()
    }

    /// The floor-control event log.
    pub fn events(&self) -> &[FloorEvent] {
        &self.events
    }

    /// Members whose devices need a proxy (wireless or constrained).
    pub fn members_needing_proxies(&self) -> Vec<MemberId> {
        self.members
            .iter()
            .filter(|m| m.device.needs_proxy())
            .map(|m| m.id)
            .collect()
    }

    fn check_member(&self, id: MemberId) -> Result<(), SessionError> {
        if self.member(id).is_some() {
            Ok(())
        } else {
            Err(SessionError::UnknownMember(id))
        }
    }

    /// A member requests the floor.  If nobody holds it the request is
    /// granted immediately; otherwise the member joins the queue.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::UnknownMember`] for ids not in this session.
    pub fn request_floor(&mut self, id: MemberId) -> Result<(), SessionError> {
        self.check_member(id)?;
        if self.leader == Some(id) || self.floor_queue.contains(&id) {
            return Ok(());
        }
        if self.leader.is_none() {
            self.leader = Some(id);
            self.events.push(FloorEvent::Granted(id));
        } else {
            self.floor_queue.push_back(id);
            self.events.push(FloorEvent::Requested(id));
        }
        Ok(())
    }

    /// The current leader hands the floor to the next requester (or simply
    /// releases it if nobody is waiting).  Returns the new leader, if any.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::NotTheLeader`] if `id` is not the current
    /// leader, or [`SessionError::UnknownMember`].
    pub fn release_floor(&mut self, id: MemberId) -> Result<Option<MemberId>, SessionError> {
        self.check_member(id)?;
        if self.leader != Some(id) {
            return Err(SessionError::NotTheLeader(id));
        }
        match self.floor_queue.pop_front() {
            Some(next) => {
                self.leader = Some(next);
                self.events.push(FloorEvent::Granted(next));
                Ok(Some(next))
            }
            None => {
                self.leader = None;
                self.events.push(FloorEvent::Released(id));
                Ok(None)
            }
        }
    }

    /// Removes a member from the session.  If it was the leader, the floor
    /// passes to the next requester.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::UnknownMember`] for ids not in this session.
    pub fn leave(&mut self, id: MemberId) -> Result<(), SessionError> {
        self.check_member(id)?;
        self.members.retain(|m| m.id != id);
        self.floor_queue.retain(|&queued| queued != id);
        self.events.push(FloorEvent::Left(id));
        if self.leader == Some(id) {
            self.leader = self.floor_queue.pop_front();
            if let Some(next) = self.leader {
                self.events.push(FloorEvent::Granted(next));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_member_session() -> (CollaborativeSession, MemberId, MemberId, MemberId) {
        let mut session = CollaborativeSession::new("design-review");
        let alice = session.join("alice", DeviceProfile::workstation());
        let bob = session.join("bob", DeviceProfile::wireless_laptop());
        let carol = session.join("carol", DeviceProfile::wireless_palmtop());
        (session, alice, bob, carol)
    }

    #[test]
    fn first_member_becomes_leader() {
        let (session, alice, _, _) = three_member_session();
        assert_eq!(session.leader(), Some(alice));
        assert_eq!(session.members().len(), 3);
        assert_eq!(session.name(), "design-review");
        assert_eq!(session.member(alice).unwrap().name, "alice");
    }

    #[test]
    fn floor_requests_queue_and_grant_in_order() {
        let (mut session, alice, bob, carol) = three_member_session();
        session.request_floor(bob).unwrap();
        session.request_floor(carol).unwrap();
        // Duplicate requests are idempotent.
        session.request_floor(bob).unwrap();
        assert_eq!(session.floor_queue(), vec![bob, carol]);
        // Leader passes the floor.
        assert_eq!(session.release_floor(alice).unwrap(), Some(bob));
        assert_eq!(session.leader(), Some(bob));
        assert_eq!(session.release_floor(bob).unwrap(), Some(carol));
        // Nobody waiting: floor released entirely.
        assert_eq!(session.release_floor(carol).unwrap(), None);
        assert_eq!(session.leader(), None);
        // Next request grabs the free floor immediately.
        session.request_floor(alice).unwrap();
        assert_eq!(session.leader(), Some(alice));
    }

    #[test]
    fn only_the_leader_can_release() {
        let (mut session, _alice, bob, _) = three_member_session();
        assert_eq!(
            session.release_floor(bob).unwrap_err(),
            SessionError::NotTheLeader(bob)
        );
    }

    #[test]
    fn unknown_members_are_rejected() {
        let (mut session, _, _, _) = three_member_session();
        let ghost = MemberId(99);
        assert_eq!(
            session.request_floor(ghost).unwrap_err(),
            SessionError::UnknownMember(ghost)
        );
        assert_eq!(
            session.leave(ghost).unwrap_err(),
            SessionError::UnknownMember(ghost)
        );
    }

    #[test]
    fn leader_leaving_hands_off_the_floor() {
        let (mut session, alice, bob, carol) = three_member_session();
        session.request_floor(carol).unwrap();
        session.leave(alice).unwrap();
        assert_eq!(session.leader(), Some(carol));
        assert_eq!(session.members().len(), 2);
        // Bob leaving (not leader) does not change the floor.
        session.leave(bob).unwrap();
        assert_eq!(session.leader(), Some(carol));
        assert!(session
            .events()
            .iter()
            .any(|e| matches!(e, FloorEvent::Left(_))));
    }

    #[test]
    fn proxy_needs_follow_device_profiles() {
        let (session, alice, bob, carol) = three_member_session();
        let needing = session.members_needing_proxies();
        assert!(!needing.contains(&alice));
        assert!(needing.contains(&bob));
        assert!(needing.contains(&carol));
    }

    #[test]
    fn error_display() {
        assert!(SessionError::Empty.to_string().contains("no members"));
        assert!(SessionError::UnknownMember(MemberId(4))
            .to_string()
            .contains("member-4"));
    }
}
