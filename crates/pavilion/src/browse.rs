//! Collaborative browsing: the synthetic web and the packetised workload.
//!
//! In Pavilion the leader's proxy fetches each requested resource from the
//! network and multicasts the contents to the group.  We cannot browse the
//! 2001 Internet, so [`WebSource`] synthesises resources deterministically
//! from their URLs (size and content type depend only on the URL string),
//! and [`BrowsingWorkload`] converts a sequence of page loads into the
//! packet stream that the leader's proxy multicasts — which is exactly the
//! traffic the composable-proxy filters then operate on.

use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};

/// One fetched web resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// The resource's URL.
    pub url: String,
    /// Content type (`text/html`, `image/jpeg`, …).
    pub content_type: String,
    /// Size in bytes.
    pub size: u64,
}

/// A deterministic stand-in for the web: resource properties are a pure
/// function of the URL.
#[derive(Debug, Clone, Default)]
pub struct WebSource {
    fetches: u64,
    bytes_served: u64,
}

fn fnv1a(data: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in data.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl WebSource {
    /// Creates a fresh synthetic web.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches a URL, returning its (synthetic but deterministic) resource.
    pub fn fetch(&mut self, url: &str) -> Resource {
        let hash = fnv1a(url);
        let (content_type, base, spread): (&str, u64, u64) =
            if url.ends_with(".jpg") || url.ends_with(".png") || url.contains("/images/") {
                ("image/jpeg", 20_000, 180_000)
            } else if url.ends_with(".css") || url.ends_with(".js") {
                ("text/plain", 2_000, 30_000)
            } else {
                ("text/html", 4_000, 60_000)
            };
        let size = base + hash % spread;
        self.fetches += 1;
        self.bytes_served += size;
        Resource {
            url: url.to_string(),
            content_type: content_type.to_string(),
            size,
        }
    }

    /// Number of fetches served.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Total bytes served.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }
}

/// Converts page loads into the packet stream the leader's proxy multicasts.
#[derive(Debug)]
pub struct BrowsingWorkload {
    stream: StreamId,
    mtu: usize,
    next_seq: SeqNo,
    web: WebSource,
}

impl BrowsingWorkload {
    /// Creates a workload generator for one multicast stream, splitting
    /// resources into `mtu`-byte packets.
    ///
    /// # Panics
    ///
    /// Panics if `mtu` is zero.
    pub fn new(stream: StreamId, mtu: usize) -> Self {
        assert!(mtu > 0, "mtu must be non-zero");
        Self {
            stream,
            mtu,
            next_seq: SeqNo::ZERO,
            web: WebSource::new(),
        }
    }

    /// Sequence number the next packet will carry.
    pub fn next_seq(&self) -> SeqNo {
        self.next_seq
    }

    /// Access to the underlying synthetic web (for statistics).
    pub fn web(&self) -> &WebSource {
        &self.web
    }

    /// The leader loads `url`: fetch it and return the resource plus the
    /// packets that carry its contents to the group.
    pub fn load_url(&mut self, url: &str, timestamp_us: u64) -> (Resource, Vec<Packet>) {
        let resource = self.web.fetch(url);
        let mut packets = Vec::new();
        let mut remaining = resource.size as usize;
        let mut offset = 0u64;
        while remaining > 0 {
            let chunk = remaining.min(self.mtu);
            let payload: Vec<u8> = (0..chunk)
                .map(|i| {
                    let position = offset + i as u64;
                    (fnv1a(&resource.url).wrapping_add(position) % 251) as u8
                })
                .collect();
            let seq = self.next_seq;
            self.next_seq = seq.next();
            packets.push(Packet::with_timestamp(
                self.stream,
                seq,
                PacketKind::Data,
                timestamp_us,
                payload,
            ));
            remaining -= chunk;
            offset += chunk as u64;
        }
        (resource, packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetches_are_deterministic_per_url() {
        let mut web_a = WebSource::new();
        let mut web_b = WebSource::new();
        let first = web_a.fetch("http://example.edu/index.html");
        let second = web_b.fetch("http://example.edu/index.html");
        assert_eq!(first, second);
        assert_ne!(first, web_a.fetch("http://example.edu/other.html"));
        assert_eq!(web_a.fetches(), 2);
        assert!(web_a.bytes_served() > 0);
    }

    #[test]
    fn content_types_follow_extensions() {
        let mut web = WebSource::new();
        assert_eq!(web.fetch("http://x/photo.jpg").content_type, "image/jpeg");
        assert_eq!(web.fetch("http://x/style.css").content_type, "text/plain");
        assert_eq!(web.fetch("http://x/page").content_type, "text/html");
        // Images are on average larger than stylesheets.
        assert!(web.fetch("http://x/images/big.png").size >= 20_000);
    }

    #[test]
    fn page_loads_are_packetised_at_the_mtu() {
        let mut workload = BrowsingWorkload::new(StreamId::new(7), 1_400);
        let (resource, packets) = workload.load_url("http://example.edu/lecture.html", 1_000);
        let expected_packets = resource.size.div_ceil(1_400);
        assert_eq!(packets.len() as u64, expected_packets);
        let carried: u64 = packets.iter().map(|p| p.payload_len() as u64).sum();
        assert_eq!(carried, resource.size);
        for (i, packet) in packets.iter().enumerate() {
            assert_eq!(packet.seq().value(), i as u64);
            assert_eq!(packet.kind(), PacketKind::Data);
            assert_eq!(packet.timestamp_us(), 1_000);
        }
    }

    #[test]
    fn sequence_numbers_continue_across_page_loads() {
        let mut workload = BrowsingWorkload::new(StreamId::new(7), 1_000);
        let (_, first) = workload.load_url("http://a", 0);
        let (_, second) = workload.load_url("http://b", 10);
        assert_eq!(
            second[0].seq().value(),
            first.last().unwrap().seq().value() + 1
        );
        assert_eq!(workload.next_seq().value(), (first.len() + second.len()) as u64);
        assert_eq!(workload.web().fetches(), 2);
    }

    #[test]
    #[should_panic(expected = "mtu must be non-zero")]
    fn zero_mtu_panics() {
        let _ = BrowsingWorkload::new(StreamId::new(1), 0);
    }
}
