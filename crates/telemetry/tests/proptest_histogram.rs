//! Conservation properties of the sharded log2 histogram.
//!
//! The histogram's contract is that nothing is ever lost: the observation
//! count *is* the sum of the bucket counts, merging shards conserves it
//! exactly, and a snapshot taken while other threads are still recording
//! never undercounts the records that completed before the snapshot began
//! — and never panics, whatever the interleaving.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rapidware_telemetry::{Histogram, HistogramSnapshot, BUCKETS};

const THREADS: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent recording from 8 threads conserves every observation:
    /// sum of bucket counts == observations, sum matches, and the lowest /
    /// highest non-empty buckets bracket the recorded min / max.
    #[test]
    fn concurrent_recording_conserves(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let hist = Arc::new(Histogram::new());
        let per_thread: Vec<Vec<u64>> = (0..THREADS)
            .map(|t| values.iter().skip(t).step_by(THREADS).copied().collect())
            .collect();
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|chunk| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for value in chunk {
                        hist.record(value);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("recorder thread");
        }

        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(snap.sum, expected_sum);
        prop_assert_eq!(snap.min, values.iter().copied().min().expect("non-empty"));
        prop_assert_eq!(snap.max, values.iter().copied().max().expect("non-empty"));

        // Bucket bounds honored: the min lies in the lowest non-empty
        // bucket's range, the max in the highest non-empty bucket's range.
        let lowest = snap.buckets.iter().position(|&c| c > 0).expect("non-empty");
        let highest = snap.buckets.iter().rposition(|&c| c > 0).expect("non-empty");
        prop_assert!(bucket_holds(lowest, snap.min), "min {} outside bucket {}", snap.min, lowest);
        prop_assert!(bucket_holds(highest, snap.max), "max {} outside bucket {}", snap.max, highest);

        // Percentiles are monotone and end at the recorded max.
        let p50 = snap.percentile(0.50);
        let p90 = snap.percentile(0.90);
        let p99 = snap.percentile(0.99);
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= snap.max);
        prop_assert_eq!(snap.percentile(1.0), snap.max);
    }

    /// Snapshots raced against live recorders never panic and never
    /// undercount: every snapshot sees at least the records completed
    /// before it was taken, and the final snapshot sees all of them.
    #[test]
    fn snapshot_during_record_never_undercounts(
        pre_recorded in 0u64..500,
        concurrent in 1u64..500,
    ) {
        let hist = Arc::new(Histogram::new());
        for value in 0..pre_recorded {
            hist.record(value);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let recorders: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for value in 0..concurrent {
                        hist.record(t * 10_000 + value);
                    }
                })
            })
            .collect();
        let snapshotter = {
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut taken: Vec<HistogramSnapshot> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    taken.push(hist.snapshot());
                }
                taken
            })
        };

        for handle in recorders {
            handle.join().expect("recorder thread");
        }
        stop.store(true, Ordering::Relaxed);
        let taken = snapshotter.join().expect("snapshot thread");

        let expected = pre_recorded + THREADS as u64 * concurrent;
        for snap in &taken {
            // Anything recorded before the snapshot loop started must be
            // visible, and no snapshot can invent observations.
            prop_assert!(snap.count() >= pre_recorded);
            prop_assert!(snap.count() <= expected);
        }
        prop_assert_eq!(hist.snapshot().count(), expected);
    }

    /// Merging snapshots conserves exactly: counts and sums add, min/max
    /// take the extremes, and merging an empty snapshot is the identity.
    /// Values stay in the duration-like range where per-shard sums cannot
    /// wrap (the histogram's contract is nanosecond durations, not
    /// arbitrary u64s).
    #[test]
    fn merging_snapshots_conserves(
        a in proptest::collection::vec(0u64..=u64::from(u32::MAX), 0..100),
        b in proptest::collection::vec(0u64..=u64::from(u32::MAX), 0..100),
    ) {
        let record_all = |values: &[u64]| {
            let hist = Histogram::new();
            for &value in values {
                hist.record(value);
            }
            hist.snapshot()
        };
        let snap_a = record_all(&a);
        let snap_b = record_all(&b);

        let mut merged = snap_a.clone();
        merged.merge(&snap_b);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        let expected_sum = a.iter().chain(&b).fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(merged.sum, expected_sum);
        if let Some(min) = a.iter().chain(&b).copied().min() {
            prop_assert_eq!(merged.min, min);
            prop_assert_eq!(merged.max, a.iter().chain(&b).copied().max().expect("non-empty"));
        } else {
            prop_assert!(merged.is_empty());
        }

        let mut identity = snap_a.clone();
        identity.merge(&HistogramSnapshot::default());
        prop_assert_eq!(identity, snap_a);
    }
}

/// `true` if `value` falls inside bucket `index`'s range (bucket 0 holds
/// only 0; bucket b holds `[2^(b-1), 2^b)`, saturating at the top).
fn bucket_holds(index: usize, value: u64) -> bool {
    if index == 0 {
        value == 0
    } else if index >= BUCKETS - 1 {
        value >= 1u64 << (BUCKETS - 2)
    } else {
        let lower = 1u64 << (index - 1);
        let upper = 1u64 << index;
        value >= lower && value < upper
    }
}
