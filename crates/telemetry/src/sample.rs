//! 1-in-N sampling for expensive measurements.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free 1-in-N sampler.
///
/// Per-filter stage timing costs two clock reads per filter per batch;
/// recording it on every batch would tax the hot path for data nobody
/// reads at that resolution.  A [`Sampler`] admits exactly one in every
/// `every` calls (the first call fires, so short-lived chains still get
/// samples), bounding the instrumentation cost to `1/every` of the traffic.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    ticks: AtomicU64,
}

impl Sampler {
    /// A sampler firing once per `every` calls; `every == 0` is treated as
    /// 1 (fire always).
    pub fn new(every: u64) -> Self {
        Self {
            every: every.max(1),
            ticks: AtomicU64::new(0),
        }
    }

    /// Returns `true` on the sampled calls (the first, then every
    /// `every`-th after that).
    pub fn fire(&self) -> bool {
        self.ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }

    /// The sampling period.
    pub fn every(&self) -> u64 {
        self.every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_one_in_n() {
        let sampler = Sampler::new(4);
        let fired: Vec<bool> = (0..8).map(|_| sampler.fire()).collect();
        assert_eq!(fired, vec![true, false, false, false, true, false, false, false]);
    }

    #[test]
    fn zero_period_means_always() {
        let sampler = Sampler::new(0);
        assert_eq!(sampler.every(), 1);
        assert!(sampler.fire() && sampler.fire());
    }
}
