//! The [`StatSource`] trait: one uniform snapshot surface over the
//! per-subsystem stats structs.

use std::fmt::Write as _;

/// One named numeric reading from a stats struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    /// Short metric key (e.g. `items`, `rx-datagrams`, `sealed`).
    pub name: String,
    /// The reading.
    pub value: u64,
}

impl Metric {
    /// A metric from any stringish name.
    pub fn new(name: impl Into<String>, value: u64) -> Self {
        Self {
            name: name.into(),
            value,
        }
    }

    /// The same metric with `prefix.` prepended to its key, for folding a
    /// struct's metrics into a flat registry namespace.
    pub fn prefixed(self, prefix: &str) -> Self {
        Self {
            name: format!("{prefix}.{}", self.name),
            value: self.value,
        }
    }
}

/// A stats struct that can report itself as a flat list of metrics.
///
/// `PipeStats`, `TransportStats`, `SecureChannelStats`, and the per-lane
/// stats all implement this, so the control protocol renders every status
/// segment through one [`format_metrics`] helper and `Proxy::telemetry()`
/// folds every legacy struct into the same [`TelemetrySnapshot`](crate::TelemetrySnapshot)
/// (registering *into* the snapshot rather than being replaced by it).
pub trait StatSource {
    /// The current readings, in display order.
    fn snapshot(&self) -> Vec<Metric>;
}

/// Renders metrics as the control protocol's `key:value` pairs, space
/// separated: `items:42 pauses:1 reconnects:1 blocked-sends:0`.
pub fn format_metrics(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for (index, metric) in metrics.iter().enumerate() {
        if index > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{}:{}", metric.name, metric.value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;

    impl StatSource for Fixed {
        fn snapshot(&self) -> Vec<Metric> {
            vec![Metric::new("a", 1), Metric::new("b", 2)]
        }
    }

    #[test]
    fn renders_key_value_pairs() {
        assert_eq!(format_metrics(&Fixed.snapshot()), "a:1 b:2");
        assert_eq!(format_metrics(&[]), "");
    }

    #[test]
    fn prefixing_builds_registry_names() {
        let metric = Metric::new("items", 7).prefixed("stream.audio");
        assert_eq!(metric.name, "stream.audio.items");
        assert_eq!(metric.value, 7);
    }
}
