//! Sharded log2-bucketed latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets per histogram.
///
/// Bucket 0 holds the value 0; bucket `b > 0` holds values in
/// `[2^(b-1), 2^b)`; the last bucket absorbs everything from `2^62` up.
/// 64 buckets cover the full `u64` nanosecond range, so no observation is
/// ever out of range and the bucket array never needs to grow.
pub const BUCKETS: usize = 64;

/// Number of independent shards per histogram.  Recording threads spread
/// across shards by a thread-local hint, so concurrent recorders mostly
/// touch distinct cache lines; snapshots merge all shards.
const SHARDS: usize = 8;

thread_local! {
    static SHARD_HINT: usize = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) as usize % SHARDS
    };
}

/// One shard of a histogram: a fixed bucket array plus sum/min/max.
struct Shard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: 0 for 0, otherwise one bucket per power of
/// two, capped at the last bucket.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of a bucket (used as the percentile estimate).
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A fixed-size, lock-free latency histogram.
///
/// [`record`](Self::record) is a handful of relaxed atomic operations on
/// one shard — no locks, no allocation, safe from any number of threads.
/// [`snapshot`](Self::snapshot) merges the shards; because the observation
/// count is *defined* as the sum of bucket counts, the merge conserves
/// every completed record exactly.
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("min", &snap.min)
            .field("max", &snap.max)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one observation (typically a span duration in nanoseconds).
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value in one shot — the
    /// batched form of [`record`](Self::record).  Packets that cross an
    /// instrumented boundary in the same batch share the same timestamps,
    /// so recording them as one group amortises the shard lookup and the
    /// atomic updates over the whole batch.  `n == 0` is a no-op.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let shard = &self.shards[SHARD_HINT.with(|h| *h)];
        shard.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        shard.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        shard.min.fetch_min(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges all shards into a point-in-time [`HistogramSnapshot`].
    ///
    /// Records that completed before the snapshot began are always
    /// included; records racing the snapshot are included atomically per
    /// bucket (never torn, never double-counted).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for shard in self.shards.iter() {
            for (bucket, cell) in out.buckets.iter_mut().zip(shard.buckets.iter()) {
                *bucket += cell.load(Ordering::Relaxed);
            }
            out.sum = out.sum.saturating_add(shard.sum.load(Ordering::Relaxed));
            out.min = out.min.min(shard.min.load(Ordering::Relaxed));
            out.max = out.max.max(shard.max.load(Ordering::Relaxed));
        }
        out
    }
}

/// A merged, immutable view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`] for the layout).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value, or `u64::MAX` when empty.
    pub min: u64,
    /// Largest recorded value, or `0` when empty.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations: by construction, exactly the sum of the bucket
    /// counts (the conservation invariant the proptests pin down).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean recorded value, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// The value at quantile `p` in `[0, 1]`, estimated as the upper bound
    /// of the first bucket whose cumulative count reaches `p * count`
    /// (clamped to the recorded max so a wide last bucket cannot
    /// overstate).  Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`, conserving counts exactly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (bucket, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *bucket += theirs;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        // Every value falls inside its bucket's range.
        for v in [1u64, 7, 64, 1_000, 1 << 40, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper(b), "{v} above bucket {b}");
            if b > 1 {
                assert!(v > bucket_upper(b - 1), "{v} below bucket {b}");
            }
        }
    }

    #[test]
    fn count_conserves_and_min_max_track() {
        let hist = Histogram::new();
        for v in [0u64, 1, 5, 5, 1_000, 123_456_789] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 123_456_789);
        assert_eq!(snap.sum, 123_457_800);
        assert_eq!(snap.mean(), 123_457_800 / 6);
    }

    #[test]
    fn percentiles_bracket_the_data() {
        let hist = Histogram::new();
        for _ in 0..99 {
            hist.record(100);
        }
        hist.record(1_000_000);
        let snap = hist.snapshot();
        let p50 = snap.percentile(0.50);
        let p99 = snap.percentile(0.99);
        let p100 = snap.percentile(1.0);
        assert!((100..1_000_000).contains(&p50), "p50 = {p50}");
        assert!(p99 < 1_000_000, "p99 = {p99}");
        assert_eq!(p100, 1_000_000);
        assert!(p50 <= p99 && p99 <= p100);
    }

    #[test]
    fn empty_snapshot_is_inert() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.mean(), 0);
    }

    #[test]
    fn merge_conserves() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1_000);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.min, 0);
        assert_eq!(merged.max, 99_000);
    }
}
