//! # rapidware-telemetry — low-overhead observability primitives
//!
//! The metric layer under the composable proxy: every other rapidware
//! crate records into the types defined here, and `Proxy::telemetry()`
//! merges the result into one [`TelemetrySnapshot`].  The design goals,
//! in order:
//!
//! 1. **Lock-free on the hot path.**  [`Counter`], [`Gauge`], and
//!    [`Histogram`] are recorded with relaxed atomic increments only; the
//!    single [`Registry`] mutex is touched at registration and snapshot
//!    time, never per packet.
//! 2. **No allocation after registration.**  Histograms are fixed
//!    64-bucket log2 arrays; counters are fixed sharded cells.  Handles
//!    are `Arc`s captured once and recorded into forever.
//! 3. **Exact count conservation.**  A histogram's observation count *is*
//!    the sum of its bucket counts — merging shards cannot lose or invent
//!    observations, and a snapshot taken mid-record never undercounts
//!    records that completed before it started.
//!
//! Latency values are nanoseconds from the process-wide monotonic span
//! clock ([`now_ns`]), which never returns 0 so a zero ingress stamp can
//! mean "unstamped" everywhere in the data plane.
//!
//! ```
//! use rapidware_telemetry::{now_ns, Registry};
//!
//! let registry = Registry::new();
//! let hist = registry.histogram("stream.audio.e2e_ns");
//! let sent = registry.counter("stream.audio.packets");
//!
//! let start = now_ns();
//! sent.add(3);
//! hist.record(now_ns() - start);
//! hist.record(1_500);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("stream.audio.packets"), Some(3));
//! let e2e = snapshot.histogram("stream.audio.e2e_ns").unwrap();
//! assert_eq!(e2e.count(), 2);
//! assert!(e2e.percentile(0.99) >= 1_500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod hist;
mod metrics;
mod registry;
mod sample;
mod source;

pub use clock::now_ns;
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::{Registry, TelemetrySnapshot};
pub use sample::Sampler;
pub use source::{format_metrics, Metric, StatSource};
