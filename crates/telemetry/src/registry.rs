//! The metric registry and its merged snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};
use crate::source::Metric;

/// Registered instruments, by name.  The map is behind a plain mutex —
/// registration and snapshots are control-plane operations; the data plane
/// only ever touches the `Arc` handles it captured at registration.
#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A process-local metric registry.
///
/// `counter`/`gauge`/`histogram` are get-or-register: the first call for a
/// name allocates the instrument, later calls return the same handle, so
/// independently wired subsystems can share one series.  [`snapshot`]
/// merges everything into a [`TelemetrySnapshot`].
///
/// [`snapshot`]: Self::snapshot
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<Instruments>,
}

impl Registry {
    /// An empty registry behind an `Arc`, ready to be shared.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The counter called `name`, registering it on first use.
    pub fn counter(&self, name: impl Into<String>) -> Arc<Counter> {
        let mut instruments = self.instruments.lock().expect("registry mutex");
        Arc::clone(
            instruments
                .counters
                .entry(name.into())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge called `name`, registering it on first use.
    pub fn gauge(&self, name: impl Into<String>) -> Arc<Gauge> {
        let mut instruments = self.instruments.lock().expect("registry mutex");
        Arc::clone(
            instruments
                .gauges
                .entry(name.into())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram called `name`, registering it on first use.
    pub fn histogram(&self, name: impl Into<String>) -> Arc<Histogram> {
        let mut instruments = self.instruments.lock().expect("registry mutex");
        Arc::clone(
            instruments
                .histograms
                .entry(name.into())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Merges every instrument into a point-in-time snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let instruments = self.instruments.lock().expect("registry mutex");
        TelemetrySnapshot {
            counters: instruments
                .counters
                .iter()
                .map(|(name, counter)| (name.clone(), counter.value()))
                .collect(),
            gauges: instruments
                .gauges
                .iter()
                .map(|(name, gauge)| (name.clone(), gauge.value()))
                .collect(),
            histograms: instruments
                .histograms
                .iter()
                .map(|(name, hist)| (name.clone(), hist.snapshot()))
                .collect(),
            stats: Vec::new(),
        }
    }
}

/// One coherent view of every registered instrument plus the legacy stats
/// folded in by the proxy ([`TelemetrySnapshot::push_stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Counter readings, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge readings, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Legacy stats-struct readings (`StatSource` metrics with a scope
    /// prefix), in the order the proxy appended them.
    pub stats: Vec<Metric>,
}

impl TelemetrySnapshot {
    /// The counter called `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge called `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram called `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The legacy stat called `name`, if present.
    pub fn stat(&self, name: &str) -> Option<u64> {
        self.stats.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// Appends a stats struct's metrics under `scope.` (e.g.
    /// `stream.audio.pipe` + `items` → `stream.audio.pipe.items`).
    pub fn push_stats(&mut self, scope: &str, metrics: Vec<Metric>) {
        self.stats
            .extend(metrics.into_iter().map(|m| m.prefixed(scope)));
    }

    /// Every histogram whose name starts with `prefix`, merged into one.
    pub fn merged_histogram(&self, prefix: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (name, hist) in &self.histograms {
            if name.starts_with(prefix) {
                merged.merge(hist);
            }
        }
        merged
    }

    /// The snapshot as a pretty-printed JSON document (hand-rolled, like
    /// the bench reports — the schema is flat and this crate stays
    /// dependency-free).  Histograms serialise count/sum/min/max, the
    /// p50/p90/p99 estimates, and only their non-empty buckets as
    /// `[bucket_index, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (index, (name, value)) in self.counters.iter().enumerate() {
            let sep = if index == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {value}", json_string(name));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (index, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if index == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {value}", json_string(name));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (index, (name, hist)) in self.histograms.iter().enumerate() {
            let sep = if index == 0 { "\n" } else { ",\n" };
            let min = if hist.is_empty() { 0 } else { hist.min };
            let _ = write!(
                out,
                "{sep}    {}: {{ \"count\": {}, \"sum\": {}, \"min\": {min}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                json_string(name),
                hist.count(),
                hist.sum,
                hist.max,
                hist.percentile(0.50),
                hist.percentile(0.90),
                hist.percentile(0.99),
            );
            let mut first = true;
            for (bucket, &count) in hist.buckets.iter().enumerate() {
                if count > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{bucket}, {count}]");
                    first = false;
                }
            }
            out.push_str("] }");
        }
        out.push_str(if self.histograms.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"stats\": {");
        for (index, metric) in self.stats.iter().enumerate() {
            let sep = if index == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_string(&metric.name), metric.value);
        }
        out.push_str(if self.stats.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }
}

fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_instrument() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.inc();
        assert_eq!(registry.snapshot().counter("x"), Some(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&registry.histogram("h"), &registry.histogram("h")));
        assert!(Arc::ptr_eq(&registry.gauge("g"), &registry.gauge("g")));
    }

    #[test]
    fn snapshot_merges_all_kinds() {
        let registry = Registry::new();
        registry.counter("c").add(5);
        registry.gauge("g").set(-3);
        registry.histogram("h").record(1_000);
        let mut snapshot = registry.snapshot();
        snapshot.push_stats("scope", vec![Metric::new("items", 9)]);
        assert_eq!(snapshot.counter("c"), Some(5));
        assert_eq!(snapshot.gauge("g"), Some(-3));
        assert_eq!(snapshot.histogram("h").map(|h| h.count()), Some(1));
        assert_eq!(snapshot.stat("scope.items"), Some(9));
        assert_eq!(snapshot.counter("missing"), None);
        assert_eq!(snapshot.gauge("missing"), None);
        assert!(snapshot.histogram("missing").is_none());
        assert_eq!(snapshot.stat("missing"), None);
    }

    #[test]
    fn merged_histogram_folds_a_prefix_family() {
        let registry = Registry::new();
        registry.histogram("lane.0.e2e_ns").record(100);
        registry.histogram("lane.1.e2e_ns").record(200);
        registry.histogram("other").record(999);
        let merged = registry.snapshot().merged_histogram("lane.");
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.max, 200);
    }

    #[test]
    fn json_has_all_sections_and_escapes() {
        let registry = Registry::new();
        registry.counter("a\"b").add(1);
        registry.histogram("h").record(7);
        let mut snapshot = registry.snapshot();
        snapshot.push_stats("s", vec![Metric::new("v", 2)]);
        let json = snapshot.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"a\\\"b\": 1"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"buckets\": [[3, 1]]"));
        assert!(json.contains("\"s.v\": 2"));
        assert!(json.ends_with("}\n"));
        // An empty snapshot is still a valid document.
        let empty = TelemetrySnapshot::default().to_json();
        assert!(empty.contains("\"histograms\": {}"));
        assert!(empty.contains("\"stats\": {}"));
    }
}
