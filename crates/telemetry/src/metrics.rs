//! Sharded counters and gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of cells a counter is spread over.  Eight 64-byte-aligned cells
/// keep concurrent incrementers off each other's cache lines without
/// making the snapshot sweep expensive.
const SHARDS: usize = 8;

thread_local! {
    static SHARD_HINT: usize = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) as usize % SHARDS
    };
}

/// One cache-line-padded counter cell.
#[repr(align(64))]
struct Cell(AtomicU64);

/// A monotonically increasing, sharded counter.
///
/// `add` is one relaxed `fetch_add` on the calling thread's home cell;
/// `value` sums the cells.  The sum is exact for all increments that
/// happened-before the read.
pub struct Counter {
    cells: Box<[Cell]>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self {
            cells: (0..SHARDS).map(|_| Cell(AtomicU64::new(0))).collect(),
        }
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.cells[SHARD_HINT.with(|h| *h)].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The merged count.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-writer-wins signed gauge (queue depths, live-task counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let counter = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(counter.value(), 80_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let gauge = Gauge::new();
        gauge.set(5);
        gauge.add(-2);
        assert_eq!(gauge.value(), 3);
        assert!(!format!("{gauge:?}").is_empty());
    }
}
