//! The process-wide monotonic span clock.

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first call in this process, plus one.
///
/// The +1 keeps the return value strictly positive, so packet metadata can
/// use `0` as the "never stamped" sentinel without a separate flag.  The
/// clock is monotonic (it is `Instant` underneath) and shared by every
/// thread; differences between two calls are span durations.
///
/// Saturates after ~584 years of uptime, which is somebody else's problem.
pub fn now_ns() -> u64 {
    let anchor = *ANCHOR.get_or_init(Instant::now);
    let ns = anchor.elapsed().as_nanos();
    u64::try_from(ns).unwrap_or(u64::MAX).saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_zero_and_monotonic() {
        let a = now_ns();
        assert!(a > 0);
        let b = now_ns();
        assert!(b >= a);
    }
}
