//! The threaded chain runtime: thread-per-filter, detachable pipes between
//! stages, live splicing.
//!
//! This is the faithful port of the paper's architecture (Figure 4): each
//! filter owns a thread that reads from its `DetachableInputStream` and
//! writes to its `DetachableOutputStream`; a control thread manages the
//! filter vector and splices filters in and out of the running stream with
//! the pause → reconnect protocol; `EndPoint`s (here: the chain's input
//! sender and output receiver) carry the stream in and out of the proxy.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use rapidware_filters::{
    ChainSpans, Filter, FilterOutput, SecureChannelSnapshot, SecureChannelStats,
};
use rapidware_telemetry::now_ns;
use rapidware_packet::Packet;
use rapidware_streams::{
    detached_pair, pipe, DetachableReceiver, DetachableSender, RecvError,
};

use crate::error::ProxyError;

/// Default per-pipe buffer capacity (packets) between stages.
const DEFAULT_PIPE_CAPACITY: usize = 128;

/// Default per-stage batch size: how many packets a filter worker drains
/// from its input pipe per wake-up when batch mode is enabled (see
/// [`ThreadedChain::with_batch_size`]).
pub const DEFAULT_BATCH_SIZE: usize = 32;

/// Counters describing a running [`ThreadedChain`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Number of filters currently installed.
    pub filters: usize,
    /// Packets accepted at the chain input so far.
    pub packets_in: u64,
    /// Packets delivered at the chain output so far.
    pub packets_out: u64,
    /// Number of completed splice operations (inserts + removals).
    pub splices: u64,
    /// Packets dropped because a filter reported an error.
    pub filter_errors: u64,
}

impl rapidware_telemetry::StatSource for ChainStats {
    fn snapshot(&self) -> Vec<rapidware_telemetry::Metric> {
        use rapidware_telemetry::Metric;
        vec![
            Metric::new("filters", self.filters as u64),
            Metric::new("packets_in", self.packets_in),
            Metric::new("packets_out", self.packets_out),
            Metric::new("splices", self.splices),
            Metric::new("filter_errors", self.filter_errors),
        ]
    }
}

/// Adapter that lets a filter write into a detachable sender.
struct SenderOutput<'a> {
    sender: &'a DetachableSender<Packet>,
}

impl FilterOutput for SenderOutput<'_> {
    fn emit(&mut self, packet: Packet) {
        // If the downstream receiver has been closed the chain is shutting
        // down; dropping the packet is the only sensible behaviour.
        let _ = self.sender.send(packet);
    }
}

struct Stage {
    name: String,
    in_rx: DetachableReceiver<Packet>,
    out_tx: DetachableSender<Packet>,
    worker: Option<JoinHandle<Box<dyn Filter>>>,
    /// Seal/reject counters captured before the filter moved onto its
    /// worker thread; `None` for filters with no crypto role.
    secure: Option<Arc<SecureChannelStats>>,
    /// `true` while this stage is the last filter of the chain — the stage
    /// that records end-to-end latency when spans are attached.  Shared
    /// with the worker thread and recomputed after every splice.
    is_tail: Arc<AtomicBool>,
}

impl fmt::Debug for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stage").field("name", &self.name).finish()
    }
}

struct ChainInner {
    stages: Vec<Stage>,
    closed: bool,
    splices: u64,
}

/// A thread-per-filter proxy chain supporting live reconfiguration.
///
/// The chain is created as a "null proxy" (input wired directly to output);
/// [`insert`](Self::insert) and [`remove`](Self::remove) splice filters in
/// and out while data flows.
pub struct ThreadedChain {
    inner: Mutex<ChainInner>,
    head_tx: DetachableSender<Packet>,
    tail_rx: DetachableReceiver<Packet>,
    capacity: usize,
    batch_size: usize,
    errors: Arc<AtomicU64>,
    /// Latency spans handed to every stage spawned after
    /// [`set_spans`](Self::set_spans).
    spans: Mutex<Option<Arc<ChainSpans>>>,
}

impl fmt::Debug for ThreadedChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ThreadedChain")
            .field("filters", &inner.stages.len())
            .field("closed", &inner.closed)
            .finish()
    }
}

impl ThreadedChain {
    /// Creates a null proxy chain with the default pipe capacity.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` so that future resource
    /// acquisition (e.g. socket endpoints) does not break the signature.
    pub fn new() -> Result<Self, ProxyError> {
        Self::with_capacity(DEFAULT_PIPE_CAPACITY)
    }

    /// Creates a null proxy chain whose inter-stage pipes buffer up to
    /// `capacity` packets.
    ///
    /// # Errors
    ///
    /// Currently infallible (see [`new`](Self::new)).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Result<Self, ProxyError> {
        Self::with_batch_size(capacity, 1)
    }

    /// Creates a null proxy chain whose filter workers drain up to
    /// `batch_size` packets from their input pipe per wake-up and hand them
    /// to [`Filter::process_batch`] as one batch.
    ///
    /// With `batch_size == 1` every packet is processed individually (the
    /// behaviour of [`new`](Self::new)); larger batches amortise pipe
    /// locking, cross-thread wake-ups, and per-packet filter dispatch over
    /// the whole batch, which is what makes the chain keep up with heavy
    /// multi-receiver traffic.  Batching never reorders packets; the only
    /// observable difference is error granularity — a filter error drops
    /// the remainder of that filter's current batch (and counts once),
    /// instead of dropping a single packet.
    ///
    /// ```
    /// use rapidware_filters::{FecDecoderFilter, FecEncoderFilter};
    /// use rapidware_packet::{Packet, PacketKind, SeqNo, StreamId};
    /// use rapidware_proxy::ThreadedChain;
    ///
    /// # fn main() -> Result<(), rapidware_proxy::ProxyError> {
    /// // FEC(6,4) encode → decode with 32-packet batches per stage.
    /// let chain = ThreadedChain::with_batch_size(128, 32)?;
    /// chain.push_back(Box::new(FecEncoderFilter::fec_6_4().expect("valid (n, k)")))?;
    /// chain.push_back(Box::new(FecDecoderFilter::fec_6_4().expect("valid (n, k)")))?;
    ///
    /// let input = chain.input();
    /// let output = chain.output();
    /// for seq in 0..64u64 {
    ///     let packet =
    ///         Packet::new(StreamId::new(1), SeqNo::new(seq), PacketKind::AudioData, vec![0u8; 64]);
    ///     input.send(packet).expect("chain accepts packets");
    /// }
    /// chain.close_input();
    /// let delivered: Vec<Packet> = output.into_iter().collect();
    /// assert_eq!(delivered.len(), 64, "lossless link: parities absorbed");
    /// chain.shutdown()?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Currently infallible (see [`new`](Self::new)).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `batch_size` is zero.
    pub fn with_batch_size(capacity: usize, batch_size: usize) -> Result<Self, ProxyError> {
        assert!(batch_size > 0, "batch size must be non-zero");
        let (head_tx, tail_rx) = pipe::<Packet>(capacity);
        Ok(Self {
            inner: Mutex::new(ChainInner {
                stages: Vec::new(),
                closed: false,
                splices: 0,
            }),
            head_tx,
            tail_rx,
            capacity,
            batch_size,
            errors: Arc::new(AtomicU64::new(0)),
            spans: Mutex::new(None),
        })
    }

    /// Attaches latency spans to this chain: stages installed **after**
    /// this call stamp packet ingress, record sampled per-filter timings,
    /// and — at the tail stage — whole-batch and (for egress spans)
    /// per-packet end-to-end latency.  The proxy enables telemetry before
    /// installing filters, so in practice every stage records.
    pub fn set_spans(&self, spans: Arc<ChainSpans>) {
        *self.spans.lock() = Some(spans);
    }

    /// Creates a batched null proxy chain with the default pipe capacity
    /// and [`DEFAULT_BATCH_SIZE`].
    ///
    /// # Errors
    ///
    /// Currently infallible (see [`new`](Self::new)).
    pub fn batched() -> Result<Self, ProxyError> {
        Self::with_batch_size(DEFAULT_PIPE_CAPACITY, DEFAULT_BATCH_SIZE)
    }

    /// The per-stage batch size this chain was configured with.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// A handle for pushing packets into the chain (an input `EndPoint`).
    pub fn input(&self) -> DetachableSender<Packet> {
        self.head_tx.clone()
    }

    /// A handle for reading packets out of the chain (an output `EndPoint`).
    pub fn output(&self) -> DetachableReceiver<Packet> {
        self.tail_rx.clone()
    }

    /// Closes the chain input: once in-flight packets drain, every stage
    /// flushes and the output observes end of stream.
    pub fn close_input(&self) {
        self.head_tx.close();
    }

    /// Names of the installed filters, in stream order.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().stages.iter().map(|s| s.name.clone()).collect()
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.inner.lock().stages.len()
    }

    /// Returns `true` if no filters are installed (the chain is a null
    /// proxy).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current chain statistics.
    pub fn stats(&self) -> ChainStats {
        let inner = self.inner.lock();
        ChainStats {
            filters: inner.stages.len(),
            packets_in: self.head_tx.stats().items(),
            packets_out: self.tail_rx.stats().items(),
            splices: inner.splices,
            filter_errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Aggregated seal/reject counters across the chain's secure-channel
    /// stages; all-zero when no crypto filter is installed.
    pub fn secure_snapshot(&self) -> SecureChannelSnapshot {
        let inner = self.inner.lock();
        let mut total = SecureChannelSnapshot::default();
        for stage in &inner.stages {
            if let Some(stats) = &stage.secure {
                total.merge(stats.snapshot());
            }
        }
        total
    }

    /// Inserts `filter` at `position` (0 = closest to the input endpoint)
    /// while the stream is running.
    ///
    /// The upstream pipe is detached (blocking new writes for the duration
    /// of the splice), re-attached to the new filter's input, and the
    /// filter's output is attached to the old downstream receiver — the
    /// paper's `add()` operation.  No packet is lost, duplicated, or
    /// reordered by the splice: packets already buffered downstream of the
    /// insertion point are consumed before anything that flows through the
    /// new filter.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::PositionOutOfRange`] for a bad position,
    /// [`ProxyError::ChainClosed`] after shutdown, or
    /// [`ProxyError::Splice`] if the pipes could not be re-attached.
    pub fn insert(&self, position: usize, filter: Box<dyn Filter>) -> Result<(), ProxyError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(ProxyError::ChainClosed);
        }
        if position > inner.stages.len() {
            return Err(ProxyError::PositionOutOfRange {
                position,
                len: inner.stages.len(),
            });
        }
        let name = filter.name().to_string();
        let secure = filter.secure_stats();
        let (out_tx, in_rx) = {
            let (tx, rx) = detached_pair::<Packet>(self.capacity);
            (tx, rx)
        };

        let left_tx = if position == 0 {
            self.head_tx.clone()
        } else {
            inner.stages[position - 1].out_tx.clone()
        };
        let right_rx = if position == inner.stages.len() {
            self.tail_rx.clone()
        } else {
            inner.stages[position].in_rx.clone()
        };

        // Splice: detach the upstream sender from its current receiver and
        // rewire it through the new filter.  No drain is needed for
        // correctness: packets already buffered downstream sit ahead of the
        // insertion point and are consumed before anything that now flows
        // through the new filter, so order is preserved — and the splice
        // cannot block on a slow or idle consumer.
        left_tx
            .detach()
            .map_err(|err| ProxyError::Splice(format!("detach before insert: {err}")))?;
        left_tx
            .reconnect(&in_rx)
            .map_err(|err| ProxyError::Splice(format!("attach upstream to new filter: {err}")))?;
        out_tx
            .reconnect(&right_rx)
            .map_err(|err| ProxyError::Splice(format!("attach new filter downstream: {err}")))?;

        let is_tail = Arc::new(AtomicBool::new(false));
        let worker = spawn_worker(
            filter,
            in_rx.clone(),
            out_tx.clone(),
            Arc::clone(&self.errors),
            self.batch_size,
            self.spans.lock().clone(),
            Arc::clone(&is_tail),
        );
        inner.stages.insert(
            position,
            Stage {
                name,
                in_rx,
                out_tx,
                worker: Some(worker),
                secure,
                is_tail,
            },
        );
        inner.splices += 1;
        refresh_tail_flags(&inner.stages);
        Ok(())
    }

    /// Appends `filter` after the last installed filter.
    ///
    /// # Errors
    ///
    /// Same as [`insert`](Self::insert).
    pub fn push_back(&self, filter: Box<dyn Filter>) -> Result<(), ProxyError> {
        let position = self.len();
        self.insert(position, filter)
    }

    /// Removes the filter at `position` from the running stream and returns
    /// it.
    ///
    /// The filter is drained (its buffered output is flushed downstream),
    /// its thread is joined, and the surrounding pipes are re-spliced — the
    /// inverse of [`insert`](Self::insert).
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::PositionOutOfRange`], [`ProxyError::ChainClosed`],
    /// [`ProxyError::Splice`], or [`ProxyError::WorkerFailed`] if the filter's
    /// thread had panicked.
    pub fn remove(&self, position: usize) -> Result<Box<dyn Filter>, ProxyError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(ProxyError::ChainClosed);
        }
        if position >= inner.stages.len() {
            return Err(ProxyError::PositionOutOfRange {
                position,
                len: inner.stages.len(),
            });
        }
        let mut stage = inner.stages.remove(position);
        let left_tx = if position == 0 {
            self.head_tx.clone()
        } else {
            inner.stages[position - 1].out_tx.clone()
        };
        let right_rx = if position == inner.stages.len() {
            self.tail_rx.clone()
        } else {
            inner.stages[position].in_rx.clone()
        };

        // 1. Stop new data from reaching the filter and drain what is there.
        left_tx
            .pause()
            .map_err(|err| ProxyError::Splice(format!("pause before remove: {err}")))?;
        // 2. Tell the worker to flush and exit (a closed receiver signals
        //    removal rather than end-of-stream).
        stage.in_rx.close();
        let filter = match stage.worker.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| ProxyError::WorkerFailed(stage.name.clone()))?,
            None => return Err(ProxyError::WorkerFailed(stage.name.clone())),
        };
        // 3. Detach the filter's output without waiting for downstream to
        //    drain (its residue is already buffered at the downstream
        //    receiver and will be consumed, in order, before anything the
        //    re-spliced upstream delivers), then close the gap.
        stage
            .out_tx
            .detach()
            .map_err(|err| ProxyError::Splice(format!("detach removed filter: {err}")))?;
        left_tx
            .reconnect(&right_rx)
            .map_err(|err| ProxyError::Splice(format!("close the gap after remove: {err}")))?;
        inner.splices += 1;
        refresh_tail_flags(&inner.stages);
        Ok(filter)
    }

    /// Shuts the chain down: closes the input, waits for every stage to
    /// flush, and joins all worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::WorkerFailed`] if any worker thread panicked.
    pub fn shutdown(&self) -> Result<(), ProxyError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Ok(());
        }
        inner.closed = true;
        self.head_tx.close();
        let mut failure: Option<ProxyError> = None;
        for stage in inner.stages.iter_mut() {
            if let Some(handle) = stage.worker.take() {
                if handle.join().is_err() && failure.is_none() {
                    failure = Some(ProxyError::WorkerFailed(stage.name.clone()));
                }
            }
        }
        inner.stages.clear();
        match failure {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl Drop for ThreadedChain {
    fn drop(&mut self) {
        // Destructors must not fail or block indefinitely on user mistakes:
        // best-effort shutdown, ignoring worker panics.
        let _ = self.shutdown();
    }
}

/// Records the tail stage's chain-exit instruments: the batch duration and
/// (for egress spans) each emitted packet's ingress-to-exit latency.
fn record_chain_exit(spans: &ChainSpans, start_ns: u64, exit_ns: u64, emitted: &[Packet]) {
    spans.batch_ns().record(exit_ns.saturating_sub(start_ns));
    if let Some(e2e) = spans.e2e() {
        for packet in emitted {
            let ingress = packet.ingress_ns();
            if ingress != 0 {
                e2e.record(exit_ns.saturating_sub(ingress));
            }
        }
    }
}

/// Re-derives each stage's tail flag after a splice: exactly the last
/// installed stage records chain-exit latency.
fn refresh_tail_flags(stages: &[Stage]) {
    let count = stages.len();
    for (index, stage) in stages.iter().enumerate() {
        stage.is_tail.store(index + 1 == count, Ordering::Relaxed);
    }
}

/// Spawns the worker thread for one filter stage.
///
/// With `batch_size == 1` the loop receives and processes one packet at a
/// time (per-packet error isolation); with a larger batch it drains up to
/// `batch_size` buffered packets per pipe lock and hands them to
/// [`Filter::process_batch`] as one unit.
///
/// With `spans` attached, the worker stamps ingress on every packet it
/// receives (first-touch-wins, so UDP-stamped packets keep the socket
/// stamp), records sampled per-filter timings, and — while `is_tail` is
/// set — the whole-batch duration plus per-packet end-to-end latency.
#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    mut filter: Box<dyn Filter>,
    in_rx: DetachableReceiver<Packet>,
    out_tx: DetachableSender<Packet>,
    errors: Arc<AtomicU64>,
    batch_size: usize,
    spans: Option<Arc<ChainSpans>>,
    is_tail: Arc<AtomicBool>,
) -> JoinHandle<Box<dyn Filter>> {
    std::thread::Builder::new()
        .name(format!("rapidware-filter-{}", filter.name()))
        .spawn(move || {
            loop {
                let received: Result<(), RecvError> = if batch_size > 1 {
                    in_rx.recv_up_to(batch_size).map(|mut batch| {
                        // Collect the filter's output and push it downstream
                        // as one batch: one pipe lock per batch on each side
                        // instead of one per packet.
                        let mut collected: Vec<Packet> = Vec::with_capacity(batch.len());
                        match &spans {
                            Some(spans) => {
                                let start = now_ns();
                                for packet in batch.iter_mut() {
                                    packet.stamp_ingress_ns(start);
                                }
                                let timed = spans.sample_stages();
                                if filter.process_batch(batch, &mut collected).is_err() {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                                let now = now_ns();
                                if timed {
                                    spans
                                        .stage_histogram(filter.name())
                                        .record(now.saturating_sub(start));
                                }
                                if is_tail.load(Ordering::Relaxed) {
                                    record_chain_exit(spans, start, now, &collected);
                                }
                            }
                            None => {
                                if filter.process_batch(batch, &mut collected).is_err() {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        // A closed downstream receiver means the chain is
                        // shutting down; dropping the batch mirrors the
                        // per-packet SenderOutput behaviour.
                        let _ = out_tx.send_batch(collected);
                    })
                } else {
                    in_rx.recv().map(|mut packet| match &spans {
                        Some(spans) => {
                            let start = now_ns();
                            packet.stamp_ingress_ns(start);
                            let timed = spans.sample_stages();
                            let mut collected: Vec<Packet> = Vec::new();
                            if filter.process(packet, &mut collected).is_err() {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            let now = now_ns();
                            if timed {
                                spans
                                    .stage_histogram(filter.name())
                                    .record(now.saturating_sub(start));
                            }
                            if is_tail.load(Ordering::Relaxed) {
                                record_chain_exit(spans, start, now, &collected);
                            }
                            for packet in collected {
                                let _ = out_tx.send(packet);
                            }
                        }
                        None => {
                            let mut output = SenderOutput { sender: &out_tx };
                            if filter.process(packet, &mut output).is_err() {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                };
                match received {
                    Ok(()) => {}
                    Err(RecvError::Eof) => {
                        // End of stream: flush and propagate EOF downstream.
                        let mut output = SenderOutput { sender: &out_tx };
                        if filter.flush(&mut output).is_err() {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        out_tx.close();
                        break;
                    }
                    Err(RecvError::Closed) => {
                        // Removal from a live chain: flush but leave the
                        // downstream pipe open (the chain re-splices it).
                        let mut output = SenderOutput { sender: &out_tx };
                        if filter.flush(&mut output).is_err() {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                }
            }
            filter
        })
        .expect("spawning a filter worker thread never fails")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidware_filters::{
        DropEveryNth, FecDecoderFilter, FecEncoderFilter, FilterError, NullFilter, TapFilter,
    };
    use rapidware_packet::{PacketKind, SeqNo, StreamId};
    use std::time::Duration;

    fn packet(seq: u64) -> Packet {
        Packet::new(
            StreamId::new(1),
            SeqNo::new(seq),
            PacketKind::AudioData,
            vec![(seq % 251) as u8; 64],
        )
    }

    fn collect_all(rx: &DetachableReceiver<Packet>) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Ok(p) = rx.recv() {
            out.push(p);
        }
        out
    }

    #[test]
    fn null_proxy_forwards_everything_in_order() {
        let chain = ThreadedChain::new().unwrap();
        let input = chain.input();
        let output = chain.output();
        for seq in 0..100 {
            input.send(packet(seq)).unwrap();
        }
        chain.close_input();
        let received = collect_all(&output);
        assert_eq!(received.len(), 100);
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64);
        }
        assert!(chain.is_empty());
        chain.shutdown().unwrap();
    }

    #[test]
    fn filters_run_on_their_own_threads_and_preserve_order() {
        let chain = ThreadedChain::new().unwrap();
        chain.push_back(Box::new(NullFilter::new())).unwrap();
        chain.push_back(Box::new(NullFilter::new())).unwrap();
        chain.push_back(Box::new(NullFilter::new())).unwrap();
        assert_eq!(chain.len(), 3);
        let input = chain.input();
        let output = chain.output();
        let producer = std::thread::spawn(move || {
            for seq in 0..5_000u64 {
                input.send(packet(seq)).unwrap();
            }
        });
        let mut received = Vec::new();
        while received.len() < 5_000 {
            received.push(output.recv().unwrap());
        }
        producer.join().unwrap();
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64);
        }
        chain.shutdown().unwrap();
    }

    #[test]
    fn insert_into_running_stream_loses_nothing() {
        let chain = ThreadedChain::with_capacity(8).unwrap();
        let input = chain.input();
        let output = chain.output();
        let tap = TapFilter::new("mid-stream-tap");
        let counters = tap.counters();

        let producer = {
            let input = input.clone();
            std::thread::spawn(move || {
                for seq in 0..2_000u64 {
                    input.send(packet(seq)).unwrap();
                }
            })
        };
        // Consume the head of the stream on this thread; with an 8-packet
        // pipe the producer cannot run far ahead, so the upcoming splice is
        // guaranteed to happen mid-stream.
        let mut received = Vec::new();
        for _ in 0..100 {
            received.push(output.recv().unwrap());
        }
        // A background consumer keeps draining so the splice's drain phase
        // can complete while this thread performs the insert.
        let consumer = {
            let output = output.clone();
            std::thread::spawn(move || collect_all(&output))
        };
        chain.insert(0, Box::new(tap)).unwrap();
        producer.join().unwrap();
        chain.close_input();
        received.extend(consumer.join().unwrap());

        assert_eq!(received.len(), 2_000, "no packet lost or duplicated");
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64, "order preserved");
        }
        // The tap only saw the packets sent after the splice.
        assert!(counters.packets() > 0);
        assert!(counters.packets() <= 1_920);
        assert_eq!(chain.stats().splices, 1);
        chain.shutdown().unwrap();
    }

    #[test]
    fn remove_from_running_stream_returns_filter_and_keeps_data_flowing() {
        let chain = ThreadedChain::with_capacity(8).unwrap();
        chain.push_back(Box::new(TapFilter::new("t0"))).unwrap();
        chain.push_back(Box::new(NullFilter::new())).unwrap();
        let input = chain.input();
        let output = chain.output();
        let consumer = {
            let output = output.clone();
            std::thread::spawn(move || collect_all(&output))
        };
        let producer = {
            let input = input.clone();
            std::thread::spawn(move || {
                for seq in 0..1_000u64 {
                    input.send(packet(seq)).unwrap();
                }
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        let removed = chain.remove(0).unwrap();
        assert_eq!(removed.name(), "t0");
        assert_eq!(chain.names(), vec!["null"]);
        producer.join().unwrap();
        chain.close_input();
        let received = consumer.join().unwrap();
        assert_eq!(received.len(), 1_000);
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64);
        }
        chain.shutdown().unwrap();
    }

    #[test]
    fn fec_encode_decode_across_a_lossy_stage_recovers_packets() {
        // encoder -> deterministic dropper -> decoder, all on live threads.
        let chain = ThreadedChain::new().unwrap();
        chain
            .push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap()))
            .unwrap();
        chain.push_back(Box::new(DropEveryNth::new(5))).unwrap();
        chain
            .push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap()))
            .unwrap();
        let input = chain.input();
        let output = chain.output();
        let consumer = std::thread::spawn(move || collect_all(&output));
        for seq in 0..400u64 {
            input.send(packet(seq)).unwrap();
        }
        chain.close_input();
        let received = consumer.join().unwrap();
        // Every 5th payload packet was dropped but FEC(6,4) repairs one loss
        // per block of 4, so nearly everything should be present.
        let mut seqs: Vec<u64> = received.iter().map(|p| p.seq().value()).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert!(
            seqs.len() >= 395,
            "expected near-complete recovery, got {} of 400",
            seqs.len()
        );
        chain.shutdown().unwrap();
    }

    #[test]
    fn remove_with_unconsumed_output_does_not_block() {
        // A filter whose flush produces residue (the FEC encoder with a
        // partial block) is removed while nothing is reading the chain
        // output.  Removal must not deadlock waiting for the output buffer
        // to drain; the residue stays queued and is read afterwards.
        let chain = ThreadedChain::new().unwrap();
        chain
            .push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap()))
            .unwrap();
        let input = chain.input();
        let output = chain.output();
        input.send(packet(0)).unwrap();
        // Consume the forwarded source packet but leave any residue alone.
        assert_eq!(output.recv().unwrap().seq().value(), 0);

        let removed = chain.remove(0).unwrap();
        assert_eq!(removed.name(), "fec-encoder(6,4)");
        // The flush residue (two parity packets for the padded block) is
        // still available at the output, followed by post-removal traffic.
        input.send(packet(1)).unwrap();
        chain.close_input();
        let rest = collect_all(&output);
        let parity = rest.iter().filter(|p| p.kind().is_parity()).count();
        let payload: Vec<u64> = rest
            .iter()
            .filter(|p| p.kind().is_payload())
            .map(|p| p.seq().value())
            .collect();
        assert_eq!(parity, 2);
        assert_eq!(payload, vec![1]);
        chain.shutdown().unwrap();
    }

    #[test]
    fn batched_chain_preserves_order() {
        let chain = ThreadedChain::with_batch_size(64, 16).unwrap();
        assert_eq!(chain.batch_size(), 16);
        chain.push_back(Box::new(NullFilter::new())).unwrap();
        chain.push_back(Box::new(TapFilter::new("batched-tap"))).unwrap();
        let input = chain.input();
        let output = chain.output();
        let producer = std::thread::spawn(move || {
            for seq in 0..5_000u64 {
                input.send(packet(seq)).unwrap();
            }
        });
        let mut received = Vec::new();
        while received.len() < 5_000 {
            received.push(output.recv().unwrap());
        }
        producer.join().unwrap();
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64);
        }
        chain.shutdown().unwrap();
    }

    #[test]
    fn batched_fec_chain_recovers_like_per_packet() {
        // The same lossy encode → drop → decode pipeline as the per-packet
        // test, but with 32-packet batches at every stage.
        let chain = ThreadedChain::batched().unwrap();
        assert_eq!(chain.batch_size(), DEFAULT_BATCH_SIZE);
        chain
            .push_back(Box::new(FecEncoderFilter::fec_6_4().unwrap()))
            .unwrap();
        chain.push_back(Box::new(DropEveryNth::new(5))).unwrap();
        chain
            .push_back(Box::new(FecDecoderFilter::fec_6_4().unwrap()))
            .unwrap();
        let input = chain.input();
        let output = chain.output();
        let consumer = std::thread::spawn(move || collect_all(&output));
        for seq in 0..400u64 {
            input.send(packet(seq)).unwrap();
        }
        chain.close_input();
        let received = consumer.join().unwrap();
        let mut seqs: Vec<u64> = received.iter().map(|p| p.seq().value()).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert!(
            seqs.len() >= 395,
            "expected near-complete recovery, got {} of 400",
            seqs.len()
        );
        chain.shutdown().unwrap();
    }

    #[test]
    fn splice_into_batched_chain_loses_nothing() {
        let chain = ThreadedChain::with_batch_size(8, 4).unwrap();
        let input = chain.input();
        let output = chain.output();
        let producer = {
            let input = input.clone();
            std::thread::spawn(move || {
                for seq in 0..2_000u64 {
                    input.send(packet(seq)).unwrap();
                }
            })
        };
        let mut received = Vec::new();
        for _ in 0..100 {
            received.push(output.recv().unwrap());
        }
        let consumer = {
            let output = output.clone();
            std::thread::spawn(move || collect_all(&output))
        };
        chain.insert(0, Box::new(NullFilter::new())).unwrap();
        producer.join().unwrap();
        chain.close_input();
        received.extend(consumer.join().unwrap());
        assert_eq!(received.len(), 2_000, "no packet lost or duplicated");
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64, "order preserved");
        }
        chain.shutdown().unwrap();
    }

    #[test]
    fn position_validation() {
        let chain = ThreadedChain::new().unwrap();
        assert!(matches!(
            chain.insert(1, Box::new(NullFilter::new())),
            Err(ProxyError::PositionOutOfRange { .. })
        ));
        assert!(matches!(
            chain.remove(0),
            Err(ProxyError::PositionOutOfRange { .. })
        ));
        chain.shutdown().unwrap();
    }

    #[test]
    fn operations_after_shutdown_are_rejected() {
        let chain = ThreadedChain::new().unwrap();
        chain.shutdown().unwrap();
        assert!(matches!(
            chain.insert(0, Box::new(NullFilter::new())),
            Err(ProxyError::ChainClosed)
        ));
        assert!(matches!(chain.remove(0), Err(ProxyError::ChainClosed)));
        // Shutdown is idempotent.
        chain.shutdown().unwrap();
    }

    #[test]
    fn filter_errors_are_counted_not_fatal() {
        struct Failing;
        impl Filter for Failing {
            fn name(&self) -> &str {
                "failing"
            }
            fn process(
                &mut self,
                packet: Packet,
                out: &mut dyn FilterOutput,
            ) -> Result<(), FilterError> {
                if packet.seq().value().is_multiple_of(2) {
                    Err(FilterError::Internal("simulated failure".into()))
                } else {
                    out.emit(packet);
                    Ok(())
                }
            }
        }
        let chain = ThreadedChain::new().unwrap();
        chain.push_back(Box::new(Failing)).unwrap();
        let input = chain.input();
        let output = chain.output();
        for seq in 0..10 {
            input.send(packet(seq)).unwrap();
        }
        chain.close_input();
        let received = collect_all(&output);
        assert_eq!(received.len(), 5);
        assert_eq!(chain.stats().filter_errors, 5);
        chain.shutdown().unwrap();
    }

    #[test]
    fn secure_snapshot_aggregates_across_worker_threads() {
        use rapidware_filters::{DecryptFilter, EncryptFilter};
        let chain = ThreadedChain::new().unwrap();
        chain.push_back(Box::new(EncryptFilter::new(0xFEED))).unwrap();
        chain.push_back(Box::new(DecryptFilter::new(0xFEED))).unwrap();
        let input = chain.input();
        let output = chain.output();
        for seq in 0..20 {
            input.send(packet(seq)).unwrap();
        }
        chain.close_input();
        let received = collect_all(&output);
        assert_eq!(received.len(), 20);
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p.seq().value(), i as u64);
            assert_eq!(p.payload(), packet(i as u64).payload(), "round-trip restores bytes");
        }
        let snapshot = chain.secure_snapshot();
        assert_eq!(snapshot.sealed, 20);
        assert_eq!(snapshot.opened, 20);
        assert_eq!(snapshot.rejected, 0);
        chain.shutdown().unwrap();
    }

    #[test]
    fn stats_report_progress() {
        let chain = ThreadedChain::new().unwrap();
        chain.push_back(Box::new(NullFilter::new())).unwrap();
        let input = chain.input();
        let output = chain.output();
        for seq in 0..10 {
            input.send(packet(seq)).unwrap();
        }
        chain.close_input();
        let received = collect_all(&output);
        assert_eq!(received.len(), 10);
        let stats = chain.stats();
        assert_eq!(stats.filters, 1);
        assert_eq!(stats.packets_in, 10);
        assert_eq!(stats.packets_out, 10);
        assert!(!format!("{chain:?}").is_empty());
        chain.shutdown().unwrap();
    }
}
